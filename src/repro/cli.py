"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figure4``
    Run one Figure-4 configuration and print the series summary
    (optionally dump all runs as JSON).
``traces`` (alias ``trace``)
    Print the Figure 5/7/8 event traces in the paper's notation,
    export a Chrome ``trace_event`` timeline with ``--chrome PATH``,
    or dump the causal happens-before report with ``--causal``
    (``repro.causal/v1``; combined with ``--chrome`` the timeline
    gains flow arrows along each import's resolution chain).
``report``
    Per-run observability rollup: ``T_ub`` per Eq. 1–2, buddy-help
    savings (with-help vs. no-help), and the full metric catalog
    (see ``docs/observability.md``).  ``--baseline PATH`` diffs the
    comparison block against a saved payload and exits 1 on
    regression beyond ``--threshold``.
``monitor``
    Render streaming telemetry (``repro.telemetry/v1`` JSONL written
    by a :class:`repro.obs.JsonlSink`); ``--follow`` tails the file
    until the run's final snapshot; ``--attach URL`` streams the same
    records live from a ``repro serve`` session over the wire.
``serve``
    Coupling as a service: a long-running asyncio session server
    multiplexing many concurrent coupled runs over a worker pool (see
    ``docs/serving.md``); drains gracefully on SIGINT/SIGTERM.
``sessions``
    Client for a running server: ``submit``, ``list``, ``cancel``,
    ``report`` and ``wait`` against ``--url``.
``watch``
    SLO watchdog over a server's ``repro.fleet/v1`` rollup: evaluate
    declarative rules (``error_rate < 0.01``, ``t_ub_p95 < 1.2 *
    baseline``) and exit 1 when any trips — the same contract as
    ``report --baseline`` (see ``docs/observability.md``).
``bench``
    Hot-path micro benchmarks vs embedded seed baselines; writes
    ``BENCH_10.json``.  ``--history`` compares every ``BENCH_*.json``
    (unreadable or schema-invalid files are skipped with a warning)
    and exits 1 when the newest report regresses vs. the best.
``record``
    Record the coupled demo (or a chaos variant) into an append-only
    ``repro.prov/v1`` provenance log capturing every wire message,
    scheduling decision, match resolution, and RNG draw.
``replay``
    Reconstruct a recorded run from its provenance log alone and
    verify bit-exactness against the log's digests; ``--at T --query
    ledger|pending|matches`` time-travels to any virtual instant, and
    ``--edit PLAN.json`` / ``--edit-tolerance`` re-runs with an edited
    fault plan or match tolerance and diffs the two causal DAGs.
``scenarios``
    Run the Figure-3 buffering scenarios.
``chaos``
    Resilience sweep: run the coupled scenario under fault injection
    across drop rates and verify the answers never change (see
    ``docs/resilience.md``).
``validate-config``
    Parse and validate a coupling configuration file.
``lint``
    Static analysis: coupling-graph checks over configuration files
    and Property-1 AST lint over coupling programs (see
    ``docs/static_analysis.md``).
``verify``
    Exhaustive control-plane model checking (``repro.verify/v1``):
    explore every bounded message interleaving and fault action of a
    2-program world through the real protocol code, checking the M2xx
    invariants; ``--mutate`` checks a deliberately broken protocol,
    ``--replay`` re-executes a counterexample schedule through the DES
    runtime as a causal DAG, and ``--races`` runs the live runtime
    under the vector-clock race detector (R2xx rules).
``version``
    Print the package version.

Conventions (see ``docs/cli.md``): every subcommand accepts ``--json``
for machine-readable output on stdout, and exit codes are shared —
:data:`EXIT_OK` (0) success, :data:`EXIT_FINDINGS` (1) findings
(divergent answers, lint errors, verify violations, invalid config),
:data:`EXIT_USAGE` (2) usage or internal errors (argparse's own
convention).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Sequence

from repro import __version__


def _emit(args: argparse.Namespace, payload: dict[str, Any]) -> bool:
    """Print *payload* as JSON when ``--json`` was passed.

    Returns True when JSON mode consumed the output (the caller skips
    its human-readable rendering).
    """
    if getattr(args, "json", False):
        print(json.dumps(payload, indent=2))
        return True
    return False


#: Shared exit-code contract of every finding-producing subcommand.
EXIT_OK = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _finding_exit(report: Any) -> int:
    """Map a :class:`repro.analysis.report.Report` to an exit code."""
    return EXIT_FINDINGS if report.has_errors() else EXIT_OK


def _cmd_figure4(args: argparse.Namespace) -> int:
    from repro.bench.figure4 import Figure4Spec, run_figure4
    from repro.bench.reporting import format_series, format_table

    spec = Figure4Spec(
        u_procs=args.u_procs,
        exports=args.exports,
        runs=args.runs,
        buddy_help=not args.no_buddy,
        seed=args.seed,
    )
    result = run_figure4(spec)
    payload = {
        "spec": {
            "u_procs": spec.u_procs,
            "exports": spec.exports,
            "runs": spec.runs,
            "buddy_help": spec.buddy_help,
            "tolerance": spec.tolerance,
            "request_period": spec.request_period,
        },
        "runs": [
            {
                "series": run.series,
                "decisions": run.decisions,
                "t_ub": run.t_ub,
                "optimal_iteration": run.optimal_iteration,
                "buddy_messages": run.buddy_messages,
            }
            for run in result.runs
        ],
    }
    if args.json == "-":
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"Figure 4: U={spec.u_procs}, {spec.exports} exports, "
        f"{spec.runs} runs, buddy-help {'off' if args.no_buddy else 'on'}"
    )
    mean = result.mean_series()
    print(format_series("p_s export time (mean of runs)", mean, unit="s"))
    rows = []
    for i, run in enumerate(result.runs):
        s = run.summary()
        rows.append([
            i, f"{s.head_mean * 1e3:.3f}", f"{s.body_mean * 1e3:.3f}",
            f"{s.tail_mean * 1e3:.3f}", f"{run.skip_fraction:.2f}",
            run.optimal_iteration if run.optimal_iteration is not None else "-",
            f"{run.t_ub * 1e3:.2f}",
        ])
    print(format_table(
        ["run", "head ms", "body ms", "tail ms", "skip%", "opt iter", "T_ub ms"],
        rows,
    ))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh)
        print(f"wrote {args.json}")
    return 0


def _demo_run(
    buddy_help: bool,
    tracer: Any = None,
    *,
    causal: bool = False,
    sinks: Sequence[Any] = (),
    interval: float = 0.25,
    match_backend: str = "legacy",
    seed: int = 2,
    provenance: str | None = None,
    fault_plan: Any = None,
) -> Any:
    """The report/trace demo: the Figure-4 shape on two tiny programs.

    Program F exports 46 steps with rank 1 four times slower (the
    paper's ``p_s``); program U imports twice.  Returns the
    :class:`repro.RunResult`.
    """
    import repro
    from repro.core.coupler import RegionDef
    from repro.data import BlockDecomposition

    config = "F c0 /bin/F 2\nU c1 /bin/U 2\n#\nF.d U.d REGL 2.5\n"

    def f_main(ctx: Any) -> Any:
        scale = 4.0 if ctx.rank == 1 else 1.0
        for k in range(46):
            yield from ctx.export("d", 1.6 + k)
            yield from ctx.compute(0.001 * scale)

    def u_main(ctx: Any) -> Any:
        for want in (20.0, 40.0):
            yield from ctx.compute(0.004)
            yield from ctx.import_("d", want)

    return repro.run(
        config,
        [
            repro.Program(
                "F", main=f_main,
                regions={"d": RegionDef(BlockDecomposition((16, 16), (2, 1)))},
            ),
            repro.Program(
                "U", main=u_main,
                regions={"d": RegionDef(BlockDecomposition((16, 16), (1, 2)))},
            ),
        ],
        repro.RunOptions(
            buddy_help=buddy_help,
            tracer=tracer,
            seed=seed,
            causal_trace=causal,
            telemetry_sinks=tuple(sinks),
            telemetry_interval=interval,
            match_backend=match_backend,
            provenance=provenance,
            fault_plan=fault_plan,
        ),
    )


#: Comparison keys diffed by ``report --baseline`` and their polarity.
_DIFF_KEYS = (
    ("t_ub_with_help", "lower"),
    ("t_ub_without_help", "lower"),
    ("t_ub_saving", "higher"),
    ("t_ub_no_help_estimate", "info"),
)


def _diff_comparison(
    base: dict[str, Any], current: dict[str, Any], threshold: float
) -> tuple[list[dict[str, Any]], list[str]]:
    """Per-key baseline diff rows plus the regressed key names.

    A ``lower``-is-better key regresses when the current value exceeds
    the baseline by more than *threshold* (relative); ``higher`` keys
    regress on the symmetric drop; ``info`` keys never regress.
    """
    rows: list[dict[str, Any]] = []
    regressions: list[str] = []
    for key, direction in _DIFF_KEYS:
        b, c = base.get(key), current.get(key)
        if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
            continue
        delta = float(c) - float(b)
        allowance = threshold * abs(float(b)) + 1e-12
        regressed = (direction == "lower" and delta > allowance) or (
            direction == "higher" and -delta > allowance
        )
        rows.append({
            "key": key,
            "baseline": float(b),
            "current": float(c),
            "delta": delta,
            "direction": direction,
            "regressed": regressed,
        })
        if regressed:
            regressions.append(key)
    return rows, regressions


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.export import REPORT_SCHEMA

    backend = getattr(args, "match_backend", "legacy")
    with_help = _demo_run(buddy_help=True, match_backend=backend)
    without_help = _demo_run(buddy_help=False, match_backend=backend)
    runs = [("buddy_on", with_help), ("buddy_off", without_help)]
    paper_on = with_help.paper_metrics
    paper_off = without_help.paper_metrics
    comparison = {
        "t_ub_with_help": paper_on.t_ub_total,
        "t_ub_without_help": paper_off.t_ub_total,
        "t_ub_saving": paper_off.t_ub_total - paper_on.t_ub_total,
        "t_ub_no_help_estimate": paper_on.t_ub_no_help_estimate,
    }
    payload: dict[str, Any] = {
        "schema": REPORT_SCHEMA,
        "match_backend": backend,
        "runs": [
            {
                "name": name,
                "sim_time": result.sim_time,
                "counters": result.counters,
                "metrics": result.metrics.as_dict(),
            }
            for name, result in runs
        ],
        "comparison": comparison,
    }
    diff_rows: list[dict[str, Any]] = []
    regressions: list[str] = []
    if getattr(args, "baseline", None):
        from pathlib import Path

        from repro.obs.export import validate_report_payload

        try:
            base_payload = json.loads(
                Path(args.baseline).read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        problems = validate_report_payload(base_payload)
        if problems:
            for p in problems:
                print(f"error: baseline: {p}", file=sys.stderr)
            return 2
        diff_rows, regressions = _diff_comparison(
            base_payload.get("comparison") or {}, comparison, args.threshold
        )
        payload["baseline"] = {
            "path": args.baseline,
            "threshold": args.threshold,
            "diff": diff_rows,
            "regressions": regressions,
        }
    if _emit(args, payload):
        return 1 if regressions else 0
    for name, result in runs:
        print(f"\n== {name}")
        print(result.metrics.paper.render() if result.metrics.paper else "")
        if args.verbose:
            print()
            print(result.metrics.render())
    print(
        f"\nT_ub with buddy-help    = {comparison['t_ub_with_help']:.6g} s"
        f"\nT_ub without buddy-help = {comparison['t_ub_without_help']:.6g} s"
        f"\nmeasured saving         = {comparison['t_ub_saving']:.6g} s"
        f"\ncounterfactual estimate = {comparison['t_ub_no_help_estimate']:.6g} s"
        " (with-help run, no-help estimate)"
    )
    if getattr(args, "baseline", None):
        print(
            f"\nbaseline diff vs {args.baseline} "
            f"(threshold {args.threshold:.0%}):"
        )
        for row in diff_rows:
            status = "REGRESSED" if row["regressed"] else (
                "info" if row["direction"] == "info" else "ok"
            )
            print(
                f"  {row['key']:<22} base {row['baseline']:>12.6g}  "
                f"now {row['current']:>12.6g}  "
                f"delta {row['delta']:>+12.6g}  {status}"
            )
        if regressions:
            print(
                f"FAIL: regression beyond threshold: {', '.join(regressions)}",
                file=sys.stderr,
            )
            return 1
    return 0


def _cmd_traces(args: argparse.Namespace) -> int:
    from repro.bench.traces import (
        scenario_fig5,
        scenario_fig7_with_buddy,
        scenario_fig8_without_buddy,
    )

    causal_opt = getattr(args, "causal", None)
    if getattr(args, "chrome", None) or causal_opt is not None:
        from repro.obs.export import write_chrome_trace
        from repro.util.tracing import Tracer

        result = _demo_run(
            buddy_help=True, tracer=Tracer(), causal=causal_opt is not None
        )
        causal = result.causal if causal_opt is not None else None
        payload: dict[str, Any] = {}
        lines: list[str] = []
        if causal is not None:
            payload["causal"] = {
                "spans": len(causal.spans),
                "imports": len(causal.trace_ids),
                "resolutions": len(causal.resolutions),
                "buddy_skips": len(causal.buddy_skips),
            }
            if causal_opt == "-":
                payload["causal"]["report"] = causal.as_dict()
                lines.append(causal.render())
            else:
                from pathlib import Path

                Path(causal_opt).write_text(
                    causal.to_json() + "\n", encoding="utf-8"
                )
                payload["causal"]["path"] = causal_opt
                lines.append(
                    f"wrote {causal_opt} ({len(causal.spans)} causal spans, "
                    f"{len(causal.resolutions)} resolutions, "
                    f"{len(causal.buddy_skips)} buddy skips)"
                )
        if getattr(args, "chrome", None):
            path = write_chrome_trace(args.chrome, result.timeline, causal=causal)
            spans = result.timeline.span_count()
            events = result.timeline.event_count()
            payload.update({
                "path": str(path),
                "spans": spans,
                "instants": events,
                "threads": result.timeline.whos(),
            })
            flows = " + causal flow arrows" if causal is not None else ""
            lines.append(
                f"wrote {path} ({spans} spans, {events} instants{flows}; "
                "load in chrome://tracing or https://ui.perfetto.dev)"
            )
        if not _emit(args, payload):
            print("\n".join(lines))
        return 0

    scenarios = {
        "5": ("Figure 5: typical buddy-help scenario (REGL 2.5)", scenario_fig5),
        "7": ("Figure 7: with buddy-help (REGL 5.0)", scenario_fig7_with_buddy),
        "8": ("Figure 8: without buddy-help (REGL 5.0)", scenario_fig8_without_buddy),
    }
    wanted = list(scenarios.keys()) if args.figure == "all" else [args.figure]
    results = {}
    for key in wanted:
        title, fn = scenarios[key]
        scenario = fn()
        results[key] = (title, scenario)
    if _emit(args, {
        "figures": {
            key: {
                "title": title,
                "trace": scenario.rendered(),
                "skips": scenario.skip_count(),
                "memcpys": scenario.memcpy_count(),
                "t_ub": scenario.process.state.buffer.t_ub(),
            }
            for key, (title, scenario) in results.items()
        }
    }):
        return 0
    for title, scenario in results.values():
        print(f"\n== {title}\n")
        print(scenario.rendered())
        print(
            f"\n  {scenario.skip_count()} skips, {scenario.memcpy_count()} memcpys, "
            f"T_i ledger = {scenario.process.state.buffer.t_ub():.0f}"
        )
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.bench.scenarios import run_exporter_slower, run_importer_slower

    a = run_importer_slower()
    b_on = run_exporter_slower(buddy_help=True)
    b_off = run_exporter_slower(buddy_help=False)
    if _emit(args, {
        "importer_slower": {
            "buffered_fraction": a.buffered_fraction,
            "skip_fraction": a.skip_fraction,
            "t_ub": a.buffer_stats.t_ub,
        },
        "exporter_slower": {
            ("buddy_on" if b is b_on else "buddy_off"): {
                "buffered_fraction": b.buffered_fraction,
                "skip_fraction": b.skip_fraction,
                "t_ub": b.buffer_stats.t_ub,
                "export_time": b.exporter_export_time_total,
            }
            for b in (b_on, b_off)
        },
    }):
        return 0
    print(
        f"Figure 3(a) importer slower:  buffered {a.buffered_fraction:.0%}, "
        f"skipped {a.skip_fraction:.0%}, T_ub {a.buffer_stats.t_ub:.4g} s"
    )
    for buddy, b in ((True, b_on), (False, b_off)):
        print(
            f"Figure 3(b) exporter slower (buddy {'on ' if buddy else 'off'}): "
            f"buffered {b.buffered_fraction:.0%}, skipped {b.skip_fraction:.0%}, "
            f"T_ub {b.buffer_stats.t_ub:.4g} s, "
            f"export time {b.exporter_export_time_total:.4g} s"
        )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.bench.reporting import format_table
    from repro.bench.resilience import run_resilience_sweep

    requests = max(1, (args.iterations - 1) // 2)
    if not args.json:
        print(
            f"chaos sweep: {args.iterations} exports, {requests} requests, "
            f"seed {args.seed}, dup {args.dup:g}, jitter {args.jitter:g}"
        )
    sweep = run_resilience_sweep(
        drop_rates=tuple(args.drop_rates),
        exports=args.iterations,
        requests=requests,
        seed=args.seed,
        dup=args.dup,
        delay_jitter=args.jitter,
    )
    base = sweep.baseline
    if _emit(args, {
        "answers_consistent": sweep.answers_consistent,
        "runs": [
            {
                "drop": run.drop,
                "answers_match": run.answers_match(base),
                "mean_answer_latency": run.mean_answer_latency,
                "t_ub": run.t_ub,
                "skips": run.skip_count,
                "retransmissions": run.retransmissions,
                "dup_discards": run.dup_discards,
                "sim_time": run.sim_time,
            }
            for run in sweep.runs
        ],
    }):
        return 0 if sweep.answers_consistent else 1
    rows = []
    for run in sweep.runs:
        label = "baseline" if run is base else f"{run.drop:g}"
        rows.append([
            label,
            "yes" if run.answers_match(base) else "NO",
            f"{run.mean_answer_latency * 1e3:.3f}",
            f"{run.t_ub * 1e3:.3f}",
            run.skip_count,
            run.retransmissions,
            run.dup_discards,
            f"{run.sim_time:.4f}",
        ])
    print(format_table(
        ["drop", "same answers", "latency ms", "T_ub ms", "skips",
         "retrans", "dup disc", "sim t"],
        rows,
    ))
    if sweep.answers_consistent:
        print("OK: every chaos run reproduced the fault-free answers")
        return 0
    print("FAIL: answers diverged under faults", file=sys.stderr)
    return 1


def _cmd_experiments(args: argparse.Namespace) -> int:
    import io

    from repro.bench.experiments_report import generate_report

    if args.json:
        buf = io.StringIO()
        generate_report(buf, exports=args.exports, runs=args.runs)
        _emit(args, {"report_markdown": buf.getvalue()})
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(buf.getvalue())
        return 0
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            generate_report(fh, exports=args.exports, runs=args.runs)
        print(f"wrote {args.out}")
    else:
        generate_report(sys.stdout, exports=args.exports, runs=args.runs)
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    """Record the coupled demo into a ``repro.prov/v1`` provenance log."""
    from repro.obs.prov import PROV_SCHEMA

    chaos = args.scenario == "chaos"
    drop = args.drop if args.drop is not None else (0.1 if chaos else 0.0)
    dup = args.dup if args.dup is not None else (0.05 if chaos else 0.0)
    jitter = args.jitter if args.jitter is not None else (2e-4 if chaos else 0.0)
    fault_plan = None
    if drop or dup or jitter:
        from repro.faults import FaultPlan

        fault_plan = FaultPlan(seed=args.seed, drop=drop, dup=dup, delay_jitter=jitter)
    result = _demo_run(
        True,
        seed=args.seed,
        match_backend=args.match_backend,
        provenance=args.out,
        fault_plan=fault_plan,
    )
    plan_desc = None
    if fault_plan is not None:
        plan_desc = {
            k: v for k, v in fault_plan.describe().items() if v != float("inf")
        }
    payload = {
        "schema": PROV_SCHEMA,
        "log": args.out,
        "scenario": args.scenario,
        "seed": args.seed,
        "match_backend": args.match_backend,
        "fault_plan": plan_desc,
        "sim_time": result.sim_time,
        "counters": result.counters,
    }
    if _emit(args, payload):
        return EXIT_OK
    print(
        f"recorded {args.scenario} run (seed {args.seed}, "
        f"backend {args.match_backend}) -> {args.out}"
    )
    print(
        f"  sim_time {result.sim_time:.6g}  "
        f"ctl {result.counters.get('ctl_messages', 0)} msgs  "
        f"retransmissions {result.counters.get('retransmissions', 0)}"
    )
    return EXIT_OK


def _cmd_replay(args: argparse.Namespace) -> int:
    """Verify, time-travel, or differentially replay a provenance log."""
    from repro.obs.prov import ProvenanceError, read_log, validate_provenance_log
    from repro.obs.replay import differential_replay, materialize, verify_replay

    try:
        log = read_log(args.log)
    except (ProvenanceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    problems = validate_provenance_log(log)
    if problems:
        for problem in problems:
            print(f"error: {args.log}: {problem}", file=sys.stderr)
        return EXIT_USAGE
    try:
        if args.at is not None:
            payload = materialize(
                log, args.at, args.query, match_backend=args.match_backend
            )
            if _emit(args, payload):
                return EXIT_OK
            print(f"{args.query} @ t={args.at:g}: {len(payload['rows'])} rows")
            for row in payload["rows"]:
                print("  " + json.dumps(row, sort_keys=True))
            return EXIT_OK
        if args.edit is not None or args.edit_tolerance is not None:
            payload = differential_replay(
                log,
                fault_plan_path=args.edit,
                tolerance=args.edit_tolerance,
                match_backend=args.match_backend,
            )
            if _emit(args, payload):
                return EXIT_OK
            diff = payload["diff"]
            res, skips = diff["resolutions"], diff["buddy_skips"]
            print(
                f"differential replay of {args.log} "
                f"(edits: {', '.join(sorted(payload['edits'])) or 'none'})"
            )
            print(
                f"  resolutions: {len(res['changed'])} changed, "
                f"{len(res['added'])} added, {len(res['removed'])} removed"
            )
            print(
                f"  buddy_skips: {len(skips['added'])} added, "
                f"{len(skips['removed'])} removed"
            )
            for c in res["changed"]:
                fields = ", ".join(
                    f"{k}: {v['before']!r} -> {v['after']!r}"
                    for k, v in sorted(c["changed"].items())
                )
                print(f"    {c['connection']} @{c['request']:g} {c['who']}: {fields}")
            print("  diff: " + ("empty" if diff["empty"] else "NON-EMPTY"))
            return EXIT_OK
        payload = verify_replay(log, match_backend=args.match_backend)
    except ProvenanceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    code = EXIT_OK if payload["ok"] else EXIT_FINDINGS
    if _emit(args, payload):
        return code
    mode = "cross-backend" if payload["cross_backend"] else "bit-exact"
    print(
        f"replay of {args.log} ({payload['recorded_backend']} -> "
        f"{payload['replayed_backend']}, {mode})"
    )
    if payload["cross_backend"]:
        print(f"  decisions_match: {payload['decisions_match']}")
    else:
        print(f"  report identical: {payload['report_identical']}")
        print(f"  causal identical: {payload['causal_identical']}")
    print("  OK" if payload["ok"] else "  MISMATCH")
    return code


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.micro import compare_history, run_micro, write_report

    if args.history:
        payload = compare_history(args.dir, allowance=args.allowance)
        regressions = payload["regressions"]
        if _emit(args, payload):
            return 1 if regressions else 0
        for skip in payload.get("skipped", ()):
            print(
                f"warning: skipped {skip['report']}: {skip['reason']}",
                file=sys.stderr,
            )
        if not payload["reports"]:
            print(f"no usable BENCH_*.json reports in {args.dir}", file=sys.stderr)
            return 1
        print(
            f"bench history: {len(payload['reports'])} reports, "
            f"latest {payload['latest']}, allowance {args.allowance:.0%}"
        )
        for name, m in payload["metrics"].items():
            flag = "  REGRESSED" if m["regressed"] else ""
            print(
                f"  {name:<26} latest {m['latest']:>9.3f}x  "
                f"best {m['best']:>9.3f}x ({m['best_report']}){flag}"
            )
        if regressions:
            print(
                f"FAIL: speedup regression vs best: {', '.join(regressions)}",
                file=sys.stderr,
            )
            return 1
        return 0

    payload = run_micro(quick=args.quick)
    # Recorded for payload provenance: the match_throughput micro
    # always measures both backends; this is the default engine the
    # rest of the benches (and any accompanying runs) were using.
    payload["match_backend"] = getattr(args, "match_backend", "legacy")
    write_report(payload, args.out)
    if _emit(args, payload):
        return 0
    print(f"micro benchmarks ({'quick' if args.quick else 'full'}):")
    for r in payload["results"]:
        print(
            f"  {r['name']:<26} baseline {r['baseline']:>14.1f}  "
            f"optimized {r['optimized']:>14.1f}  {r['unit']}"
            f"  ({r['speedup']:g}x)"
        )
    print(f"wrote {args.out}")
    return 0


def _render_snapshot(rec: dict[str, Any]) -> str:
    """One human-readable block per ``repro.telemetry/v1`` record."""
    totals = rec.get("totals", {})
    head = (
        f"{'FINAL ' if rec.get('final') else ''}t={rec.get('time', 0.0):.3f}  "
        f"pending={totals.get('pending_imports', 0)}  "
        f"buddy_skips={totals.get('buddy_skips', 0)}  "
        f"T_ub={totals.get('t_ub', 0.0):.6g}  "
        f"ctl={totals.get('ctl_messages', 0)}msg/"
        f"{totals.get('ctl_bytes', 0)}B  "
        f"data={totals.get('data_messages', 0)}msg"
    )
    parts = [head]
    for name, p in sorted(rec.get("programs", {}).items()):
        last = p.get("last_export_ts")
        parts.append(
            f"    {name}: alive={p.get('alive', 0)}/{p.get('ranks', 0)}  "
            f"exports={p.get('exports', 0)}  "
            f"pending={p.get('pending_imports', 0)}  "
            f"done={p.get('imports_completed', 0)}  "
            f"last_export={'-' if last is None else f'{last:g}'}"
        )
    return "\n".join(parts)


def _monitor_show(args: argparse.Namespace, rec: dict[str, Any]) -> None:
    if args.json:
        print(json.dumps(rec, sort_keys=True))
    else:
        print(_render_snapshot(rec))


#: First reconnect delay for ``monitor --attach`` (doubles per retry).
_ATTACH_BACKOFF = 0.25
#: Reconnect delay ceiling.
_ATTACH_BACKOFF_CAP = 2.0


def _monitor_attach(args: argparse.Namespace) -> int:
    """Stream a served session's telemetry over the wire.

    Exit contract: :data:`EXIT_OK` when the stream ends on a ``final``
    snapshot, :data:`EXIT_FINDINGS` when it ends without one (the
    session failed or was cancelled), :data:`EXIT_USAGE` on connection
    errors and timeouts.

    Transient connection loss mid-stream is not terminal: the stream
    reconnects with bounded exponential backoff (``--retries``
    attempts, delays doubling from 0.25s up to 2s), deduplicating the
    server's replayed records by snapshot time.  A silent-session
    timeout and exhausted retries still exit :data:`EXIT_USAGE`.
    """
    import time as _time

    from repro.serve.client import ServeClient, ServeError, split_attach_url

    base, session_id = split_attach_url(args.attach)
    if args.session:
        session_id = args.session
    client = ServeClient(base, timeout=args.timeout)
    if session_id is None:
        # No session in the URL: attach to the most recent one.
        try:
            sessions = client.sessions()
        except (ServeError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        if not sessions:
            print(f"no sessions on {base}", file=sys.stderr)
            return EXIT_USAGE
        session_id = str(sessions[-1]["id"])
    saw_final = False
    last_time: float | None = None
    attempts = 0
    delay = _ATTACH_BACKOFF
    while True:
        try:
            for rec in client.telemetry(session_id, timeout=args.timeout):
                t = rec.get("time")
                if rec.get("final"):
                    if saw_final:
                        continue  # replayed final after a reconnect
                elif (
                    last_time is not None
                    and isinstance(t, (int, float))
                    and float(t) <= last_time
                ):
                    continue  # replayed on reconnect; already shown
                if isinstance(t, (int, float)):
                    last_time = float(t)
                attempts = 0  # a live record proves the link is healthy
                delay = _ATTACH_BACKOFF
                _monitor_show(args, rec)
                if rec.get("final"):
                    saw_final = True
            break  # server closed the stream cleanly
        except ServeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE
        except TimeoutError as exc:
            # Silence past --timeout is the session stalling, not the
            # link dropping: give up immediately, as before.
            print(
                f"timeout streaming {session_id} from {base}: {exc}",
                file=sys.stderr,
            )
            return EXIT_USAGE
        except OSError as exc:
            attempts += 1
            if attempts > args.retries:
                print(
                    f"connection error streaming {session_id} from {base} "
                    f"after {args.retries} reconnect attempt(s): {exc}",
                    file=sys.stderr,
                )
                return EXIT_USAGE
            print(
                f"connection lost streaming {session_id} from {base} "
                f"(reconnect {attempts}/{args.retries} in {delay:g}s): {exc}",
                file=sys.stderr,
            )
            _time.sleep(delay)
            delay = min(delay * 2.0, _ATTACH_BACKOFF_CAP)
    if saw_final:
        return EXIT_OK
    print(
        f"stream of {session_id} ended without a final snapshot "
        "(session failed or was cancelled)",
        file=sys.stderr,
    )
    return EXIT_FINDINGS


def _cmd_monitor(args: argparse.Namespace) -> int:
    try:
        return _monitor_run(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return EXIT_USAGE


def _monitor_run(args: argparse.Namespace) -> int:
    import time as _time
    from pathlib import Path

    if args.attach:
        return _monitor_attach(args)
    if not args.path:
        print("error: monitor needs a PATH or --attach URL", file=sys.stderr)
        return EXIT_USAGE

    path = Path(args.path)

    def load_records() -> list[dict[str, Any]]:
        if not path.exists():
            return []
        records: list[dict[str, Any]] = []
        for line in path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # a partially-written tail line mid-run
            if isinstance(rec, dict):
                records.append(rec)
        return records

    if not args.follow:
        records = load_records()
        if not records:
            print(f"no telemetry records in {args.path}", file=sys.stderr)
            return EXIT_USAGE
        _monitor_show(args, records[-1])
        return EXIT_OK

    deadline = _time.monotonic() + args.timeout
    shown = 0
    while True:
        records = load_records()
        for rec in records[shown:]:
            _monitor_show(args, rec)
            if rec.get("final"):
                return EXIT_OK
        shown = len(records)
        if _time.monotonic() >= deadline:
            print(
                f"timeout: no final snapshot in {args.path} "
                f"after {args.timeout:g}s",
                file=sys.stderr,
            )
            return EXIT_USAGE
        _time.sleep(args.interval)


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the coupling service until a drain is requested."""
    import asyncio
    import signal

    from repro.serve import ServeConfig, SessionServer

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_sessions=args.max_sessions,
        drain_timeout=args.drain_timeout,
        profile=args.profile,
    )

    async def _serve() -> dict[str, Any]:
        server = SessionServer(config)
        await server.start()
        announce = {
            "schema": "repro.serve/v1",
            "listening": f"http://{config.host}:{server.port}",
            "host": config.host,
            "port": server.port,
            "workers": config.workers,
            "max_sessions": config.max_sessions,
            "profile": config.profile,
        }
        if getattr(args, "json", False):
            print(json.dumps(announce), flush=True)
        else:
            print(
                f"repro serve: listening on {announce['listening']} "
                f"({config.workers} workers, max {config.max_sessions} "
                "sessions); Ctrl-C drains gracefully",
                flush=True,
            )
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, server.shutdown_requested.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # platforms without loop signal handlers
        return await server.serve_until()

    try:
        summary = asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        print("interrupted", file=sys.stderr)
        return EXIT_OK
    if not _emit(args, summary):
        print(
            f"drained: {summary['drained']} session(s) finished, "
            f"{len(summary['cancelled'])} cancelled"
        )
    return EXIT_OK


def _parse_session_params(pairs: Sequence[str]) -> dict[str, Any]:
    """``KEY=VALUE`` pairs → scenario params (values parsed as JSON)."""
    params: dict[str, Any] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"expected KEY=VALUE, got {pair!r}")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw  # bare strings stay strings
    return params


def _cmd_sessions(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient, ServeError

    client = ServeClient(args.url, timeout=args.timeout)
    try:
        if args.action == "submit":
            try:
                params = _parse_session_params(args.param or [])
                fault_plan = json.loads(args.fault) if args.fault else None
            except (ValueError, json.JSONDecodeError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return EXIT_USAGE
            spec: dict[str, Any] = {"scenario": args.scenario, "params": params}
            if fault_plan is not None:
                spec["fault_plan"] = fault_plan
            if args.interval is not None:
                spec["telemetry_interval"] = args.interval
            if args.label:
                spec["label"] = args.label
            if args.provenance:
                spec["provenance"] = True
            info = client.submit(spec)
            if args.wait is not None:
                info = client.wait(info["id"], timeout=args.wait)
            if not _emit(args, info):
                print(f"{info['id']}  {info['state']}")
            if args.wait is not None and info.get("state") != "done":
                return EXIT_FINDINGS
            return EXIT_OK
        if args.action == "list":
            sessions = client.sessions()
            if _emit(args, {"sessions": sessions}):
                return EXIT_OK
            if not sessions:
                print("no sessions")
                return EXIT_OK
            for s in sessions:
                label = f"  [{s['label']}]" if s.get("label") else ""
                error = f"  error: {s['error']}" if s.get("error") else ""
                print(
                    f"{s['id']}  {s['state']:<9}  {s['scenario']}"
                    f"{label}{error}"
                )
            return EXIT_OK
        if args.action == "cancel":
            info = client.cancel(args.id, reason=args.reason)
            if not _emit(args, info):
                print(f"{info['id']}  {info['state']}")
            return EXIT_OK
        if args.action == "report":
            report = client.report(args.id)
            print(json.dumps(report, indent=None if args.json else 2))
            return EXIT_OK
        if args.action == "provenance":
            text = client.provenance(args.id)
            if args.out:
                with open(args.out, "w", encoding="utf-8") as fh:
                    fh.write(text)
                print(f"wrote {args.out} ({len(text)} bytes)")
            else:
                sys.stdout.write(text)
            return EXIT_OK
        if args.action == "wait":
            info = client.wait(args.id, timeout=args.timeout)
            if not _emit(args, info):
                print(f"{info['id']}  {info['state']}")
            return EXIT_OK if info.get("state") == "done" else EXIT_FINDINGS
        raise AssertionError(args.action)  # pragma: no cover
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        # A missing report on a failed session is a finding, not misuse.
        return EXIT_FINDINGS if exc.status == 409 else EXIT_USAGE
    except TimeoutError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FINDINGS
    except OSError as exc:
        print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
        return EXIT_USAGE


def _cmd_watch(args: argparse.Namespace) -> int:
    """Evaluate SLO rules against a server's fleet rollup.

    Exit contract mirrors ``report --baseline``: :data:`EXIT_FINDINGS`
    when any rule trips, :data:`EXIT_OK` on a clean fleet,
    :data:`EXIT_USAGE` on malformed rules or connection errors.
    """
    from pathlib import Path

    from repro.obs.stream import JsonlSink
    from repro.obs.watch import ALERTS_SCHEMA, Watchdog, parse_rules
    from repro.serve.client import ServeClient, ServeError

    texts: list[str] = list(args.rule or [])
    if args.rules_file:
        try:
            texts.extend(
                Path(args.rules_file).read_text(encoding="utf-8").splitlines()
            )
        except OSError as exc:
            print(f"error: cannot read {args.rules_file}: {exc}", file=sys.stderr)
            return EXIT_USAGE
    try:
        rules = parse_rules(texts)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if not rules:
        print("error: watch needs at least one --rule or --rules-file",
              file=sys.stderr)
        return EXIT_USAGE
    baseline: dict[str, Any] | None = None
    if args.baseline:
        try:
            baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}",
                  file=sys.stderr)
            return EXIT_USAGE
    client = ServeClient(args.url, timeout=args.timeout)
    sinks = [JsonlSink(args.alerts)] if args.alerts else []
    watchdog = Watchdog(client.fleet, rules, baseline=baseline, sinks=sinks)
    try:
        alerts = watchdog.run(args.iterations, args.interval)
    except ValueError as exc:  # baseline-relative rule without --baseline
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except OSError as exc:
        print(f"error: cannot reach {args.url}: {exc}", file=sys.stderr)
        return EXIT_USAGE
    finally:
        for sink in sinks:
            sink.close()
    payload = {
        "schema": ALERTS_SCHEMA,
        "url": args.url,
        "rules": [r.text for r in rules],
        "evaluations": watchdog.evaluations,
        "alerts": alerts,
    }
    if _emit(args, payload):
        return EXIT_FINDINGS if alerts else EXIT_OK
    print(
        f"watch: {len(rules)} rule(s), {watchdog.evaluations} evaluation(s), "
        f"{len(alerts)} alert(s)"
    )
    for alert in alerts:
        scen = alert.get("scenario") or "*"
        print(f"  ALERT [{scen}] {alert['rule']}: {alert['message']}")
    if alerts:
        print("FAIL: SLO rule(s) violated", file=sys.stderr)
        return EXIT_FINDINGS
    print("  fleet healthy")
    return EXIT_OK


def _cmd_validate_config(args: argparse.Namespace) -> int:
    from repro.core.config import load_config
    from repro.core.exceptions import ConfigError

    try:
        cfg = load_config(args.path)
        warnings = cfg.validate()
    except (ConfigError, OSError) as exc:
        if not _emit(args, {"ok": False, "error": str(exc)}):
            print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    if _emit(args, {
        "ok": True,
        "programs": {
            name: {"nprocs": prog.nprocs, "cluster": prog.cluster}
            for name, prog in sorted(cfg.programs.items())
        },
        "connections": [str(conn) for conn in cfg.connections],
        "warnings": list(warnings),
    }):
        return 0
    print(f"OK: {len(cfg.programs)} programs, {len(cfg.connections)} connections")
    for name, prog in sorted(cfg.programs.items()):
        print(f"  program {name}: {prog.nprocs} procs on {prog.cluster}")
    for conn in cfg.connections:
        print(f"  connection {conn}")
    for w in warnings:
        print(f"  warning: {w}")
    return 0


#: File suffixes treated as coupling configuration files by ``lint``.
_CONFIG_SUFFIXES = (".cfg", ".conf", ".cpl")


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis import analyze_config_text, lint_path
    from repro.analysis.report import Report

    report = Report()
    for raw in args.paths:
        p = Path(raw)
        if not p.exists():
            print(f"error: no such path: {raw}", file=sys.stderr)
            return EXIT_USAGE
        if p.is_dir():
            report.extend(lint_path(p))
            for suffix in _CONFIG_SUFFIXES:
                for cfg in sorted(p.rglob(f"*{suffix}")):
                    report.extend(
                        analyze_config_text(
                            cfg.read_text(encoding="utf-8"), path=str(cfg)
                        )
                    )
        elif p.suffix == ".py":
            report.extend(lint_path(p))
        else:
            report.extend(
                analyze_config_text(p.read_text(encoding="utf-8"), path=str(p))
            )
    if args.format == "json" or args.json:
        print(report.render_json())
    else:
        print(report.render_text())
    return _finding_exit(report)


def _verify_races(args: argparse.Namespace) -> int:
    """Run the live runtime under the happens-before race detector."""
    import numpy as np

    from repro.analysis.model import SCHEMA
    from repro.analysis.races import RaceMonitor
    from repro.api import RunOptions
    from repro.core.coupler import RegionDef
    from repro.core.live import LiveCoupledSimulation
    from repro.data import BlockDecomposition

    def f_main(ctx: Any) -> None:
        shape = ctx.local_region("d").shape
        for k in range(16):
            ts = 1.6 + k
            ctx.export("d", ts, data=np.full(shape, ts))
            ctx.compute(0.001)

    def u_main(ctx: Any) -> None:
        for want in (8.0, 14.0):
            ctx.compute(0.002)
            ctx.import_("d", want)

    monitor = RaceMonitor()
    sim = LiveCoupledSimulation(
        "F c0 /bin/F 2\nU c1 /bin/U 2\n#\nF.d U.d REGL 2.5\n",
        options=RunOptions(
            runtime="live", race_monitor=monitor, default_timeout=20.0
        ),
    )
    sim.add_program(
        "F", main=f_main,
        regions={"d": RegionDef(BlockDecomposition((8, 8), (2, 1)))},
    )
    sim.add_program(
        "U", main=u_main,
        regions={"d": RegionDef(BlockDecomposition((8, 8), (1, 2)))},
    )
    sim.run(join_timeout=60.0)
    report = monitor.report()
    payload = {
        "schema": SCHEMA,
        "mode": "races",
        "stats": {"accesses": report.examined},
        "report": report.to_dict(),
    }
    if not _emit(args, payload):
        print(f"monitored {report.examined} shared-state accesses")
        print(report.render_text())
    return _finding_exit(report)


def _cmd_verify(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.model import (
        check_suite,
        mutation_config,
        replay_schedule,
    )
    from repro.util.validation import ValidationError

    if args.replay:
        path = Path(args.replay)
        if not path.exists():
            print(f"error: no such schedule: {args.replay}", file=sys.stderr)
            return EXIT_USAGE
        try:
            schedule = json.loads(path.read_text(encoding="utf-8"))
            result = replay_schedule(schedule)
        except (ValidationError, ValueError, KeyError) as exc:
            print(f"error: bad schedule: {exc}", file=sys.stderr)
            return EXIT_USAGE
        if not _emit(args, result.to_payload()):
            print(
                f"replayed {result.executed} actions"
                + (f" (rule {result.rule})" if result.rule else "")
            )
            if result.error:
                print(f"violation reproduced: {result.error}")
            print(result.report.render())
        return EXIT_OK

    if args.races:
        return _verify_races(args)

    base = mutation_config(args.mutate) if args.mutate else None
    backend = getattr(args, "match_backend", "legacy")
    if backend != "legacy":
        from dataclasses import replace as _replace

        from repro.analysis.model import ModelConfig

        base = _replace(
            base if base is not None else ModelConfig(), match_backend=backend
        )
    suite = check_suite(base, max_states=args.max_states, por=not args.no_por)
    if args.cex:
        Path(args.cex).write_text(
            json.dumps(suite.counterexamples, indent=2), encoding="utf-8"
        )
    payload = suite.to_payload()
    payload["match_backend"] = backend
    if not _emit(args, payload):
        for name, result in suite.worlds:
            s = result.stats
            flag = "complete" if s["complete"] else "TRUNCATED"
            print(
                f"{name:>10}: {s['states']:>8} states "
                f"{s['transitions']:>9} transitions "
                f"{s['elapsed_sec']:6.1f}s  {flag}"
            )
        print(
            f"{'total':>10}: {suite.total_states:>8} states across "
            f"{len(suite.worlds)} worlds"
        )
        print(suite.report.render_text())
        if args.cex:
            print(f"counterexample schedules written to {args.cex}")
    return _finding_exit(suite.report)


def _cmd_version(args: argparse.Namespace) -> int:
    if not _emit(args, {"version": __version__}):
        print(__version__)
    return 0


def _add_json_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--json", action="store_true", help="machine-readable JSON on stdout"
    )


def _add_match_backend_flag(p: argparse.ArgumentParser) -> None:
    from repro.match.backend import MATCH_BACKENDS

    p.add_argument(
        "--match-backend",
        choices=MATCH_BACKENDS,
        default="legacy",
        help="match engine for the runs (recorded in the JSON payload; "
        "decisions are bit-identical between backends)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Buddy-help coupling framework (Wu & Sussman, IPDPS 2007)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p4 = sub.add_parser("figure4", help="run one Figure-4 configuration")
    p4.add_argument("--u-procs", type=int, default=16, choices=[4, 8, 16, 32])
    p4.add_argument("--exports", type=int, default=1001)
    p4.add_argument("--runs", type=int, default=6)
    p4.add_argument("--no-buddy", action="store_true")
    p4.add_argument("--seed", type=int, default=2007)
    p4.add_argument(
        "--json", metavar="PATH", nargs="?", const="-",
        help="dump run data as JSON: to stdout (no value) or to PATH",
    )
    p4.set_defaults(fn=_cmd_figure4)

    pt = sub.add_parser(
        "traces",
        aliases=["trace"],
        help="print the Figure 5/7/8 traces (or export a Chrome trace)",
    )
    pt.add_argument("--figure", choices=["5", "7", "8", "all"], default="all")
    pt.add_argument(
        "--chrome", metavar="PATH",
        help="run the coupled demo and write a Chrome trace_event JSON "
        "timeline to PATH (chrome://tracing / Perfetto)",
    )
    pt.add_argument(
        "--causal", metavar="PATH", nargs="?", const="-",
        help="run the demo with causal tracing on; write the "
        "repro.causal/v1 report to PATH (print the summary with no "
        "PATH); with --chrome, adds happens-before flow arrows",
    )
    _add_json_flag(pt)
    pt.set_defaults(fn=_cmd_traces)

    pr = sub.add_parser(
        "report",
        help="per-run observability rollup: T_ub, buddy-help savings, metrics",
    )
    pr.add_argument(
        "--verbose", action="store_true",
        help="also print the full metric catalog per run",
    )
    pr.add_argument(
        "--baseline", metavar="PATH",
        help="diff the comparison block against a saved repro.report/v1 "
        "payload; exit 1 on regression beyond --threshold",
    )
    pr.add_argument(
        "--threshold", type=float, default=0.10, metavar="FRAC",
        help="relative regression allowance for --baseline (default 0.10)",
    )
    _add_match_backend_flag(pr)
    _add_json_flag(pr)
    pr.set_defaults(fn=_cmd_report)

    ps = sub.add_parser("scenarios", help="run the Figure-3 scenarios")
    _add_json_flag(ps)
    ps.set_defaults(fn=_cmd_scenarios)

    pc = sub.add_parser(
        "chaos", help="fault-injection sweep: answers must not change"
    )
    pc.add_argument(
        "--iterations", type=int, default=40,
        help="exporter iterations (exports) per run",
    )
    pc.add_argument("--seed", type=int, default=7, help="fault-plan seed")
    pc.add_argument(
        "--drop-rates", type=float, nargs="+", default=[0.0, 0.05, 0.2],
        metavar="P", help="control-plane drop probabilities to sweep",
    )
    pc.add_argument("--dup", type=float, default=0.1, help="duplication probability")
    pc.add_argument(
        "--jitter", type=float, default=5e-5, help="max extra delivery delay (s)"
    )
    _add_json_flag(pc)
    pc.set_defaults(fn=_cmd_chaos)

    pb = sub.add_parser(
        "bench", help="hot-path micro benchmarks vs embedded seed baselines"
    )
    pb.add_argument(
        "--quick", action="store_true", help="small sizes for CI smoke runs"
    )
    pb.add_argument(
        "--out", metavar="PATH", default="BENCH_10.json",
        help="report file (default BENCH_10.json)",
    )
    pb.add_argument(
        "--history", action="store_true",
        help="compare every BENCH_*.json in --dir instead of running; "
        "exit 1 when the newest report regresses vs the best",
    )
    pb.add_argument(
        "--dir", default=".", metavar="DIR",
        help="directory searched by --history (default .)",
    )
    pb.add_argument(
        "--allowance", type=float, default=0.10, metavar="FRAC",
        help="relative speedup drop tolerated by --history (default 0.10)",
    )
    _add_match_backend_flag(pb)
    _add_json_flag(pb)
    pb.set_defaults(fn=_cmd_bench)

    prec = sub.add_parser(
        "record",
        help="record the coupled demo into a repro.prov/v1 provenance log",
    )
    prec.add_argument("out", help="provenance log path (.gz compresses)")
    prec.add_argument(
        "--scenario", choices=["demo", "chaos"], default="demo",
        help="demo (fault-free) or chaos (FaultPlan drops/dups/jitter)",
    )
    prec.add_argument("--seed", type=int, default=2, help="run seed (default 2)")
    prec.add_argument(
        "--drop", type=float, default=None, metavar="P",
        help="control-plane drop probability (chaos default 0.1)",
    )
    prec.add_argument(
        "--dup", type=float, default=None, metavar="P",
        help="duplication probability (chaos default 0.05)",
    )
    prec.add_argument(
        "--jitter", type=float, default=None, metavar="S",
        help="max extra delivery delay (chaos default 2e-4)",
    )
    _add_match_backend_flag(prec)
    _add_json_flag(prec)
    prec.set_defaults(fn=_cmd_record)

    prep = sub.add_parser(
        "replay",
        help="bit-exact replay of a provenance log: verify, time-travel, diff",
    )
    prep.add_argument("log", help="repro.prov/v1 log file (.gz supported)")
    prep.add_argument(
        "--at", type=float, default=None, metavar="T",
        help="time-travel: materialize run state at virtual time T",
    )
    prep.add_argument(
        "--query", choices=["ledger", "pending", "matches"], default="ledger",
        help="what --at materializes: buffer ledgers, the PENDING "
        "frontier, or recorded match resolutions (default ledger)",
    )
    prep.add_argument(
        "--edit", metavar="PLAN.json", default=None,
        help="differential replay: re-run under this edited fault plan "
        "and diff the two causal DAGs",
    )
    prep.add_argument(
        "--edit-tolerance", type=float, default=None, metavar="TOL",
        help="differential replay: re-run with every non-EXACT match "
        "policy's tolerance replaced by TOL",
    )
    prep.add_argument(
        "--match-backend", choices=["legacy", "sorted"], default=None,
        help="replay under this match engine instead of the recorded one "
        "(cross-backend verification compares decisions, not digests)",
    )
    _add_json_flag(prep)
    prep.set_defaults(fn=_cmd_replay)

    pm = sub.add_parser(
        "monitor",
        help="render streaming telemetry (JSONL sink file or served session)",
    )
    pm.add_argument(
        "path", nargs="?", default=None,
        help="JsonlSink output file (repro.telemetry/v1 lines)",
    )
    pm.add_argument(
        "--follow", action="store_true",
        help="poll for new snapshots until the final one arrives",
    )
    pm.add_argument(
        "--attach", metavar="URL",
        help="stream live from a repro serve session instead of a file "
        "(server URL or .../sessions/ID URL)",
    )
    pm.add_argument(
        "--session", metavar="ID",
        help="session id for --attach (overrides one embedded in the URL; "
        "defaults to the server's most recent session)",
    )
    pm.add_argument(
        "--interval", type=float, default=0.2, metavar="S",
        help="poll interval for --follow (default 0.2s)",
    )
    pm.add_argument(
        "--timeout", type=float, default=30.0, metavar="S",
        help="give up on --follow after this long (default 30s)",
    )
    pm.add_argument(
        "--retries", type=int, default=5, metavar="N",
        help="--attach reconnect attempts after transient connection "
        "loss, with exponential backoff (default 5; 0 disables)",
    )
    _add_json_flag(pm)
    pm.set_defaults(fn=_cmd_monitor)

    psv = sub.add_parser(
        "serve",
        help="coupling as a service: host many concurrent coupled sessions",
    )
    psv.add_argument("--host", default="127.0.0.1", help="bind address")
    psv.add_argument(
        "--port", type=int, default=8642,
        help="bind port (0 picks an ephemeral one; default 8642)",
    )
    psv.add_argument(
        "--workers", type=int, default=4,
        help="worker processes executing sessions (default 4)",
    )
    psv.add_argument(
        "--max-sessions", type=int, default=256,
        help="active-session cap; more submissions get HTTP 429 "
        "(default 256)",
    )
    psv.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="S",
        help="seconds in-flight sessions get to finish on shutdown "
        "(default 30)",
    )
    psv.add_argument(
        "--profile", action="store_true",
        help="sample-profile every session; phase counters appear on "
        "GET /metrics and per-session profiles in the session info",
    )
    _add_json_flag(psv)
    psv.set_defaults(fn=_cmd_serve)

    pss = sub.add_parser(
        "sessions", help="client for a running repro serve process"
    )
    pss_sub = pss.add_subparsers(dest="action", required=True)

    def _sessions_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--url", default="http://127.0.0.1:8642",
            help="server URL (default http://127.0.0.1:8642)",
        )
        p.add_argument(
            "--timeout", type=float, default=60.0, metavar="S",
            help="request/wait timeout (default 60s)",
        )
        _add_json_flag(p)
        p.set_defaults(fn=_cmd_sessions)

    pss_submit = pss_sub.add_parser("submit", help="submit a new session")
    pss_submit.add_argument(
        "--scenario", default="demo",
        help="registered scenario name (default demo)",
    )
    pss_submit.add_argument(
        "--param", action="append", metavar="KEY=VALUE",
        help="scenario parameter (JSON value; repeatable)",
    )
    pss_submit.add_argument(
        "--fault", metavar="JSON",
        help='fault plan for the session, e.g. \'{"drop": 0.2, "seed": 7}\'',
    )
    pss_submit.add_argument(
        "--interval", type=float, metavar="S",
        help="telemetry snapshot interval (sim seconds)",
    )
    pss_submit.add_argument("--label", help="human-readable session label")
    pss_submit.add_argument(
        "--provenance", action="store_true",
        help="record the session into a repro.prov/v1 provenance log, "
        "retrievable at /sessions/ID/provenance",
    )
    pss_submit.add_argument(
        "--wait", type=float, nargs="?", const=60.0, metavar="S",
        help="block until the session finishes (exit 1 unless it is done)",
    )
    _sessions_common(pss_submit)

    pss_list = pss_sub.add_parser("list", help="list the server's sessions")
    _sessions_common(pss_list)

    pss_cancel = pss_sub.add_parser("cancel", help="cancel a session")
    pss_cancel.add_argument("id", help="session id")
    pss_cancel.add_argument("--reason", help="recorded cancellation reason")
    _sessions_common(pss_cancel)

    pss_report = pss_sub.add_parser(
        "report", help="fetch a finished session's repro.report/v1 payload"
    )
    pss_report.add_argument("id", help="session id")
    _sessions_common(pss_report)

    pss_prov = pss_sub.add_parser(
        "provenance",
        help="fetch a finished session's repro.prov/v1 log "
        "(submit with --provenance first)",
    )
    pss_prov.add_argument("id", help="session id")
    pss_prov.add_argument(
        "--out", metavar="PATH",
        help="write the log to PATH (replayable with repro replay) "
        "instead of stdout",
    )
    _sessions_common(pss_prov)

    pss_wait = pss_sub.add_parser(
        "wait", help="block until a session reaches a terminal state"
    )
    pss_wait.add_argument("id", help="session id")
    _sessions_common(pss_wait)

    pw = sub.add_parser(
        "watch",
        help="SLO watchdog: evaluate rules against a server's fleet rollup",
    )
    pw.add_argument(
        "url", nargs="?", default="http://127.0.0.1:8642",
        help="server URL (default http://127.0.0.1:8642)",
    )
    pw.add_argument(
        "--rule", action="append", metavar="RULE",
        help="SLO rule, e.g. 'error_rate < 0.01' or "
        "'demo:t_ub_p95 < 1.2 * baseline' (repeatable)",
    )
    pw.add_argument(
        "--rules-file", metavar="PATH",
        help="file of rules, one per line (# comments and blanks skipped)",
    )
    pw.add_argument(
        "--baseline", metavar="PATH",
        help="saved repro.fleet/v1 payload baseline-relative rules "
        "compare against (see sessions/GET /fleet)",
    )
    pw.add_argument(
        "--iterations", type=int, default=1, metavar="N",
        help="evaluation passes (default 1)",
    )
    pw.add_argument(
        "--interval", type=float, default=5.0, metavar="S",
        help="seconds between passes (default 5)",
    )
    pw.add_argument(
        "--alerts", metavar="PATH",
        help="append repro.alerts/v1 records to this JSONL file "
        "(.gz compresses)",
    )
    pw.add_argument(
        "--timeout", type=float, default=30.0, metavar="S",
        help="request timeout (default 30s)",
    )
    _add_json_flag(pw)
    pw.set_defaults(fn=_cmd_watch)

    pv = sub.add_parser("validate-config", help="check a coupling config file")
    pv.add_argument("path")
    _add_json_flag(pv)
    pv.set_defaults(fn=_cmd_validate_config)

    pl = sub.add_parser(
        "lint",
        help="static analysis: config graph checks + Property-1 AST lint",
    )
    pl.add_argument(
        "paths",
        nargs="+",
        help="Python files/directories to lint and/or config files to analyze",
    )
    pl.add_argument(
        "--format", choices=["text", "json"], default="text", dest="format"
    )
    _add_json_flag(pl)
    pl.set_defaults(fn=_cmd_lint)

    pvf = sub.add_parser(
        "verify",
        help="exhaustive control-plane model checking + race detection",
    )
    pvf.add_argument(
        "--mutate",
        # Mirrors repro.analysis.model.MUTATIONS (kept literal so parser
        # construction stays import-light; asserted equal in the tests).
        choices=["no_dedup", "no_answer_cache"],
        help="check a deliberately broken protocol (expects a violation)",
    )
    pvf.add_argument(
        "--max-states",
        type=int,
        default=500_000,
        help="per-world distinct-state cap (default 500000)",
    )
    pvf.add_argument(
        "--no-por",
        action="store_true",
        help="disable sleep-set partial-order reduction",
    )
    pvf.add_argument(
        "--cex",
        metavar="PATH",
        help="write counterexample schedules (JSON) to PATH",
    )
    pvf.add_argument(
        "--replay",
        metavar="PATH",
        help="replay one counterexample schedule through the DES runtime",
    )
    pvf.add_argument(
        "--races",
        action="store_true",
        help="run the live runtime under the vector-clock race detector",
    )
    _add_match_backend_flag(pvf)
    _add_json_flag(pvf)
    pvf.set_defaults(fn=_cmd_verify)

    pe = sub.add_parser(
        "experiments", help="run all experiments; emit a markdown report"
    )
    pe.add_argument("--out", metavar="PATH", help="write to a file (default stdout)")
    pe.add_argument("--exports", type=int, default=1001)
    pe.add_argument("--runs", type=int, default=6)
    _add_json_flag(pe)
    pe.set_defaults(fn=_cmd_experiments)

    pver = sub.add_parser("version", help="print the package version")
    _add_json_flag(pver)
    pver.set_defaults(fn=_cmd_version)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
