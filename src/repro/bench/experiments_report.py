"""Regenerate the EXPERIMENTS record from live runs.

``python -m repro experiments`` runs every paper experiment and emits a
markdown report with the measured numbers — the same content as the
hand-written ``EXPERIMENTS.md``, but produced mechanically so a reader
can diff claims against a fresh run on their machine.
"""

from __future__ import annotations

import io
from typing import TextIO

from repro.bench.figure4 import Figure4Spec, run_figure4
from repro.bench.scenarios import run_exporter_slower, run_importer_slower
from repro.bench.traces import (
    scenario_fig5,
    scenario_fig7_with_buddy,
    scenario_fig8_without_buddy,
)
from repro.util.stats import SeriesSummary


def generate_report(
    out: TextIO,
    exports: int = 1001,
    runs: int = 6,
    seed: int = 2007,
) -> None:
    """Run all experiments and write the markdown report to *out*."""
    w = out.write
    w("# Measured reproduction report\n\n")
    w(f"Configuration: {exports} exports, {runs} runs per Figure-4 "
      f"sub-figure, seed {seed}.\n\n")

    # ---- Figure 4 -------------------------------------------------------
    w("## Figure 4 — p_s export time\n\n")
    w("| U procs | head ms | body ms | tail ms | head/body | tail/body "
      "| skip% | optimal @ | T_ub ms |\n")
    w("|---|---|---|---|---|---|---|---|---|\n")
    fig4 = {}
    for u in (4, 8, 16, 32):
        result = run_figure4(
            Figure4Spec(u_procs=u, exports=exports, runs=runs, seed=seed)
        )
        fig4[u] = result
        s = SeriesSummary.from_series(result.mean_series(), head=30, tail=300)
        skip = sum(r.skip_fraction for r in result.runs) / len(result.runs)
        t_ub = sum(r.t_ub for r in result.runs) / len(result.runs)
        opts = sorted(
            r.optimal_iteration
            for r in result.runs
            if r.optimal_iteration is not None
        )
        opt_text = f"{opts[0]}–{opts[-1]}" if opts else "never"
        w(
            f"| {u} | {s.head_mean * 1e3:.3f} | {s.body_mean * 1e3:.3f} "
            f"| {s.tail_mean * 1e3:.3f} | {s.head_mean / s.body_mean:.3f} "
            f"| {s.tail_mean / s.body_mean:.3f} | {skip:.2f} | {opt_text} "
            f"| {t_ub * 1e3:.2f} |\n"
        )
    w("\nPaper: (a)/(b) flat with +8% head and ~−4% tail; (c) optimal at "
      "≈400 iterations; (d) ≈25 iterations.\n\n")

    # ---- Eq. 2 ablation --------------------------------------------------
    w("## Eq. (2) — T_ub with buddy-help off\n\n")
    w("| U procs | T_ub on (ms) | T_ub off (ms) | reduction |\n|---|---|---|---|\n")
    for u in (16, 32):
        off = run_figure4(
            Figure4Spec(u_procs=u, exports=exports, runs=max(1, runs // 2),
                        seed=seed, buddy_help=False)
        )
        t_on = sum(r.t_ub for r in fig4[u].runs) / len(fig4[u].runs)
        t_off = sum(r.t_ub for r in off.runs) / len(off.runs)
        ratio = "∞" if t_on == 0 else f"{t_off / t_on:.0f}×"
        w(f"| {u} | {t_on * 1e3:.2f} | {t_off * 1e3:.2f} | {ratio} |\n")
    w("\n")

    # ---- Figure 3 ---------------------------------------------------------
    w("## Figure 3 — buffering scenarios\n\n")
    a = run_importer_slower()
    b_on = run_exporter_slower(buddy_help=True)
    b_off = run_exporter_slower(buddy_help=False)
    w(f"* (a) importer slower: buffered {a.buffered_fraction:.0%}, "
      f"skipped {a.skip_fraction:.0%}\n")
    w(f"* (b) exporter slower, buddy on:  skipped {b_on.skip_fraction:.0%}, "
      f"T_ub {b_on.buffer_stats.t_ub:.4g} s, export time "
      f"{b_on.exporter_export_time_total:.4g} s\n")
    w(f"* (b) exporter slower, buddy off: skipped {b_off.skip_fraction:.0%}, "
      f"T_ub {b_off.buffer_stats.t_ub:.4g} s, export time "
      f"{b_off.exporter_export_time_total:.4g} s\n\n")

    # ---- Traces -------------------------------------------------------------
    w("## Figures 5, 7, 8 — event traces\n\n")
    s5 = scenario_fig5()
    skips5 = [e.timestamp for e in s5.events if e.kind == "export_skip"]
    w(f"* Figure 5: skip runs of {len([t for t in skips5 if t < 20])} then "
      f"{len([t for t in skips5 if 20 < t < 40])} memcpys (paper: 4 then 7)\n")
    s7 = scenario_fig7_with_buddy()
    s8 = scenario_fig8_without_buddy()
    w(f"* Figure 7 (buddy on):  {s7.memcpy_count()} memcpys, "
      f"{s7.skip_count()} skips, T_i = {s7.process.state.buffer.t_ub():.0f}\n")
    w(f"* Figure 8 (buddy off): {s8.memcpy_count()} memcpys, "
      f"{s8.skip_count()} skips, T_i = {s8.process.state.buffer.t_ub():.0f}\n")
    w(f"* buddy-help saves exactly "
      f"{s8.memcpy_count() - s7.memcpy_count()} in-region memcpys per window\n")


def report_text(exports: int = 1001, runs: int = 6, seed: int = 2007) -> str:
    """Convenience wrapper returning the report as a string."""
    buf = io.StringIO()
    generate_report(buf, exports=exports, runs=runs, seed=seed)
    return buf.getvalue()
