"""The Figure-3 buffering scenarios.

Figure 3 of the paper contrasts the two relative-speed cases:

* **(a) importer slower**: every newly generated object passes beyond
  the latest acceptable region before the next request arrives, so it
  must be buffered — but the exporter is not the bottleneck, so the
  coupled system's performance is unaffected.
* **(b) exporter slower**: objects land *inside* open acceptable
  regions; each one is buffered as the new best candidate and the
  previous candidate freed.  Now the buffering cost sits on the
  system's critical path — this is the case buddy-help attacks.

These runners produce small, deterministic coupled runs of each case
and report the buffering counters, so the benchmarks can print the
figure's story as numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator

from repro.api.options import RunOptions
from repro.core.buffers import BufferStats
from repro.core.coupler import CoupledSimulation, ProcessContext, RegionDef
from repro.costs import ClusterPreset
from repro.costs.models import ComputeCostModel, MemoryCostModel, NetworkCostModel
from repro.data.decomposition import BlockDecomposition


@dataclass
class BufferingScenarioResult:
    """Outcome of one Figure-3 scenario run."""

    name: str
    exports: int
    requests: int
    buffer_stats: BufferStats
    decisions: dict[str, int]
    exporter_export_time_total: float
    sim_time: float

    @property
    def buffered_fraction(self) -> float:
        """Fraction of exports that were buffered (memcpy paid)."""
        total = sum(self.decisions.values())
        done = self.decisions.get("buffer", 0) + self.decisions.get("send", 0)
        return done / total if total else 0.0

    @property
    def skip_fraction(self) -> float:
        """Fraction of exports whose memcpy was skipped."""
        total = sum(self.decisions.values())
        return self.decisions.get("skip", 0) / total if total else 0.0


def _preset() -> ClusterPreset:
    return ClusterPreset(
        name="fig3",
        memory=MemoryCostModel(
            setup_time=1e-5, bandwidth=1e9, free_time=1e-6,
            init_factor=1.0, init_until=0.0, contention_per_peer=0.0,
        ),
        network=NetworkCostModel(latency=1e-5, bandwidth=1e9, congestion_per_flow=0.0),
        compute=ComputeCostModel(time_per_element=1e-8, fixed_overhead=1e-6, jitter=0.0),
    )


def _run_scenario(
    name: str,
    exporter_compute: float,
    importer_compute: float,
    exports: int,
    request_period: float,
    buddy_help: bool,
) -> BufferingScenarioResult:
    shape = (64, 64)
    config = (
        "E c0 /bin/E 2\n"
        "I c1 /bin/I 2\n"
        "#\n"
        "E.d I.d REGL 2.5\n"
    )
    n_requests = int((1.6 + exports - 1) // request_period)

    def e_main(ctx: ProcessContext) -> Generator[Any, Any, None]:
        # Rank 1 is p_s: twice the per-iteration work, so the scenario
        # has the fast-peer/slow-peer structure buddy-help exploits.
        scale = 2.0 if ctx.rank == 1 else 1.0
        for k in range(exports):
            yield from ctx.export("d", 1.6 + k)
            yield from ctx.compute(exporter_compute * scale)

    def i_main(ctx: ProcessContext) -> Generator[Any, Any, None]:
        # Compute first, then exchange: the first request goes out one
        # importer-period into the run (see the Figure-4 builder).
        for j in range(1, n_requests + 1):
            yield from ctx.compute(importer_compute)
            yield from ctx.import_("d", request_period * j)

    cs = CoupledSimulation(
        config, options=RunOptions(preset=_preset(), buddy_help=buddy_help, seed=42)
    )
    cs.add_program(
        "E", main=e_main, regions={"d": RegionDef(BlockDecomposition(shape, (2, 1)))}
    )
    cs.add_program(
        "I", main=i_main, regions={"d": RegionDef(BlockDecomposition(shape, (1, 2)))}
    )
    cs.run()
    # Rank 1 of E is representative (no imbalance here; both behave alike).
    ctx = cs.context("E", 1)
    stats = cs.buffer_stats("E", 1, "d")
    return BufferingScenarioResult(
        name=name,
        exports=exports,
        requests=n_requests,
        buffer_stats=stats,
        decisions=ctx.stats.decisions(),
        exporter_export_time_total=sum(r.cost for r in ctx.stats.export_records),
        sim_time=cs.sim.now,
    )


def run_importer_slower(
    exports: int = 200, buddy_help: bool = True
) -> BufferingScenarioResult:
    """Figure 3(a): the importer lags; every export must be buffered.

    Requests arrive long after the exporter has passed them, so no
    request is ever PENDING at the exporter and buddy-help has nothing
    to do — ``buffered_fraction`` stays ≈ 1 regardless of the flag.
    """
    return _run_scenario(
        name="importer-slower",
        exporter_compute=1.0e-4,
        importer_compute=2.0e-2,  # per request period: far slower
        exports=exports,
        request_period=20.0,
        buddy_help=buddy_help,
    )


def run_exporter_slower(
    exports: int = 200, buddy_help: bool = True
) -> BufferingScenarioResult:
    """Figure 3(b): the exporter lags; requests wait inside the stream.

    With buddy-help the exporter processes skip everything the faster
    peer's answers rule out; without it they churn candidate buffers
    (compare ``skip_fraction`` and ``buffer_stats.t_ub`` between the
    two flags).
    """
    return _run_scenario(
        name="exporter-slower",
        exporter_compute=2.0e-3,
        importer_compute=1.0e-4,
        exports=exports,
        request_period=20.0,
        buddy_help=buddy_help,
    )
