"""Scripted event-trace scenarios: Figures 5, 7 and 8 (and the
Figure-6 optimal-state predicate).

The paper explains buddy-help with line-by-line traces of the slow
process ``p_s``.  :class:`ScriptedProcess` drives the export-side state
machine directly (no DES, no second program) through exactly the event
sequences of the figures and records the framework's decisions in the
paper's own notation, so the benchmark output can be compared line by
line with the publication:

* Figure 5 — ``REGL 2.5``, requests at 20 and 40: the skip run grows
  from 4 memcpys to 7 as buddy-help takes hold.
* Figure 7 — ``REGL 5.0`` *with* buddy-help: every non-match export in
  the acceptable region is skipped.
* Figure 8 — same configuration *without* buddy-help: every in-region
  export is buffered and the previous candidate freed (the churn that
  Eq. 1 charges as ``T_i``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ConnectionSpec, Endpoint
from repro.core.exporter import ExportDecision, RegionExportState
from repro.match.policies import MatchPolicy, PolicyKind
from repro.match.result import FinalAnswer, MatchKind
from repro.util import tracing
from repro.util.tracing import TraceEvent, Tracer, format_trace


def _connection(tolerance: float, disjoint: bool = True) -> ConnectionSpec:
    return ConnectionSpec(
        exporter=Endpoint("F", "D"),
        importer=Endpoint("U", "D"),
        policy=MatchPolicy(PolicyKind.REGL, tolerance),
        disjoint_regions=disjoint,
    )


class ScriptedProcess:
    """Drives one slow exporter process through a scripted event order.

    Mirrors the tracing the full runtime does, but with a hand-written
    clock (one tick per event) so traces are position-exact.
    """

    def __init__(self, tolerance: float, nbytes: int = 2 * 1024 * 1024) -> None:
        self.conn = _connection(tolerance)
        self.cid = self.conn.connection_id
        self.state = RegionExportState("D", [self.conn])
        self.nbytes = nbytes
        self.tracer = Tracer()
        self.clock = 0.0
        self.who = "F.p_s"

    def _tick(self) -> float:
        self.clock += 1.0
        return self.clock

    # -- scripted events ----------------------------------------------------
    def export(self, ts: float) -> ExportDecision:
        """``p_s`` exports the data object at *ts*."""
        now = self._tick()
        outcome = self.state.on_export(ts, self.nbytes, memcpy_cost=1.0)
        if outcome.decision in (ExportDecision.BUFFER,):
            self.tracer.record(tracing.EXPORT_MEMCPY, self.who, now, timestamp=ts)
        elif outcome.decision is ExportDecision.SEND:
            self.tracer.record(tracing.EXPORT_MEMCPY, self.who, now, timestamp=ts)
            self._send(now, ts)
        else:
            self.tracer.record(tracing.EXPORT_SKIP, self.who, now, timestamp=ts)
        for entry in outcome.replaced:
            self.tracer.record(tracing.BUFFER_REMOVE, self.who, now, timestamp=entry.ts)
        for cid, m in outcome.post_sends:
            del cid
            self._send(now, m)
        self._evict(now)
        return outcome.decision

    def _send(self, now: float, ts: float) -> None:
        """Record a transfer and mark the buffer entry sent."""
        self.state.buffer.mark_sent(ts)
        self.tracer.record(tracing.EXPORT_SEND, self.who, now, timestamp=ts)

    def request(self, ts: float) -> None:
        """The rep forwards the importer's request for *ts*."""
        now = self._tick()
        self.tracer.record(tracing.REQUEST_RECV, self.who, now, request=ts)
        outcome = self.state.on_request(self.cid, ts)
        latest = outcome.response.latest_export_ts
        self.tracer.record(
            tracing.REQUEST_REPLY,
            self.who,
            now,
            request=ts,
            answer=str(outcome.response.kind),
            latest=None if latest == float("-inf") else latest,
        )
        if outcome.applied is not None and outcome.applied.send_now is not None:
            self._send(now, outcome.applied.send_now)
        self._evict(now)

    def buddy(self, request_ts: float, matched_ts: float | None) -> None:
        """The rep disseminates a final answer (buddy-help)."""
        now = self._tick()
        if matched_ts is None:
            answer = FinalAnswer(request_ts=request_ts, kind=MatchKind.NO_MATCH)
        else:
            answer = FinalAnswer(
                request_ts=request_ts, kind=MatchKind.MATCH, matched_ts=matched_ts
            )
        self.tracer.record(
            tracing.BUDDY_RECV,
            self.who,
            now,
            request=request_ts,
            answer="YES" if matched_ts is not None else "NO",
            match=matched_ts if matched_ts is not None else request_ts,
        )
        applied = self.state.on_buddy_answer(self.cid, answer)
        if applied.send_now is not None:
            self._send(now, applied.send_now)
        self._evict(now)

    def _evict(self, now: float) -> None:
        evicted = self.state.collect_evictions()
        if evicted:
            self.tracer.record(
                tracing.BUFFER_REMOVE,
                self.who,
                now,
                timestamp=evicted[-1].ts,
                low=evicted[0].ts,
                high=evicted[-1].ts,
            )


@dataclass
class TraceScenario:
    """A named scripted scenario with its recorded trace."""

    name: str
    events: list[TraceEvent]
    process: ScriptedProcess

    def rendered(self, numbered: bool = True) -> str:
        """The trace in the paper's Figure-5/7/8 notation."""
        return format_trace(self.events, object_name="D", numbered=numbered)

    def decisions(self) -> list[str]:
        """Just the export decisions, in order (for assertions)."""
        wanted = {tracing.EXPORT_MEMCPY, tracing.EXPORT_SKIP, tracing.EXPORT_SEND}
        return [e.kind for e in self.events if e.kind in wanted]

    def skip_count(self) -> int:
        """Number of skipped memcpys."""
        return sum(1 for e in self.events if e.kind == tracing.EXPORT_SKIP)

    def memcpy_count(self) -> int:
        """Number of performed memcpys."""
        return sum(1 for e in self.events if e.kind == tracing.EXPORT_MEMCPY)


def scenario_fig5() -> TraceScenario:
    """Figure 5: REGL 2.5, requests at 20 and 40 — skips grow 4 → 7.

    The paper's timeline: ``p_s`` exports 1.6 … 14.6 (all buffered),
    receives the request for 20 (PENDING, evict below 17.5), then
    buddy-help ``{D@20, YES, D@19.6}`` — exports 15.6 … 18.6 are
    skipped, 19.6 buffered and sent.  The pattern repeats for request
    40 with a longer skip run (32.6 … 38.6).
    """
    p = ScriptedProcess(tolerance=2.5)
    for k in range(14):  # 1.6 .. 14.6
        p.export(1.6 + k)
    p.request(20.0)
    p.buddy(20.0, 19.6)
    for k in range(14, 31):  # 15.6 .. 31.6  (19.6 is the match)
        p.export(1.6 + k)
    p.request(40.0)
    p.buddy(40.0, 39.6)
    for k in range(31, 40):  # 32.6 .. 40.6  (39.6 is the match)
        p.export(1.6 + k)
    return TraceScenario(name="figure5", events=list(p.tracer.events), process=p)


def scenario_fig7_with_buddy() -> TraceScenario:
    """Figure 7: REGL 5.0 with buddy-help — no in-region churn at all."""
    p = ScriptedProcess(tolerance=5.0)
    for k in range(3):  # 1.6, 2.6, 3.6
        p.export(1.6 + k)
    p.request(10.0)
    p.buddy(10.0, 9.6)
    for k in range(3, 10):  # 4.6 .. 10.6  (9.6 is the match)
        p.export(1.6 + k)
    return TraceScenario(name="figure7", events=list(p.tracer.events), process=p)


def scenario_fig8_without_buddy() -> TraceScenario:
    """Figure 8: same run without buddy-help — buffer-and-replace churn.

    4.6 is still skipped (below the acceptable region), but every
    export inside [5.0, 10.0] must be buffered as the new best
    candidate, freeing the previous one; the match is only identified
    when 10.6 falls outside the region.
    """
    p = ScriptedProcess(tolerance=5.0)
    for k in range(3):
        p.export(1.6 + k)
    p.request(10.0)
    # No buddy message: p_s discovers the match on its own at 10.6.
    for k in range(3, 10):
        p.export(1.6 + k)
    return TraceScenario(name="figure8", events=list(p.tracer.events), process=p)


def optimal_state_reached(records, window: int = 20) -> bool:
    """Figure 6 predicate: is the tail in the optimal state?

    Over the last *window* export records, only matched data may have
    been copied: every decision is ``skip`` except ``send``.
    """
    tail = list(records)[-window:]
    if not tail:
        return False
    return all(
        r.decision in (ExportDecision.SKIP, ExportDecision.SEND) for r in tail
    ) and any(r.decision is ExportDecision.SEND for r in tail)
