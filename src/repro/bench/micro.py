"""Micro-benchmarks for the three optimized hot paths (``repro bench``).

Each benchmark embeds a faithful replica of the *pre-optimization*
(seed) implementation and measures it against the shipped code on the
same workload, so every report carries its own baseline:

* **DES dispatch** — events/sec retiring a same-instant backlog via
  ``run(until=now)`` while a large population of future timers is
  pending.  The baseline is the seed's plain-heap scheduler
  (:class:`_LegacySimulator`); the shipped kernel serves same-instant
  events from O(1) immediate lanes instead of an O(log n) heap.
* **Redistribution** — bytes/sec executing an MxN communication
  schedule repeatedly between in-memory blocks.  The baseline is the
  seed's extract/insert copy loop (:func:`legacy_redistribute`); the
  shipped path uses the schedule's memoized execution plan and
  zero-copy block assignments.
* **Control plane** — wire messages per run with and without
  ``batch_control`` frame coalescing (a count, not a timing: the DES
  clock is virtual).
* **Observability overhead** — the DES-dispatch workload again, this
  time comparing the shipped kernel against itself with the always-on
  observability counters stripped (:class:`_PreObsSimulator`); the
  run *fails* if the counters cost more than 3%.
* **Provenance record overhead** — heap-scheduled dispatch with the
  provenance scheduling hook installed (what a ``RunOptions.provenance``
  run pays on the kernel hot path) vs the plain kernel; the run
  *fails* if record mode costs more than 10%.
* **Verify exploration rate** — distinct states/sec of the
  control-plane model checker exploring one clean world, sleep-set
  partial-order reduction on (shipped) vs off (baseline).  POR visits
  the identical state set with fewer redundant transitions, so the
  rate ratio is the measured value of the reduction.
* **Serve session throughput** — sessions/sec pushing a batch of
  identical coupled sessions through the coupling service's worker
  pool (:mod:`repro.serve`) vs running them sequentially in-process.
  On multi-core machines the pool wins; on single-core CI runners it
  cannot, so the CI gate on this metric is a throughput sanity floor,
  not a speedup bar.
* **Match throughput** — outstanding import requests resolved per
  second against a large scripted export history: the legacy
  per-request engine vs the sorted batched-sweep backend
  (:class:`repro.match.SortedMatchEngine`) on identical workloads,
  with an untimed cross-check that both produced bit-identical
  response sequences.  Full (non-quick) runs add a 10^6-request
  point and the raw sweep-kernel rate.
* **Profiler overhead** — the DES-dispatch workload with a
  :class:`repro.obs.profile.SamplingProfiler` attached to the driving
  thread vs plain; the sampler lives on its own thread (no
  ``sys.setprofile`` hook), so the run *fails* if profiling costs the
  workload more than the configured margin.
* **Fleet rollup throughput** — sessions/sec folding finished
  sessions into scrape-ready per-scenario aggregates: the incremental
  :class:`repro.obs.fleet.FleetRollup` (bounded quantile reservoirs)
  vs recomputing the aggregates from the full session history after
  every observation, which is what a rollup-less server would pay per
  ``GET /metrics``-fresh fold.

``python -m repro bench`` runs all ten and writes ``BENCH_10.json``;
``repro bench --history`` compares every ``BENCH_*.json`` in a
directory (see :func:`compare_history`) and flags regressions against
the best recorded speedup.  The numbers are wall-clock measurements
and vary run to run; the *ratios* are the stable signal and the
regression gate used by CI.
"""

from __future__ import annotations

import heapq
import json
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.data.darray import DistributedArray
from repro.data.decomposition import BlockDecomposition
from repro.data.redistribute import extract_block, insert_block, redistribute_pure
from repro.data.region import RectRegion
from repro.data.schedule import CommSchedule
from repro.des.core import Event, PriorityLevel, Simulator
from repro.match.engine import ExportHistory, MatchEngine
from repro.match.policies import MatchPolicy, PolicyKind
from repro.match.sorted_engine import SortedMatchEngine
from repro.util.validation import require, require_non_negative


class _LegacySimulator(Simulator):
    """The seed's plain-heap scheduler, kept verbatim as the baseline.

    Every enqueue — immediate or future — goes through one binary
    heap, and every step pays the heap pop plus the seed's per-step
    scheduled-in-the-past validation.  Firing order is bit-identical
    to the shipped kernel (same ``(time, priority, seq)`` total
    order); only the constants differ, which is exactly what the
    benchmark measures.
    """

    def _enqueue(self, event: Event, delay: float, priority: PriorityLevel) -> None:
        self._seq += 1
        heapq.heappush(
            self._heap, (self._now + delay, int(priority), self._seq, event)
        )

    def _step(self) -> None:
        when, _prio, _seq, event = heapq.heappop(self._heap)
        require(when >= self._now, "event scheduled in the past")
        self._now = when
        event._processed = True
        callbacks, event.callbacks = event.callbacks, []
        for cb in callbacks:
            cb(event)
        if not event.ok and not event._defused:
            raise event.value

    def run(self, until: float | Event | None = None) -> Any:
        if until is None:
            while self._heap:
                self._step()
            return None
        require(not isinstance(until, Event), "legacy bench run() takes a horizon")
        horizon = float(until)  # type: ignore[arg-type]
        require_non_negative(horizon - self._now, "run-until horizon")
        while self._heap and self._heap[0][0] <= horizon:
            self._step()
        self._now = horizon
        return None

    def peek(self) -> float:
        return self._heap[0][0] if self._heap else float("inf")


class _PreObsSimulator(Simulator):
    """The shipped kernel minus its observability counters.

    ``_enqueue`` is the pre-instrumentation body verbatim — same
    fast-lane/heap split, same total order, no ``_heap_scheduled``
    bump — so measuring it against :class:`Simulator` isolates the
    cost of the always-on kernel counters and nothing else.
    """

    def _enqueue(self, event: Event, delay: float, priority: PriorityLevel) -> None:
        self._seq += 1
        if delay == 0.0:
            self._lanes[priority].append((self._seq, event))
        else:
            heapq.heappush(
                self._heap, (self._now + delay, int(priority), self._seq, event)
            )


def legacy_redistribute(
    schedule: CommSchedule,
    src_blocks: Sequence[DistributedArray],
    dst_blocks: Sequence[DistributedArray],
) -> int:
    """The seed's redistribution loop, kept verbatim as the baseline.

    Every piece is extracted into a contiguous copy and re-inserted,
    with region containment re-validated on both sides of every piece
    of every call.
    """
    require(len(src_blocks) == schedule.src_nprocs, "wrong number of source blocks")
    require(
        len(dst_blocks) == schedule.dst_nprocs, "wrong number of destination blocks"
    )
    moved = 0
    for item in schedule.items:
        piece = extract_block(src_blocks[item.src_rank], item.region)
        insert_block(dst_blocks[item.dst_rank], item.region, piece)
        moved += item.size
    return moved


@dataclass(frozen=True)
class MicroComparison:
    """One optimized-vs-baseline measurement."""

    name: str
    unit: str
    baseline: float
    optimized: float
    detail: dict[str, Any]
    #: False for count metrics where smaller optimized values win.
    higher_is_better: bool = True

    @property
    def speedup(self) -> float:
        """Improvement factor (>1 means the optimized path won)."""
        num, den = (
            (self.optimized, self.baseline)
            if self.higher_is_better
            else (self.baseline, self.optimized)
        )
        return num / den if den else float("inf")

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict form for the JSON report."""
        return {
            "name": self.name,
            "unit": self.unit,
            "baseline": self.baseline,
            "optimized": self.optimized,
            "speedup": round(self.speedup, 3),
            "detail": self.detail,
        }


# -- DES dispatch ---------------------------------------------------------


def _des_dispatch_rate(
    sim_cls: type[Simulator], pending: int, burst: int, rounds: int
) -> float:
    """Events/sec retiring bursts of same-instant events.

    *pending* far-future timers populate the schedule first — the
    retransmit/timeout backlog a coupled run carries — then each round
    triggers *burst* immediate events and drains them through the
    engine's own ``run(until=now)`` loop.
    """
    sim = sim_cls()
    for i in range(pending):
        sim.timeout(1e9 + i)
    total = 0
    elapsed = 0.0
    for _ in range(rounds):
        for i in range(burst):
            Event(sim).succeed(i)
        t0 = time.perf_counter()
        sim.run(until=sim.now)
        elapsed += time.perf_counter() - t0
        total += burst
    return total / elapsed


def run_des_micro(
    pending: int = 100_000,
    burst: int = 5_000,
    rounds: int = 20,
    repeats: int = 3,
) -> MicroComparison:
    """Benchmark same-instant event dispatch, seed heap vs lanes."""
    baseline = max(
        _des_dispatch_rate(_LegacySimulator, pending, burst, rounds)
        for _ in range(repeats)
    )
    optimized = max(
        _des_dispatch_rate(Simulator, pending, burst, rounds)
        for _ in range(repeats)
    )
    return MicroComparison(
        name="des_dispatch",
        unit="events/sec",
        baseline=baseline,
        optimized=optimized,
        detail={"pending_timers": pending, "burst": burst, "rounds": rounds},
    )


def _paired_best_round_times(
    pending: int, burst: int, rounds: int
) -> tuple[float, float]:
    """Best (minimum) per-round drain time for (stripped, shipped).

    The two kernels run the same workload with their rounds
    interleaved, and each side keeps its *fastest* round.  The minimum
    round time is the true compute cost with scheduler/steal spikes
    filtered out — the only estimator that survives a noisy-neighbour
    VM when the quantity under test is a ~0% difference.
    """
    sims: list[Simulator] = [_PreObsSimulator(), Simulator()]
    for sim in sims:
        for i in range(pending):
            sim.timeout(1e9 + i)
    best = [float("inf"), float("inf")]
    for _ in range(rounds):
        for idx, sim in enumerate(sims):
            for i in range(burst):
                Event(sim).succeed(i)
            t0 = time.perf_counter()
            sim.run(until=sim.now)
            best[idx] = min(best[idx], time.perf_counter() - t0)
    return best[0], best[1]


def run_obs_overhead_micro(
    pending: int = 20_000,
    burst: int = 10_000,
    rounds: int = 25,
    repeats: int = 3,
    floor: float = 0.97,
) -> MicroComparison:
    """Guard the cost of always-on kernel instrumentation.

    Measures ``des_dispatch`` round times on the shipped kernel
    against :class:`_PreObsSimulator` (the same kernel with the
    observability counters stripped) and **fails** if the instrumented
    kernel falls below ``floor`` of the uninstrumented rate — i.e. if
    the no-op instrumentation costs more than 3% by default.  The
    counters were designed to stay off the timed dispatch path
    entirely (derived properties plus one increment on the
    heap-enqueue branch), so this comparison sits at parity.

    Measurement: rounds are interleaved between the two kernels and
    min-filtered (see :func:`_paired_best_round_times`), and the guard
    takes the best ratio over *repeats* independent trials — wall
    clock noise then has to hit every trial of one side only to
    produce a false failure.
    """
    best_ratio = 0.0
    baseline = optimized = 0.0
    for _ in range(repeats):
        t_base, t_inst = _paired_best_round_times(pending, burst, rounds)
        ratio = t_base / t_inst
        if ratio > best_ratio:
            best_ratio = ratio
            baseline = burst / t_base
            optimized = burst / t_inst
    cmp = MicroComparison(
        name="obs_noop_overhead",
        unit="events/sec",
        baseline=baseline,
        optimized=optimized,
        detail={
            "pending_timers": pending,
            "burst": burst,
            "rounds": rounds,
            "floor": floor,
        },
    )
    require(
        cmp.speedup >= floor,
        f"kernel observability counters cost {(1 - cmp.speedup) * 100:.1f}% "
        f"of des_dispatch throughput (allowed {(1 - floor) * 100:.0f}%)",
    )
    return cmp


def _paired_prov_round_times(
    pending: int, burst: int, rounds: int
) -> tuple[float, float, int]:
    """Best (minimum) per-round time for (plain, recording) kernels.

    Unlike :func:`_paired_best_round_times` the rounds schedule
    *future* events: the provenance hook lives on the heap-enqueue
    branch only (the same-instant lanes are pinned by seq order and
    deliberately unhooked), so a lanes-only burst would measure
    nothing.  Each round pushes *burst* timers through the heap and
    drains them, which is exactly the code path a recording run pays
    for — the rest of ``des_dispatch`` is untouched by record mode.
    """
    sims: list[Simulator] = [Simulator(), Simulator()]
    sched: list[tuple[float, int, int]] = []
    sims[1]._sched_hook = sched.append  # what ProvenanceRecorder installs
    for sim in sims:
        for i in range(pending):
            sim.timeout(1e9 + i)
    best = [float("inf"), float("inf")]
    step = 1e-6
    recorded = 0
    for _ in range(rounds):
        for idx, sim in enumerate(sims):
            horizon = sim.now + burst * step
            t0 = time.perf_counter()
            for i in range(burst):
                sim.timeout((i + 1) * step)
            sim.run(until=horizon)
            best[idx] = min(best[idx], time.perf_counter() - t0)
        recorded += len(sched)
        sched.clear()
    return best[0], best[1], recorded


def run_prov_record_overhead_micro(
    pending: int = 20_000,
    burst: int = 10_000,
    rounds: int = 25,
    repeats: int = 6,
    floor: float = 0.90,
) -> MicroComparison:
    """Guard the hot-path cost of provenance record mode.

    A recording run (``RunOptions.provenance``) touches the DES kernel
    in exactly one place: the scheduling hook on the heap-enqueue
    branch, which appends one ``(time, priority, seq)`` tuple per
    future event (everything else — wire rows, RNG draws, operation
    rows — happens off the dispatch path and is batch-encoded at
    close).  This micro measures heap-scheduled dispatch with the hook
    installed against the plain kernel and **fails** when record mode
    keeps less than ``floor`` of the uninstrumented ``des_dispatch``
    rate — i.e. when recording costs more than 10% by default.

    Measurement is the same noise-resistant protocol as
    :func:`run_obs_overhead_micro`: interleaved rounds, min-filtered
    per side, best ratio over *repeats* trials.
    """
    best_ratio = 0.0
    baseline = optimized = 0.0
    for _ in range(repeats):
        t_plain, t_rec, recorded = _paired_prov_round_times(
            pending, burst, rounds
        )
        ratio = t_plain / t_rec
        recorded_events = recorded
        if ratio > best_ratio:
            best_ratio = ratio
            baseline = burst / t_plain
            optimized = burst / t_rec
    cmp = MicroComparison(
        name="prov_record_overhead",
        unit="events/sec",
        baseline=baseline,
        optimized=optimized,
        detail={
            "pending_timers": pending,
            "burst": burst,
            "rounds": rounds,
            "recorded_events": recorded_events,
            "floor": floor,
        },
    )
    require(
        cmp.speedup >= floor,
        f"provenance record mode costs {(1 - cmp.speedup) * 100:.1f}% "
        f"of heap-scheduled des_dispatch throughput "
        f"(allowed {(1 - floor) * 100:.0f}%)",
    )
    return cmp


# -- redistribution -------------------------------------------------------


def _redistribution_setup(
    shape: tuple[int, int], src_grid: tuple[int, int], dst_grid: tuple[int, int]
) -> tuple[CommSchedule, list[DistributedArray], list[DistributedArray]]:
    src_decomp = BlockDecomposition(shape, src_grid)
    dst_decomp = BlockDecomposition(shape, dst_grid)
    schedule = CommSchedule.build_cached(
        src_decomp, dst_decomp, RectRegion((0, 0), shape)
    )
    src = [DistributedArray(src_decomp, r) for r in range(src_decomp.nprocs)]
    dst = [DistributedArray(dst_decomp, r) for r in range(dst_decomp.nprocs)]
    for block in src:
        block.local[...] = np.random.default_rng(block.rank).random(block.local.shape)
    return schedule, src, dst


def run_redistribution_micro(
    shape: tuple[int, int] = (256, 256),
    src_grid: tuple[int, int] = (16, 1),
    dst_grid: tuple[int, int] = (1, 16),
    calls: int = 30,
    repeats: int = 3,
) -> MicroComparison:
    """Benchmark repeated MxN redistribution, copy loop vs planned views.

    The row-to-column grids produce ``M*N`` small pieces per call —
    the shape where per-piece overhead (the thing the execution plan
    eliminates) dominates over raw memory bandwidth, as it does in the
    paper's many-process coupled runs.
    """
    schedule, src, dst = _redistribution_setup(shape, src_grid, dst_grid)
    itemsize = 8

    def rate(fn: Any) -> float:
        fn(schedule, src, dst)  # warm-up: populates the plan cache
        best = 0.0
        for _ in range(repeats):
            t0 = time.perf_counter()
            moved = 0
            for _ in range(calls):
                moved += fn(schedule, src, dst)
            best = max(best, moved * itemsize / (time.perf_counter() - t0))
        return best

    baseline = rate(legacy_redistribute)
    optimized = rate(redistribute_pure)
    # The two paths must agree bit-for-bit before the numbers count.
    check_legacy = [DistributedArray(d.decomp, d.rank) for d in dst]
    legacy_redistribute(schedule, src, check_legacy)
    for got, want in zip(dst, check_legacy):
        require(
            bool(np.array_equal(got.local, want.local)),
            "optimized redistribution diverged from the reference copy loop",
        )
    return MicroComparison(
        name="redistribution",
        unit="bytes/sec",
        baseline=baseline,
        optimized=optimized,
        detail={
            "shape": list(shape),
            "src_grid": list(src_grid),
            "dst_grid": list(dst_grid),
            "pieces_per_call": len(schedule.items),
            "calls": calls,
        },
    )


# -- control plane --------------------------------------------------------


def _control_plane_run(exports: int, requests: int, batch: bool) -> Any:
    """One two-connection coupled run; returns the finished simulation.

    Two connections between the same program pair with *pipelined*
    imports give the representatives multi-message ticks whose fan-out
    shares destinations — the shape frame coalescing targets.  A
    single-connection run with blocking imports never forms frames.
    """
    from typing import Generator

    from repro.api.options import RunOptions
    from repro.core.coupler import CoupledSimulation, ProcessContext, RegionDef

    config = (
        "E c0 /bin/E 2\n"
        "I c1 /bin/I 2\n"
        "#\n"
        "E.d I.d REGL 2.5\n"
        "E.e I.e REGL 2.5\n"
    )
    shape = (16, 16)

    def e_main(ctx: ProcessContext) -> Generator[Any, Any, None]:
        for k in range(exports):
            yield from ctx.export("d", 1.0 + k)
            yield from ctx.export("e", 1.0 + k)
            yield from ctx.compute(1e-3)

    def i_main(ctx: ProcessContext) -> Generator[Any, Any, None]:
        for j in range(1, requests + 1):
            yield from ctx.compute(5e-4)
            handle_d = ctx.import_begin("d", 2.0 * j)
            handle_e = ctx.import_begin("e", 2.0 * j)
            yield from ctx.import_wait(handle_d)
            yield from ctx.import_wait(handle_e)

    cs = CoupledSimulation(config, options=RunOptions(batch_control=batch))
    cs.add_program(
        "E",
        main=e_main,
        regions={
            "d": RegionDef(BlockDecomposition(shape, (2, 1))),
            "e": RegionDef(BlockDecomposition(shape, (2, 1))),
        },
    )
    cs.add_program(
        "I",
        main=i_main,
        regions={
            "d": RegionDef(BlockDecomposition(shape, (1, 2))),
            "e": RegionDef(BlockDecomposition(shape, (1, 2))),
        },
    )
    cs.run()
    return cs


def run_control_plane_micro(
    exports: int = 24, requests: int = 10
) -> MicroComparison:
    """Count physical control-plane messages with and without framing.

    Time on the DES runtime is virtual, so the meaningful metric is
    message count: frames coalesce each representative's per-tick
    fan-out into one wire unit per destination.  Framing changes
    modelled timing, so the runs are compared on message counts, not
    on traces.
    """
    plain = _control_plane_run(exports, requests, batch=False)
    batched = _control_plane_run(exports, requests, batch=True)
    require(plain.frames_sent == 0, "unbatched run unexpectedly sent frames")
    require(batched.frames_sent > 0, "batched run formed no frames")
    return MicroComparison(
        name="control_plane_messages",
        unit="ctl messages/run (lower is better)",
        baseline=float(plain.ctl_messages),
        optimized=float(batched.ctl_messages),
        detail={
            "exports": exports,
            "requests": requests,
            "frames_sent": batched.frames_sent,
            "framed_messages": batched.framed_messages,
        },
        higher_is_better=False,
    )


# -- verify exploration rate ----------------------------------------------


def run_verify_micro(repeats: int = 2) -> MicroComparison:
    """Model-checker states/sec, sleep-set POR on vs off.

    Both runs exhaustively explore the same clean 2-program ×
    2-process world and visit the identical distinct-state set (an
    invariant the model tests assert); POR prunes provably redundant
    transitions, so its higher exploration rate is pure win, not a
    coverage trade.
    """
    from repro.analysis.model import ModelConfig, check

    cfg = ModelConfig(
        drop_budget=0, dup_budget=0, crash_budget=0, retransmit_budget=0
    )

    def best_rate(por: bool) -> tuple[float, dict[str, Any]]:
        best = 0.0
        stats: dict[str, Any] = {}
        for _ in range(repeats):
            result = check(cfg, por=por)
            if result.stats["states_per_sec"] > best:
                best = result.stats["states_per_sec"]
                stats = result.stats
        return best, stats

    baseline, base_stats = best_rate(por=False)
    optimized, por_stats = best_rate(por=True)
    require(
        por_stats["states"] == base_stats["states"],
        "POR changed the reachable state set",
    )
    return MicroComparison(
        name="verify_states_per_sec",
        unit="states/sec",
        baseline=baseline,
        optimized=optimized,
        detail={
            "states": por_stats["states"],
            "transitions_por": por_stats["transitions"],
            "transitions_full": base_stats["transitions"],
            "sleep_skips": por_stats["sleep_skips"],
        },
    )


# -- serve session throughput ---------------------------------------------


def run_serve_micro(
    sessions: int = 12,
    workers: int = 4,
    exports: int = 8,
    repeats: int = 2,
) -> MicroComparison:
    """Session throughput of the coupling service's worker pool.

    Pushes *sessions* identical small demo sessions through
    :func:`repro.serve.worker.run_session` — sequentially in one
    process (baseline) vs fanned out across a
    ``ProcessPoolExecutor`` with *workers* processes (optimized), both
    telemetry-less, so the comparison isolates pool scheduling and
    spec pickling against parallel speedup.  The pool is warmed before
    timing (every worker runs one session) so process spawn cost is
    not part of the measured rate.

    The speedup is machine-dependent by design: >1 on multi-core
    hosts, below 1 on a single core where the pool only adds IPC
    overhead.  The CI gate therefore floors the *throughput*, not the
    ratio.
    """
    import os
    from concurrent.futures import ProcessPoolExecutor

    from repro.serve.spec import SessionSpec
    from repro.serve.worker import init_worker, run_session

    spec_dict = SessionSpec(
        scenario="demo",
        params={"exports": exports, "imports": [4.0, 7.0], "seed": 11},
        telemetry_interval=1e9,  # no periodic snapshots; queue-less anyway
    ).to_dict()
    init_worker(None)

    def sequential() -> float:
        t0 = time.perf_counter()
        for i in range(sessions):
            require(
                bool(run_session(f"seq-{i}", spec_dict)["ok"]),
                "sequential bench session failed",
            )
        return sessions / (time.perf_counter() - t0)

    def pooled() -> float:
        with ProcessPoolExecutor(
            max_workers=workers, initializer=init_worker, initargs=(None,)
        ) as pool:
            warm = [
                pool.submit(run_session, f"warm-{i}", spec_dict)
                for i in range(workers)
            ]
            for f in warm:
                require(bool(f.result()["ok"]), "warm-up bench session failed")
            t0 = time.perf_counter()
            futures = [
                pool.submit(run_session, f"pool-{i}", spec_dict)
                for i in range(sessions)
            ]
            for f in futures:
                require(bool(f.result()["ok"]), "pooled bench session failed")
            return sessions / (time.perf_counter() - t0)

    baseline = max(sequential() for _ in range(repeats))
    optimized = max(pooled() for _ in range(repeats))
    return MicroComparison(
        name="serve_sessions_per_sec",
        unit="sessions/sec",
        baseline=baseline,
        optimized=optimized,
        detail={
            "sessions": sessions,
            "workers": workers,
            "exports": exports,
            "cpu_count": os.cpu_count(),
        },
    )


# -- profiler overhead -----------------------------------------------------


def _profiler_round_time(burst: int, rounds: int) -> float:
    """Best (minimum) per-round drain time of the shipped kernel."""
    sim = Simulator()
    best = float("inf")
    for _ in range(rounds):
        for i in range(burst):
            Event(sim).succeed(i)
        t0 = time.perf_counter()
        sim.run(until=sim.now)
        best = min(best, time.perf_counter() - t0)
    return best


def run_profiler_overhead_micro(
    burst: int = 10_000,
    rounds: int = 25,
    repeats: int = 3,
    floor: float = 0.95,
) -> MicroComparison:
    """Guard the cost of the sampling profiler on a busy run.

    The profiler is deliberately hook-free: a daemon thread wakes every
    ``interval`` seconds and snapshots the target thread's stack via
    ``sys._current_frames``, so the profiled code pays only the GIL
    time those wake-ups steal.  This micro runs the ``des_dispatch``
    drain workload plain and then again with a profiler attached to
    the driving thread, min-filters per-round times on both sides, and
    **fails** when the profiled kernel keeps less than ``floor`` of
    the unprofiled rate — i.e. when profiling costs more than 5% by
    default.  The guard takes the best ratio over *repeats* trials,
    the same noise protocol as :func:`run_obs_overhead_micro`.
    """
    from repro.obs.profile import DEFAULT_INTERVAL, SamplingProfiler

    best_ratio = 0.0
    baseline = optimized = 0.0
    samples = 0
    for _ in range(repeats):
        t_plain = _profiler_round_time(burst, rounds)
        profiler = SamplingProfiler(interval=DEFAULT_INTERVAL)
        profiler.start()
        try:
            t_prof = _profiler_round_time(burst, rounds)
        finally:
            profile = profiler.stop()
        samples += profile.samples
        ratio = t_plain / t_prof
        if ratio > best_ratio:
            best_ratio = ratio
            baseline = burst / t_plain
            optimized = burst / t_prof
    cmp = MicroComparison(
        name="profiler_overhead",
        unit="events/sec",
        baseline=baseline,
        optimized=optimized,
        detail={
            "burst": burst,
            "rounds": rounds,
            "interval": DEFAULT_INTERVAL,
            "samples": samples,
            "floor": floor,
        },
    )
    require(
        cmp.speedup >= floor,
        f"sampling profiler costs {(1 - cmp.speedup) * 100:.1f}% "
        f"of des_dispatch throughput (allowed {(1 - floor) * 100:.0f}%)",
    )
    return cmp


# -- fleet rollup throughput -----------------------------------------------


def _naive_quantile(xs: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile of an already-sorted sequence."""
    if not xs:
        return 0.0
    pos = q * (len(xs) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(xs) - 1)
    frac = pos - lo
    return xs[lo] * (1.0 - frac) + xs[hi] * frac


def run_rollup_micro(
    sessions: int = 4_000,
    error_every: int = 9,
    repeats: int = 2,
) -> MicroComparison:
    """Fleet-rollup fold rate, incremental store vs recompute-on-fold.

    The scrape surface's contract is that every finished session
    leaves the per-scenario aggregates (state counts, error rate,
    ``T_ub`` p95) immediately current.  The baseline meets it the
    naive way — append to the full session history, then re-sort and
    re-aggregate everything — which is O(n log n) *per session*.  The
    shipped :class:`repro.obs.fleet.FleetRollup` folds each session
    into Welford aggregates plus a bounded quantile reservoir, so the
    per-session cost stays flat no matter how long the server runs.
    An untimed cross-check requires both sides to agree exactly on
    state counts and sample counts, and on p95 within the reservoir's
    approximation error.
    """
    from repro.obs.fleet import FleetRollup

    records: list[tuple[str, dict[str, Any] | None]] = []
    for k in range(sessions):
        if error_every and k % error_every == 0:
            records.append(("failed", None))
        else:
            # Knuth-hash scatter: arrival order carries no sorted runs,
            # so the naive re-sort pays full O(n log n) per fold the
            # way it would on real, unordered session finishes.
            t_ub = 1.0 + (k * 2654435761 % 4096) / 1024.0
            records.append((
                "done",
                {
                    "t_ub_total": t_ub,
                    "buddy_saved_total": 0.5,
                    "buddy_skips": 3,
                    "pending_resolution": {"count": 2, "mean": 0.1},
                },
            ))

    def naive() -> tuple[float, dict[str, int], int, float]:
        states: dict[str, int] = {}
        t_ubs: list[float] = []
        p95 = 0.0
        t0 = time.perf_counter()
        for state, paper in records:
            states[state] = states.get(state, 0) + 1
            if state == "done" and paper is not None:
                t_ubs.append(float(paper["t_ub_total"]))
            p95 = _naive_quantile(sorted(t_ubs), 0.95)
        elapsed = time.perf_counter() - t0
        return sessions / elapsed, states, len(t_ubs), p95

    def incremental() -> tuple[float, dict[str, int], int, float]:
        rollup = FleetRollup()
        p95 = 0.0
        t0 = time.perf_counter()
        for state, paper in records:
            report = (
                {"runs": [{"metrics": {"paper": paper}}]}
                if paper is not None
                else None
            )
            rollup.observe_session(
                scenario="demo", state=state, report=report, duration=0.01
            )
            p95 = rollup.scenario("demo").t_ub.quantile(0.95)
        elapsed = time.perf_counter() - t0
        scen = rollup.scenario("demo")
        return sessions / elapsed, dict(scen.sessions), scen.t_ub.count, p95

    baseline = optimized = exact_p95 = reservoir_p95 = 0.0
    for _ in range(repeats):
        n_rate, n_states, n_count, exact_p95 = naive()
        i_rate, i_states, i_count, reservoir_p95 = incremental()
        baseline = max(baseline, n_rate)
        optimized = max(optimized, i_rate)
        require(n_states == i_states, "rollup state counts diverged from naive")
        require(n_count == i_count, "rollup sample count diverged from naive")
        require(
            abs(reservoir_p95 - exact_p95) <= 0.15 * max(exact_p95, 1e-9),
            f"reservoir p95 {reservoir_p95:g} strayed from exact {exact_p95:g}",
        )
    return MicroComparison(
        name="rollup_sessions_per_sec",
        unit="sessions/sec",
        baseline=baseline,
        optimized=optimized,
        detail={
            "sessions": sessions,
            "error_every": error_every,
            "p95_exact": round(exact_p95, 6),
            "p95_reservoir": round(reservoir_p95, 6),
        },
    )


# -- match throughput ------------------------------------------------------


def _match_workload(
    n_requests: int, n_exports: int
) -> tuple[list[float], list[float]]:
    """A scripted export history plus a sorted outstanding-request set.

    Exports sit on an integer grid; requests land between them with
    cycling fractional offsets so a tight tolerance yields a stable
    MATCH / NO_MATCH mix, and ~7% of the requests lie beyond the
    newest export so the PENDING watermark path is exercised too.
    """
    exports = [1.0 + float(k) for k in range(n_exports)]
    span = exports[-1] * 1.08
    step = span / n_requests
    require(step > 1.0, "request step must exceed the offset jitter")
    requests = [j * step + ((j * 31) % 100) / 100.0 for j in range(n_requests)]
    return exports, requests


def run_match_micro(
    n_requests: int = 100_000,
    n_exports: int = 200_000,
    repeats: int = 3,
    full_point: int | None = None,
) -> MicroComparison:
    """Resolve *n_requests* outstanding requests, legacy vs sorted sweep.

    Both engines evaluate the identical sorted batch against the
    identical shared-style history (``evaluate_batch(record=False)``
    — the exporter's slow-process resolution path).  An untimed pass
    then *requires* the two response sequences and outcome counters to
    be equal, so the reported speedup can never come from divergent
    decisions.  *full_point* (full mode) adds a second, larger
    measurement — including the raw sweep-kernel rate with response
    construction excluded — to the detail block.
    """
    policy = MatchPolicy(PolicyKind.REGL, 0.25)
    exports, requests = _match_workload(n_requests, n_exports)

    def build(cls: type[MatchEngine]) -> MatchEngine:
        hist = ExportHistory()
        hist.replace(exports)
        return cls(policy, history=hist, strict_order=False)

    def rate(cls: type[MatchEngine], reqs: list[float], reps: int) -> float:
        best = 0.0
        for _ in range(reps):
            eng = build(cls)
            t0 = time.perf_counter()
            eng.evaluate_batch(reqs)
            elapsed = time.perf_counter() - t0
            best = max(best, len(reqs) / elapsed)
        return best

    baseline = rate(MatchEngine, requests, repeats)
    optimized = rate(SortedMatchEngine, requests, repeats)

    # Untimed bit-identity cross-check: the speedup is only meaningful
    # if the decisions are the same decisions.
    legacy_eng = build(MatchEngine)
    sorted_eng = build(SortedMatchEngine)
    legacy_resp = legacy_eng.evaluate_batch(requests)
    sorted_resp = sorted_eng.evaluate_batch(requests)
    require(
        legacy_resp == sorted_resp,
        "sorted backend diverged from legacy decisions",
    )
    counters = (
        legacy_eng.match_count,
        legacy_eng.no_match_count,
        legacy_eng.pending_count,
    )
    require(
        counters
        == (
            sorted_eng.match_count,
            sorted_eng.no_match_count,
            sorted_eng.pending_count,
        ),
        "sorted backend counters diverged from legacy",
    )
    detail: dict[str, Any] = {
        "requests": n_requests,
        "exports": n_exports,
        "policy": str(policy),
        "match": counters[0],
        "no_match": counters[1],
        "pending": counters[2],
        "identical": True,
    }
    if full_point is not None and full_point > n_requests:
        big_exports, big_requests = _match_workload(full_point, 2 * full_point)
        big_hist = ExportHistory()
        big_hist.replace(big_exports)
        big_legacy = MatchEngine(policy, history=big_hist, strict_order=False)
        t0 = time.perf_counter()
        big_legacy.evaluate_batch(big_requests)
        legacy_big_rate = full_point / (time.perf_counter() - t0)
        big_sorted = SortedMatchEngine(policy, history=big_hist, strict_order=False)
        t0 = time.perf_counter()
        big_sorted.evaluate_batch(big_requests)
        sorted_big_rate = full_point / (time.perf_counter() - t0)
        arr = np.asarray(big_requests, dtype=np.float64)
        t0 = time.perf_counter()
        big_sorted.sweep(arr)
        kernel_big_rate = full_point / (time.perf_counter() - t0)
        detail["full_point"] = {
            "requests": full_point,
            "legacy_rate": round(legacy_big_rate, 1),
            "sorted_rate": round(sorted_big_rate, 1),
            "sweep_kernel_rate": round(kernel_big_rate, 1),
        }
    return MicroComparison(
        name="match_throughput",
        unit="requests/sec",
        baseline=baseline,
        optimized=optimized,
        detail=detail,
    )


# -- report ---------------------------------------------------------------


def run_micro(quick: bool = False) -> dict[str, Any]:
    """Run every micro-benchmark; return the ``BENCH_10.json`` payload."""
    if quick:
        des = run_des_micro(pending=20_000, burst=2_000, rounds=5, repeats=2)
        redist = run_redistribution_micro(shape=(128, 128), calls=8, repeats=2)
        ctl = run_control_plane_micro(exports=12, requests=5)
        # Full sizes even in quick mode: the guards assert small-%
        # bounds, and shrinking the rounds would cost more precision
        # than the few seconds the full sizes take.
        obs = run_obs_overhead_micro()
        # Relaxed in-run guard for quick mode: record mode does real
        # work (~5%), so unlike the no-op obs guard its margin to the
        # 0.90 bar is thin on a loaded tier-1 runner.  The tight floor
        # is enforced by CI's bench-smoke gate on the reported
        # speedup, where the job runs alone.
        prov = run_prov_record_overhead_micro(floor=0.75)
        verify = run_verify_micro(repeats=1)
        serve = run_serve_micro(sessions=8, workers=2, repeats=1)
        # The 10^5 point stays full-size even in quick mode: the CI
        # sanity floor (sorted >= 3x legacy) is defined at it.
        match = run_match_micro(repeats=2)
        # Same split as the prov guard: relaxed in-run bar for loaded
        # tier-1 runners, the 0.95 floor enforced by CI's bench gate.
        prof = run_profiler_overhead_micro(floor=0.85)
        rollup = run_rollup_micro(sessions=2_500, repeats=2)
    else:
        des = run_des_micro()
        redist = run_redistribution_micro()
        ctl = run_control_plane_micro()
        obs = run_obs_overhead_micro()
        prov = run_prov_record_overhead_micro()
        verify = run_verify_micro()
        serve = run_serve_micro()
        match = run_match_micro(full_point=1_000_000)
        prof = run_profiler_overhead_micro()
        rollup = run_rollup_micro()
    return {
        "bench": "repro micro hot paths",
        "quick": quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": [
            des.as_dict(),
            redist.as_dict(),
            ctl.as_dict(),
            obs.as_dict(),
            prov.as_dict(),
            verify.as_dict(),
            serve.as_dict(),
            match.as_dict(),
            prof.as_dict(),
            rollup.as_dict(),
        ],
    }


def write_report(payload: dict[str, Any], path: str) -> None:
    """Write *payload* as indented JSON to *path*."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")


def _report_index(path: Path) -> tuple[int, str]:
    """Sort key: the numeric suffix of ``BENCH_<n>.json`` (name ties)."""
    stem = path.stem
    digits = "".join(ch for ch in stem if ch.isdigit())
    return (int(digits) if digits else -1, stem)


def compare_history(
    directory: str = ".",
    pattern: str = "BENCH_*.json",
    allowance: float = 0.10,
) -> dict[str, Any]:
    """Compare every ``BENCH_*.json`` report; flag regressions vs. best.

    Reports are ordered by their numeric suffix; the newest one is the
    candidate.  For every metric present in the newest report, the best
    historical speedup is the bar: the candidate regresses when its
    speedup falls more than *allowance* (fractional) below that bar.
    Metrics that older reports lack are skipped silently — the bench
    suite grows over time.

    An unreadable or schema-invalid report never aborts the
    comparison: it is dropped from the series and listed in the
    payload's ``skipped`` rows (``{"report", "reason"}``), so a
    corrupt artifact from an interrupted run costs a warning, not the
    whole history.

    Returns a JSON-ready payload: per-metric rows (speedup per report,
    best, latest, regressed flag), the ``skipped`` list and the
    overall ``regressions`` list.
    """
    require(0 <= allowance < 1, "allowance must be in [0, 1)")
    paths = sorted(Path(directory).glob(pattern), key=_report_index)
    reports: list[tuple[str, dict[str, Any]]] = []
    skipped: list[dict[str, str]] = []
    for p in paths:
        try:
            with open(p, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            skipped.append({"report": p.name, "reason": str(exc)})
            continue
        if not isinstance(payload, dict) or not isinstance(
            payload.get("results"), list
        ):
            skipped.append(
                {"report": p.name, "reason": "not a bench report (no results list)"}
            )
            continue
        reports.append((p.name, payload))
    if not reports:
        return {
            "bench_history": pattern,
            "reports": [],
            "skipped": skipped,
            "metrics": {},
            "regressions": [],
        }

    def speedups(payload: dict[str, Any]) -> dict[str, float]:
        out: dict[str, float] = {}
        for r in payload.get("results", ()):
            if not (isinstance(r, dict) and "name" in r and "speedup" in r):
                continue
            try:
                out[str(r["name"])] = float(r["speedup"])
            except (TypeError, ValueError):
                continue  # a malformed row, not a malformed report
        return out

    latest_name, latest_payload = reports[-1]
    latest = speedups(latest_payload)
    metrics: dict[str, Any] = {}
    regressions: list[str] = []
    for name, current in sorted(latest.items()):
        series = {
            rname: s[name]
            for rname, payload in reports
            if name in (s := speedups(payload))
        }
        best_report, best = max(series.items(), key=lambda kv: kv[1])
        regressed = current < best * (1.0 - allowance)
        metrics[name] = {
            "per_report": series,
            "best": best,
            "best_report": best_report,
            "latest": current,
            "regressed": regressed,
        }
        if regressed:
            regressions.append(name)
    return {
        "bench_history": pattern,
        "allowance": allowance,
        "reports": [name for name, _ in reports],
        "skipped": skipped,
        "latest": latest_name,
        "metrics": metrics,
        "regressions": regressions,
    }
