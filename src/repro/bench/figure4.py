"""The Section-5 micro-benchmark: Figure 4 (a)-(d).

Setup (paper, Section 5):

* Program **F** (exporter): 4 processes, each owning a 512×512 block of
  a 1024×1024 field; process ``p_s`` does extra computation and is the
  slowest; there is no intra-F data exchange.
* Program **U** (importer): 4 / 8 / 16 / 32 processes over the same
  1024×1024 field; runs faster as process count grows (fixed global
  work).
* 1001 exports (timestamps 1.6, 2.6, ...), requests every 20 time
  units with policy ``REGL 2.5`` — one of every twenty exports is a
  match and gets transferred.
* Measured: per-iteration *data export time* of ``p_s``, six runs.

What the shapes mean:

* U = 4, 8 (importer slower): requests arrive after ``p_s`` has already
  passed them; every export must be buffered → a flat memcpy-dominated
  series with an ~8% elevated initialization head and an ~4% drop after
  the other F processes finish (less memory/network contention).
* U = 16: requests begin to arrive *before* ``p_s`` reaches them;
  buddy-help answers from the faster F processes let ``p_s`` skip ever
  more memcpys each window, decaying toward the optimal state
  (paper: ≈ 400 iterations).
* U = 32: the importer is fast enough that the optimal state is reached
  almost immediately (paper: ≈ 25 iterations).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Generator

from repro.api.options import RunOptions
from repro.bench.reporting import summarize_runs
from repro.core.coupler import CoupledSimulation, ProcessContext, RegionDef
from repro.core.exporter import ExportDecision
from repro.costs import ClusterPreset
from repro.costs.models import ComputeCostModel, MemoryCostModel, NetworkCostModel
from repro.data.decomposition import BlockDecomposition, choose_process_grid
from repro.apps.workloads import ImbalanceProfile, one_slow_profile
from repro.util.stats import SeriesSummary
from repro.util.validation import require


@dataclass(frozen=True)
class Figure4Spec:
    """Parameters of one Figure-4 configuration.

    Defaults reproduce the paper; ``u_procs`` selects the sub-figure
    (4 → (a), 8 → (b), 16 → (c), 32 → (d)).  The cost-model constants
    are calibrated to 2007 hardware (see ``repro.costs.presets``); the
    derived quantities that matter are the *ratios* between the
    importer's request period and the exporter's window time.
    """

    u_procs: int = 16
    f_procs: int = 4
    exports: int = 1001
    first_ts: float = 1.6
    export_dt: float = 1.0
    request_period: float = 20.0
    tolerance: float = 2.5
    global_shape: tuple[int, int] = (1024, 1024)
    #: Extra-work factor of ``p_s`` (the last F rank).
    slow_factor: float = 1.85
    #: U's per-element compute relative to F's (dimensionless).  Sets
    #: where the Figure-4 crossover falls: U's period per request is
    #: ``(N²/P) · time_per_element · u_compute_scale``.  146 puts the
    #: U=16 catch-up near iteration 400, matching the paper; the value
    #: is deliberately near-critical (the gap between U's period and
    #: p_s's window drives an exponential approach to the optimal
    #: state, so small changes move the crossover a lot — exactly the
    #: sensitivity the paper's Section 5 discussion implies).
    u_compute_scale: float = 146.0
    buddy_help: bool = True
    runs: int = 6
    seed: int = 2007
    jitter: float = 0.01
    #: Iterations counted as the framework warm-up phase (the ~8% head).
    init_iterations: int = 30
    time_per_element: float = 2.0e-8
    memcpy_bandwidth: float = 1.5e9
    contention_per_peer: float = 0.013
    #: Match engine for the F processes (decisions are identical either
    #: way — the seed-replay goldens run this spec under both).
    match_backend: str = "legacy"

    @property
    def n_requests(self) -> int:
        """Requests that fall within the export stream's lifetime."""
        last_ts = self.first_ts + (self.exports - 1) * self.export_dt
        return int(last_ts // self.request_period)

    @property
    def slow_rank(self) -> int:
        """The rank of ``p_s`` (last F rank by convention)."""
        return self.f_procs - 1

    def f_elements(self) -> int:
        """Grid points each F process computes per iteration."""
        return (self.global_shape[0] * self.global_shape[1]) // self.f_procs

    def u_elements(self) -> int:
        """Grid points each U process computes per request period."""
        return (self.global_shape[0] * self.global_shape[1]) // self.u_procs

    def estimated_full_iteration(self) -> float:
        """Rough ``p_s`` iteration time with buffering (calibration aid)."""
        compute = self.f_elements() * self.time_per_element * self.slow_factor
        itemsize = 8
        memcpy = 5.0e-5 + self.f_elements() * itemsize / self.memcpy_bandwidth
        return compute + memcpy

    def preset(self) -> ClusterPreset:
        """The cost-model bundle this spec implies."""
        return ClusterPreset(
            name=f"fig4-u{self.u_procs}",
            memory=MemoryCostModel(
                setup_time=5.0e-5,
                bandwidth=self.memcpy_bandwidth,
                free_time=2.0e-5,
                init_factor=1.08,
                init_until=self.init_iterations * self.estimated_full_iteration(),
                contention_per_peer=self.contention_per_peer,
                jitter=self.jitter,
            ),
            network=NetworkCostModel(
                latency=1.0e-4, bandwidth=1.25e8, congestion_per_flow=0.02
            ),
            compute=ComputeCostModel(
                time_per_element=self.time_per_element,
                fixed_overhead=1.0e-5,
                jitter=self.jitter,
            ),
        )


@dataclass
class Figure4Run:
    """Results of one run: the ``p_s`` series plus framework counters."""

    series: list[float]
    decisions: dict[str, int]
    t_ub: float
    unnecessary_total: float
    buddy_messages: int
    optimal_iteration: int | None
    sim_time: float

    @property
    def skip_fraction(self) -> float:
        """Fraction of exports whose memcpy was skipped."""
        total = sum(self.decisions.values())
        return self.decisions.get("skip", 0) / total if total else 0.0

    def summary(self) -> SeriesSummary:
        """Head/body/tail summary of the series."""
        return SeriesSummary.from_series(self.series)


@dataclass
class Figure4Result:
    """All runs of one configuration."""

    spec: Figure4Spec
    runs: list[Figure4Run] = field(default_factory=list)

    def mean_series(self) -> list[float]:
        """Elementwise mean across runs."""
        n = min(len(r.series) for r in self.runs)
        return [
            sum(r.series[i] for r in self.runs) / len(self.runs) for i in range(n)
        ]

    def mean_summary(self) -> SeriesSummary:
        """Summary of the mean series."""
        return summarize_runs([r.series for r in self.runs])


def _f_main(spec: Figure4Spec, profile: ImbalanceProfile):
    """Exporter main: export, then compute, 1001 times (paper loop)."""

    def main(ctx: ProcessContext) -> Generator[Any, Any, None]:
        scale = profile.scale(ctx.rank)
        elements = spec.f_elements()
        for k in range(spec.exports):
            ts = spec.first_ts + k * spec.export_dt
            yield from ctx.export("f", ts)
            yield from ctx.compute_elements(elements, scale=scale)

    return main


def _u_main(spec: Figure4Spec):
    """Importer main: import the forcing field, then compute."""

    def main(ctx: ProcessContext) -> Generator[Any, Any, None]:
        elements = spec.u_elements()
        for j in range(1, spec.n_requests + 1):
            # Compute first, then exchange — each U iteration advances
            # the solution before requesting the next forcing field, so
            # the first request goes out one U-period into the run.
            yield from ctx.compute_elements(elements, scale=spec.u_compute_scale)
            yield from ctx.import_("f", spec.request_period * j)

    return main


def build_figure4_simulation(
    spec: Figure4Spec, seed: int | None = None, tracer=None
) -> CoupledSimulation:
    """Construct (but do not run) one Figure-4 simulation."""
    require(spec.u_procs > 0 and spec.f_procs > 0, "process counts must be positive")
    config_text = (
        f"F cluster0 /bin/F {spec.f_procs}\n"
        f"U cluster1 /bin/U {spec.u_procs}\n"
        "#\n"
        f"F.f U.f REGL {spec.tolerance}\n"
    )
    cs = CoupledSimulation(
        config_text,
        options=RunOptions(
            preset=spec.preset(),
            buddy_help=spec.buddy_help,
            seed=spec.seed if seed is None else seed,
            tracer=tracer,
            match_backend=spec.match_backend,
        ),
    )
    profile = one_slow_profile(spec.f_procs, factor=spec.slow_factor)
    f_grid = choose_process_grid(spec.f_procs, 2)
    u_grid = (spec.u_procs, 1)
    cs.add_program(
        "F",
        main=_f_main(spec, profile),
        regions={"f": RegionDef(BlockDecomposition(spec.global_shape, f_grid))},
    )
    cs.add_program(
        "U",
        main=_u_main(spec),
        regions={"f": RegionDef(BlockDecomposition(spec.global_shape, u_grid))},
    )
    return cs


def optimal_iteration_of(records: list, cutoff_ts: float | None = None) -> int | None:
    """First iteration after which no export is needlessly buffered.

    In the optimal state only matched data objects are copied
    (decision ``send``); everything else is skipped.  Returns the index
    (0-based) of the first export of that steady tail, or ``None`` if
    it is never reached.

    *cutoff_ts* bounds the scan: exports after the last request's
    timestamp can never be skipped (no future answer exists to rule
    them out), so they are excluded — otherwise every finite run would
    trivially end non-optimal.
    """
    considered = [
        (i, rec)
        for i, rec in enumerate(records)
        if cutoff_ts is None or rec.ts <= cutoff_ts
    ]
    if not considered:
        return None
    last_buffer = None
    for i, rec in considered:
        if rec.decision is ExportDecision.BUFFER:
            last_buffer = i
    if last_buffer is None:
        return 0
    if last_buffer >= considered[-1][0]:
        return None
    return last_buffer + 1


def run_figure4_once(spec: Figure4Spec, run_index: int = 0) -> Figure4Run:
    """Execute one run and collect the ``p_s`` series and counters."""
    seed = spec.seed * 1000 + run_index
    cs = build_figure4_simulation(spec, seed=seed)
    cs.run()
    ctx = cs.context("F", spec.slow_rank)
    records = ctx.stats.export_records
    stats = cs.buffer_stats("F", spec.slow_rank, "f")
    rep = cs._programs["F"].exp_rep
    assert rep is not None
    return Figure4Run(
        series=[r.cost for r in records],
        decisions=ctx.stats.decisions(),
        t_ub=stats.t_ub,
        unnecessary_total=stats.unnecessary_total_time,
        buddy_messages=rep.buddy_messages_sent,
        optimal_iteration=optimal_iteration_of(
            records, cutoff_ts=spec.n_requests * spec.request_period
        ),
        sim_time=cs.sim.now,
    )


def run_figure4(spec: Figure4Spec) -> Figure4Result:
    """Execute all ``spec.runs`` runs of one configuration."""
    result = Figure4Result(spec=spec)
    for i in range(spec.runs):
        result.runs.append(run_figure4_once(spec, run_index=i))
    return result


def spec_for_subfigure(sub: str, **overrides) -> Figure4Spec:
    """The spec of paper sub-figure ``"a"``/``"b"``/``"c"``/``"d"``."""
    u = {"a": 4, "b": 8, "c": 16, "d": 32}[sub.lower()]
    return replace(Figure4Spec(u_procs=u), **overrides)
