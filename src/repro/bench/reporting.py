"""Plain-text reporting for the benchmark harness.

The paper's evaluation is a set of time-series plots; benchmarks print
the same information as compact ASCII: summary tables per phase and
down-sampled series rendered as rows of numbers (and a unicode
sparkline for quick visual shape checks in terminal logs).
"""

from __future__ import annotations

from typing import Sequence

from repro.util.stats import SeriesSummary
from repro.util.validation import require

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width table with right-aligned numeric cells."""
    require(len(headers) > 0, "table needs headers")
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        require(len(row) == len(headers), "row width mismatch")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def downsample(series: Sequence[float], points: int = 40) -> list[float]:
    """Bucket-mean down-sampling preserving the series shape."""
    require(points > 0, "points must be positive")
    n = len(series)
    if n <= points:
        return list(series)
    out = []
    for b in range(points):
        lo = b * n // points
        hi = max(lo + 1, (b + 1) * n // points)
        chunk = series[lo:hi]
        out.append(sum(chunk) / len(chunk))
    return out


def sparkline(series: Sequence[float], points: int = 60) -> str:
    """A one-line unicode sketch of the series shape."""
    data = downsample(series, points)
    lo, hi = min(data), max(data)
    if hi <= lo:
        return _SPARK_CHARS[0] * len(data)
    span = hi - lo
    return "".join(
        _SPARK_CHARS[min(len(_SPARK_CHARS) - 1, int((x - lo) / span * len(_SPARK_CHARS)))]
        for x in data
    )


def format_series(
    name: str, series: Sequence[float], unit: str = "s", points: int = 40
) -> str:
    """Summary line + sparkline + down-sampled values for one series."""
    s = SeriesSummary.from_series(list(series))
    lines = [
        f"{name}: n={s.count} mean={s.mean:.4g}{unit} min={s.minimum:.4g}"
        f" max={s.maximum:.4g} head={s.head_mean:.4g} body={s.body_mean:.4g}"
        f" tail={s.tail_mean:.4g}",
        f"  shape: {sparkline(series, points)}",
    ]
    return "\n".join(lines)


def summarize_runs(series_list: Sequence[Sequence[float]]) -> SeriesSummary:
    """Summary of the elementwise-mean series across repeated runs."""
    require(len(series_list) > 0, "need at least one run")
    n = min(len(s) for s in series_list)
    require(n > 0, "series must be non-empty")
    mean_series = [
        sum(s[i] for s in series_list) / len(series_list) for i in range(n)
    ]
    return SeriesSummary.from_series(mean_series)
