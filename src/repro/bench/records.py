"""Machine-readable experiment records.

Serializes benchmark results to plain-JSON dictionaries so downstream
tooling (plotting scripts, regression dashboards) can consume the
reproduction's output without importing the library.  Round-trip
helpers are provided for the Figure-4 results and trace scenarios.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any

from repro.bench.figure4 import Figure4Result, Figure4Run, Figure4Spec
from repro.bench.traces import TraceScenario
from repro.util.validation import require

#: Format version stamped into every record.
SCHEMA_VERSION = 1


def figure4_to_dict(result: Figure4Result) -> dict[str, Any]:
    """Serialize a :class:`Figure4Result` (spec + all runs)."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "figure4",
        "spec": asdict(result.spec),
        "runs": [
            {
                "series": run.series,
                "decisions": run.decisions,
                "t_ub": run.t_ub,
                "unnecessary_total": run.unnecessary_total,
                "buddy_messages": run.buddy_messages,
                "optimal_iteration": run.optimal_iteration,
                "sim_time": run.sim_time,
            }
            for run in result.runs
        ],
    }


def figure4_from_dict(payload: dict[str, Any]) -> Figure4Result:
    """Reconstruct a :class:`Figure4Result` from its serialized form."""
    require(payload.get("kind") == "figure4", "not a figure4 record")
    require(payload.get("schema") == SCHEMA_VERSION, "unknown schema version")
    spec_dict = dict(payload["spec"])
    spec_dict["global_shape"] = tuple(spec_dict["global_shape"])
    spec = Figure4Spec(**spec_dict)
    result = Figure4Result(spec=spec)
    for r in payload["runs"]:
        result.runs.append(
            Figure4Run(
                series=list(r["series"]),
                decisions=dict(r["decisions"]),
                t_ub=r["t_ub"],
                unnecessary_total=r["unnecessary_total"],
                buddy_messages=r["buddy_messages"],
                optimal_iteration=r["optimal_iteration"],
                sim_time=r["sim_time"],
            )
        )
    return result


def trace_to_dict(scenario: TraceScenario) -> dict[str, Any]:
    """Serialize a trace scenario's event stream."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "trace",
        "name": scenario.name,
        "events": [
            {
                "kind": e.kind,
                "who": e.who,
                "time": e.time,
                "timestamp": e.timestamp,
                "detail": e.detail,
            }
            for e in scenario.events
        ],
    }


def save_json(payload: dict[str, Any], path: str | Path) -> Path:
    """Write *payload* to *path* (creating parent directories)."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(payload, indent=1), encoding="utf-8")
    return p


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a record written by :func:`save_json`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
