"""Benchmark harness: regenerates every figure of the paper.

* :mod:`repro.bench.figure4` -- the Section-5 micro-benchmark
  (Figure 4 a-d): per-iteration export time of the slowest exporter
  process for importer sizes 4/8/16/32, six runs each.
* :mod:`repro.bench.traces` -- the event-trace scenarios of Figures
  5, 7 and 8, plus the Figure-6 optimal-state predicate.
* :mod:`repro.bench.scenarios` -- the Figure-3 buffering scenarios
  (importer-slower vs exporter-slower).
* :mod:`repro.bench.reporting` -- ASCII tables/series so the pytest
  benchmarks print the same rows the paper plots.
"""

from repro.bench.figure4 import (
    Figure4Result,
    Figure4Run,
    Figure4Spec,
    build_figure4_simulation,
    run_figure4,
    run_figure4_once,
)
from repro.bench.traces import (
    TraceScenario,
    scenario_fig5,
    scenario_fig7_with_buddy,
    scenario_fig8_without_buddy,
    optimal_state_reached,
)
from repro.bench.scenarios import (
    BufferingScenarioResult,
    run_importer_slower,
    run_exporter_slower,
)
from repro.bench.reporting import format_series, format_table, summarize_runs

__all__ = [
    "Figure4Spec",
    "Figure4Run",
    "Figure4Result",
    "build_figure4_simulation",
    "run_figure4",
    "run_figure4_once",
    "TraceScenario",
    "scenario_fig5",
    "scenario_fig7_with_buddy",
    "scenario_fig8_without_buddy",
    "optimal_state_reached",
    "BufferingScenarioResult",
    "run_importer_slower",
    "run_exporter_slower",
    "format_series",
    "format_table",
    "summarize_runs",
]
