"""Resilience benchmark: answer fidelity and cost under chaos.

Runs the Figure-3-style E(2) → I(2) coupling on the DES runtime under
a sweep of control-plane drop rates (plus duplication, jitter and
reordering from one :class:`~repro.faults.plan.FaultPlan` template)
and verifies the subsystem's central claim: **faults never change the
answers** — every run produces the same per-rank ``(request_ts,
matched_ts)`` sequence as the fault-free baseline; only timing, skip
counts and retransmission effort differ.

Reported per drop rate: mean answer latency (importer
:class:`~repro.core.importer.ImportRecord` ledger), the slow exporter
rank's ``T_ub`` buffer ledger, retransmission/dedup counters, the
:class:`~repro.faults.network.FaultStats`, and virtual completion
time.  ``repro chaos`` is the CLI front-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator

from repro.api.options import RunOptions
from repro.core.coupler import CoupledSimulation, ProcessContext, RegionDef
from repro.costs import ClusterPreset
from repro.costs.models import ComputeCostModel, MemoryCostModel, NetworkCostModel
from repro.data.decomposition import BlockDecomposition
from repro.faults import FaultPlan

#: One importer rank's answers: ``(request_ts, matched_ts-or-None)``.
AnswerLog = list[tuple[float, float | None]]


@dataclass
class ResilienceRunResult:
    """Outcome of one chaos run at one drop rate."""

    drop: float
    answers: dict[int, AnswerLog]
    mean_answer_latency: float
    t_ub: float
    skip_count: int
    retransmissions: int
    dup_discards: int
    duplicate_requests: int
    fault_stats: dict[str, Any] | None
    sim_time: float
    #: Physical control-plane wire messages (frames count as one).
    ctl_messages: int = 0
    #: Frames sent / logical messages carried when ``batch_control``.
    frames_sent: int = 0
    framed_messages: int = 0

    def answers_match(self, baseline: "ResilienceRunResult") -> bool:
        """Whether this run's answers are identical to *baseline*'s."""
        return self.answers == baseline.answers


@dataclass
class ResilienceSweepResult:
    """A full sweep: the fault-free baseline plus the chaos runs."""

    runs: list[ResilienceRunResult] = field(default_factory=list)

    @property
    def baseline(self) -> ResilienceRunResult:
        """The fault-free run (``drop == 0`` with a no-op plan)."""
        return self.runs[0]

    @property
    def answers_consistent(self) -> bool:
        """Whether every chaos run reproduced the baseline answers."""
        return all(r.answers_match(self.baseline) for r in self.runs[1:])


def _preset() -> ClusterPreset:
    return ClusterPreset(
        name="resilience",
        memory=MemoryCostModel(
            setup_time=1e-5, bandwidth=1e9, free_time=1e-6,
            init_factor=1.0, init_until=0.0, contention_per_peer=0.0,
        ),
        network=NetworkCostModel(latency=1e-5, bandwidth=1e9, congestion_per_flow=0.0),
        compute=ComputeCostModel(time_per_element=1e-8, fixed_overhead=1e-6, jitter=0.0),
    )


def run_once(
    plan: FaultPlan | None,
    exports: int = 40,
    requests: int = 15,
    request_period: float = 2.0,
    batch_control: bool = False,
    match_backend: str = "legacy",
) -> ResilienceRunResult:
    """One E(2) → I(2) run under *plan* (``None`` = fault-free)."""
    shape = (64, 64)
    config = (
        "E c0 /bin/E 2\n"
        "I c1 /bin/I 2\n"
        "#\n"
        "E.d I.d REGL 2.5\n"
    )
    answers: dict[int, AnswerLog] = {}

    def e_main(ctx: ProcessContext) -> Generator[Any, Any, None]:
        # Rank 1 is p_s: twice the per-iteration work, so the run has
        # PENDING windows for buddy-help (and for BuddyMsg loss) to act on.
        scale = 2.0 if ctx.rank == 1 else 1.0
        for k in range(exports):
            yield from ctx.export("d", 1.6 + k)
            yield from ctx.compute(2e-3 * scale)

    def i_main(ctx: ProcessContext) -> Generator[Any, Any, None]:
        got: AnswerLog = []
        for j in range(1, requests + 1):
            yield from ctx.compute(5e-4)
            ts = request_period * j
            m, _block = yield from ctx.import_("d", ts)
            got.append((ts, m))
        answers[ctx.rank] = got

    cs = CoupledSimulation(
        config,
        options=RunOptions(
            preset=_preset(),
            seed=0,
            fault_plan=plan,
            batch_control=batch_control,
            match_backend=match_backend,
        ),
    )
    cs.add_program(
        "E", main=e_main, regions={"d": RegionDef(BlockDecomposition(shape, (2, 1)))}
    )
    cs.add_program(
        "I", main=i_main, regions={"d": RegionDef(BlockDecomposition(shape, (1, 2)))}
    )
    cs.run()

    latencies = [
        r.latency
        for rank in answers
        for r in cs.context("I", rank).import_states["d"].records
        if r.latency is not None
    ]
    exp_ctx = cs.context("E", 1)
    stats = getattr(cs.world.network, "stats", None)
    exp_rep = cs._programs["E"].exp_rep
    return ResilienceRunResult(
        drop=plan.drop if plan is not None else 0.0,
        answers=answers,
        mean_answer_latency=sum(latencies) / len(latencies) if latencies else 0.0,
        t_ub=cs.buffer_stats("E", 1, "d").t_ub,
        skip_count=exp_ctx.stats.decisions().get("skip", 0),
        retransmissions=cs.retransmissions,
        dup_discards=cs.dup_discards,
        duplicate_requests=exp_rep.duplicate_requests if exp_rep else 0,
        fault_stats=stats.as_dict() if stats is not None else None,
        sim_time=cs.sim.now,
        ctl_messages=cs.ctl_messages,
        frames_sent=cs.frames_sent,
        framed_messages=cs.framed_messages,
    )


def run_resilience_sweep(
    drop_rates: tuple[float, ...] = (0.0, 0.05, 0.2),
    exports: int = 40,
    requests: int = 15,
    seed: int = 7,
    dup: float = 0.1,
    delay_jitter: float = 5e-5,
    reorder: float = 0.1,
) -> ResilienceSweepResult:
    """Run the scenario at each drop rate; first entry is the baseline.

    A ``drop_rates`` entry of ``0.0`` after the first still runs with
    duplication/jitter/reordering enabled — answer fidelity must hold
    under *any* chaos, not just loss.
    """
    result = ResilienceSweepResult()
    result.runs.append(run_once(None, exports=exports, requests=requests))
    for drop in drop_rates:
        plan = FaultPlan(
            seed=seed, drop=drop, dup=dup, delay_jitter=delay_jitter, reorder=reorder
        )
        result.runs.append(run_once(plan, exports=exports, requests=requests))
    return result
