"""The coupling framework: the paper's primary contribution.

This package implements the loosely coupled simulation framework of
Wu & Sussman (the InterComm temporal-consistency runtime) together
with the paper's *buddy-help* optimization:

* :mod:`repro.core.config` -- the framework-level configuration file
  (paper Figure 2): program deployment lines plus
  ``exporter.region importer.region POLICY tolerance`` connections.
* :mod:`repro.core.buffers` -- the per-process framework buffer with
  the unnecessary-buffering accounting of Equations (1)-(2).
* :mod:`repro.core.exporter` -- the export-side state machine: buffer /
  skip / send decisions, eviction thresholds, buddy-help knowledge.
* :mod:`repro.core.rep` -- the representative: request fan-out,
  five-case response aggregation, finalization on first definitive
  response, buddy-help dissemination, Property-1 violation detection.
* :mod:`repro.core.importer` -- the import-side state machine.
* :mod:`repro.core.coupler` -- wiring it all into a runnable coupled
  simulation on the DES runtime (programs, agents, reps, data plane).
* :mod:`repro.core.properties` -- offline Property-1 conformance
  checking over recorded operation logs.

Public entry point: :class:`repro.core.coupler.CoupledSimulation`.
"""

from repro.core.exceptions import (
    ConfigError,
    FrameworkError,
    PropertyViolationError,
)
from repro.core.config import (
    ConnectionSpec,
    CouplingConfig,
    ProgramSpec,
    load_config,
    parse_config,
)
from repro.core.buffers import BufferManager, BufferStats
from repro.core.exporter import ExportDecision, RegionExportState
from repro.core.rep import ExporterRep, ImporterRep
from repro.core.importer import RegionImportState
from repro.core.coupler import CoupledSimulation, ProcessContext, RegionDef
from repro.core.live import LiveCoupledSimulation, LiveProcessContext
from repro.core.properties import OperationLog, check_property1

__all__ = [
    "ConfigError",
    "FrameworkError",
    "PropertyViolationError",
    "ProgramSpec",
    "ConnectionSpec",
    "CouplingConfig",
    "parse_config",
    "load_config",
    "BufferManager",
    "BufferStats",
    "ExportDecision",
    "RegionExportState",
    "ExporterRep",
    "ImporterRep",
    "RegionImportState",
    "CoupledSimulation",
    "ProcessContext",
    "RegionDef",
    "LiveCoupledSimulation",
    "LiveProcessContext",
    "OperationLog",
    "check_property1",
]
