"""Wiring the coupling framework into a runnable DES simulation.

:class:`CoupledSimulation` is the public entry point of the library.
A typical session (see ``examples/quickstart.py``)::

    config = '''
    F cluster0 /bin/F 4
    U cluster1 /bin/U 16
    #
    F.forcing U.forcing REGL 2.5
    '''

    cs = CoupledSimulation(config, preset=PAPER_CLUSTER, buddy_help=True)
    cs.add_program("F", main=f_main,
                   regions={"forcing": RegionDef(BlockDecomposition((1024, 1024), (4, 1)))})
    cs.add_program("U", main=u_main,
                   regions={"forcing": RegionDef(BlockDecomposition((1024, 1024), (16, 1)))})
    cs.run()

``f_main(ctx)`` / ``u_main(ctx)`` are generator functions; they use the
:class:`ProcessContext` API — ``yield from ctx.export(...)``,
``yield from ctx.import_(...)``, ``yield from ctx.compute(...)`` and
intra-program collectives through ``ctx.comm``.

Topology per program: ``nprocs`` application processes (each with a
*control* agent servicing rep traffic concurrently, standing in for
the framework's service thread) plus one rep process.  Addresses on
the shared :class:`~repro.des.Network`:

* ``(name, rank)``       — the program's ``vmpi`` mailbox (user p2p
  and collectives; untouched by the framework),
* ``("ctl", name, rank)`` — framework control traffic,
* ``("cpl", name, rank)`` — coupling data plane (answers and pieces),
* ``("rep", name)``       — the program's representative.

Modelling note: an application process and its control agent can
consume virtual time concurrently, i.e. framework control work is not
serialized against application compute.  This matches the paper's
framework-thread design and keeps the (dominant) memcpy cost where the
paper measures it — inside the export call.
"""

from __future__ import annotations

import dataclasses
import os
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator

import numpy as np

from repro.core.config import ConnectionSpec, CouplingConfig, parse_config
from repro.core.exceptions import ConfigError, FrameworkError
from repro.core.exporter import ExportDecision, RegionExportState
from repro.core.importer import RegionImportState
from repro.core.properties import OperationLog, check_property1
from repro.core.rep import (
    AnswerImporter,
    BuddyHelp,
    DeliverAnswer,
    ExporterRep,
    ForwardRequest,
    ForwardToExporter,
    ImporterRep,
)
from repro.data.decomposition import BlockDecomposition
from repro.data.region import RectRegion
from repro.data.schedule import CommSchedule
from repro.des import AnyOf, Event, Simulator
from repro.des.channel import Delivery
from repro.match.result import FinalAnswer, MatchKind, MatchResponse
from repro.obs.trace import CausalLog, TraceContext
from repro.util.rng import RngRegistry
from repro.util import tracing
from repro.util.tracing import NullTracer
from repro.util.validation import require, require_positive
from repro.vmpi.des_backend import DesCommunicator, DesWorld

if TYPE_CHECKING:
    from repro.api.options import RunOptions

#: Sentinel distinguishing "not passed" from any real value in the
#: deprecated keyword-argument constructor path.
_UNSET: Any = object()


# Wire messages are shared with the live threaded runtime so both speak
# exactly the same protocol (see repro.core.wire).
from repro.core.wire import (  # noqa: E402  (import after docstring helpers)
    CTL_NBYTES as _CTL_NBYTES,
    AnswerToImpRep as _AnswerToImpRep,
    AnswerToProc as _AnswerToProc,
    BuddyMsg as _BuddyMsg,
    DataPiece as _DataPiece,
    Frame as _Frame,
    FwdRequest as _FwdRequest,
    ImpProcRequest as _ImpProcRequest,
    ProcResponse as _ProcResponse,
    ReqToExpRep as _ReqToExpRep,
    frame_nbytes as _frame_nbytes,
)


# ---------------------------------------------------------------------------
# declarations and per-process state
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RegionDef:
    """A program's declaration of one coupled region.

    Attributes
    ----------
    decomp:
        How the region's global index space is distributed over the
        program's processes.  ``decomp.nprocs`` must equal the
        program's process count.
    dtype:
        Element type (drives wire sizes and importer assembly).
    section:
        Optional sub-box of the global index space this program couples
        through (``None`` = the whole space).  The paper couples
        "shared boundaries or overlapped regions between physical
        models": a connection transfers the *intersection* of the two
        sides' sections.  Exports still buffer the rank's whole local
        block (that is the exported data object); the section only
        restricts what travels.
    """

    decomp: BlockDecomposition
    dtype: Any = np.float64
    section: RectRegion | None = None

    @property
    def itemsize(self) -> int:
        """Bytes per element."""
        return int(np.dtype(self.dtype).itemsize)

    def effective_section(self) -> RectRegion:
        """The declared section, defaulting to the full index space."""
        return (
            self.section
            if self.section is not None
            else self.decomp.bounding_region()
        )


@dataclass
class ExportRecord:
    """One export call of one process — a point of the Figure-4 series."""

    ts: float
    decision: ExportDecision
    cost: float
    at: float  # virtual time at call start


@dataclass
class ImportHandle:
    """An outstanding non-blocking import (see ``import_begin``)."""

    region: str
    connection_id: str
    ts: float
    record: Any
    done: bool = False


@dataclass
class ProcessStats:
    """Per-process instrumentation collected during a run."""

    export_records: list[ExportRecord] = field(default_factory=list)
    compute_time: float = 0.0
    #: Virtual time spent stalled waiting for buffer space (finite
    #: buffers with the "block" policy).
    backpressure_time: float = 0.0
    #: Buddy-help accounting (paper Figures 7-8): final answers this
    #: process received from its rep, skips enabled only by those
    #: answers, and the memcpy time those skips avoided — the per-rank
    #: contribution to the with-help vs. no-help ``T_ub`` comparison.
    buddy_answers_received: int = 0
    buddy_skips: int = 0
    buddy_saved_time: float = 0.0
    #: Per buddy-enabled skip: ``(export_ts, request_ts, lead)`` where
    #: *lead* is how long before the skip decision the enabling buddy
    #: answer had arrived — the per-window head start the paper's
    #: dissemination buys (reported by the causal trace).
    buddy_lead_times: list[tuple[float, float, float]] = field(default_factory=list)

    def export_times(self) -> list[float]:
        """The per-iteration export-cost series (Figure 4's y-axis)."""
        return [r.cost for r in self.export_records]

    def decisions(self) -> dict[str, int]:
        """Histogram of export decisions."""
        out: dict[str, int] = {}
        for r in self.export_records:
            out[r.decision.value] = out.get(r.decision.value, 0) + 1
        return out


class _ConnRuntime:
    """Resolved per-connection runtime info (schedule, endpoints)."""

    def __init__(self, spec: ConnectionSpec) -> None:
        self.spec = spec
        self.schedule: CommSchedule | None = None
        self.exp_def: RegionDef | None = None
        self.imp_def: RegionDef | None = None
        #: Per-exporter-rank send plan: (dst_rank, region, slices, nbytes)
        #: with the slice tuples precomputed at finalize time.
        self.send_plans: dict[int, tuple[tuple[int, RectRegion, tuple[slice, ...], int], ...]] = {}
        #: Per-importer-rank assembly slices, keyed by piece region.
        self.recv_slices: dict[int, dict[RectRegion, tuple[slice, ...]]] = {}

    @property
    def cid(self) -> str:
        return self.spec.connection_id


class _ProgramRuntime:
    """One registered program: spec, regions, communicators, contexts."""

    def __init__(
        self,
        name: str,
        nprocs: int,
        main: Callable[["ProcessContext"], Generator[Event, Any, Any]] | None,
        regions: dict[str, RegionDef],
        comms: list[DesCommunicator],
    ) -> None:
        self.name = name
        self.nprocs = nprocs
        self.main = main
        self.regions = regions
        self.comms = comms
        self.contexts: list[ProcessContext] = []
        self.exp_rep: ExporterRep | None = None
        self.imp_rep: ImporterRep | None = None
        self.alive = nprocs


class ProcessContext:
    """The per-process API handed to user ``main(ctx)`` generators."""

    def __init__(
        self,
        coupler: "CoupledSimulation",
        program: _ProgramRuntime,
        rank: int,
    ) -> None:
        self._coupler = coupler
        self._program = program
        self.program = program.name
        self.rank = rank
        self.nprocs = program.nprocs
        #: Intra-program communicator (vmpi, DES backend).
        self.comm = program.comms[rank]
        self.sim: Simulator = coupler.sim
        self.stats = ProcessStats()
        self._rng = coupler.rng.stream(f"compute/{self.program}.{rank}")
        # Per-region framework state.
        self.export_states: dict[str, RegionExportState] = {}
        self.import_states: dict[str, RegionImportState] = {}
        for rname in program.regions:
            exp_conns = coupler.config.connections_exporting(self.program, rname)
            if exp_conns:
                self.export_states[rname] = RegionExportState(
                    rname,
                    exp_conns,
                    capacity_bytes=coupler.buffer_capacity_bytes,
                    strict_order=coupler.strict_order,
                    match_backend=coupler.match_backend,
                )
            imp_conns = coupler.config.connections_importing(self.program, rname)
            if imp_conns:
                require(
                    len(imp_conns) == 1,
                    f"region {self.program}.{rname} is imported over "
                    f"{len(imp_conns)} connections; at most one exporter "
                    "per imported region is supported",
                )
                self.import_states[rname] = RegionImportState(
                    rname, imp_conns[0].connection_id
                )
        # Regions declared but absent from any connection still get an
        # (empty) export state so exports are legal no-ops.
        for rname in program.regions:
            if rname not in self.export_states and rname not in self.import_states:
                self.export_states[rname] = RegionExportState(rname, [])
        #: Arrival bookkeeping for buddy answers, keyed by
        #: ``(connection_id, request_ts)``: ``(arrived_at, recv_span)``.
        #: Feeds the per-window buddy-help lead times.
        self._buddy_arrivals: dict[tuple[str, float], tuple[float, Any]] = {}
        #: Trace context of the last FwdRequest per request, so the
        #: (possibly much later) match response can name its cause.
        self._causal_fwd: dict[tuple[str, float], TraceContext | None] = {}

    # -- identity helpers -------------------------------------------------
    @property
    def who(self) -> str:
        """Trace identity, e.g. ``"F.p2"``."""
        return f"{self.program}.p{self.rank}"

    def local_region(self, region: str) -> RectRegion:
        """This rank's owned sub-box of *region*."""
        return self._program.regions[region].decomp.local_region(self.rank)

    # -- time ------------------------------------------------------------------
    def compute(self, seconds: float) -> Generator[Event, Any, float]:
        """Spend *seconds* of virtual time computing."""
        require(seconds >= 0, "compute time must be >= 0")
        yield self.sim.timeout(seconds)
        self.stats.compute_time += seconds
        if self._coupler._prov is not None:
            self._coupler._prov.on_op(
                self.program, self.rank, {"op": "compute", "seconds": seconds}
            )
        return seconds

    def compute_elements(
        self, elements: int, scale: float = 1.0
    ) -> Generator[Event, Any, float]:
        """Spend one solver iteration's virtual time over *elements* points.

        *scale* injects load imbalance (the paper's slowed process
        ``p_s`` does "extra computational work").
        """
        t = self._coupler.preset.compute.iteration_time(
            elements, rng=self._rng, scale=scale
        )
        yield self.sim.timeout(t)
        self.stats.compute_time += t
        if self._coupler._prov is not None:
            # Recorded as (elements, scale), not the drawn time: replay
            # re-issues the same draw from the same named stream, which
            # keeps the shared per-rank RNG in lock-step with exports.
            self._coupler._prov.on_op(
                self.program,
                self.rank,
                {
                    "op": "compute_elements",
                    "elements": int(elements),
                    "scale": float(scale),
                },
            )
        return t

    # -- export -----------------------------------------------------------------
    def export(
        self,
        region: str,
        ts: float,
        data: np.ndarray | None = None,
    ) -> Generator[Event, Any, ExportDecision]:
        """Export the region's data object with timestamp *ts*.

        *data* is this rank's local block (shape must match the
        declared decomposition); omit it for cost-only runs (the
        Figure-4 micro-benchmark measures buffering cost without
        shipping real payloads).  Returns the framework's decision.
        """
        st = self.export_states.get(region)
        require(st is not None, f"{self.program} declares no region {region!r}")
        assert st is not None
        rdef = self._program.regions[region]
        local = self.local_region(region)
        if data is not None:
            expected = local.shape
            require(
                tuple(data.shape) == expected,
                f"export {region}@{ts}: local block shape {data.shape} != "
                f"decomposition shape {expected}",
            )
            nbytes = int(data.nbytes)
        else:
            nbytes = local.size * rdef.itemsize

        coupler = self._coupler
        # Finite buffers with backpressure: if this export will need
        # space the buffer cannot currently provide, stall until the
        # agent's evictions (driven by requests/answers) free room.
        if (
            coupler.buffer_capacity_bytes is not None
            and coupler.buffer_policy == "block"
            and st.is_connected
            and not st.would_skip(ts)
        ):
            stall_start = self.sim.now
            while st.buffer.live_bytes + nbytes > coupler.buffer_capacity_bytes:
                if st.would_skip(ts):
                    break  # an answer arrived meanwhile; no space needed
                yield self.sim.timeout(coupler.backpressure_poll)
            self.stats.backpressure_time += self.sim.now - stall_start

        t0 = self.sim.now
        memcpy_cost = coupler.preset.memory.memcpy_time(
            nbytes, now=t0, active_peers=self._program.alive - 1, rng=self._rng
        )
        outcome = st.on_export(ts, nbytes, memcpy_cost)
        tracer = coupler.tracer
        if outcome.decision in (ExportDecision.BUFFER, ExportDecision.SEND):
            charge = memcpy_cost
            if data is not None:
                # The honest memcpy: the framework owns a private copy.
                st.buffer.get(ts).payload = data.copy()
            if tracer.enabled:
                tracer.record(tracing.EXPORT_MEMCPY, self.who, t0, timestamp=ts)
        elif outcome.decision is ExportDecision.SKIP:
            charge = coupler.preset.memory.skip_time()
            if outcome.buddy_skip:
                # Without the rep's disseminated answer this object
                # would have been buffered (and freed unsent later):
                # credit the avoided memcpy to buddy-help.
                self.stats.buddy_skips += 1
                self.stats.buddy_saved_time += memcpy_cost
                self._note_buddy_skip(ts, outcome, t0)
            if tracer.enabled:
                tracer.record(
                    tracing.EXPORT_SKIP, self.who, t0, timestamp=ts, region=region
                )
        else:  # NOOP: unconnected region
            charge = 0.0
        if outcome.replaced:
            charge += coupler.preset.memory.free_buffers_time(len(outcome.replaced))
            if tracer.enabled:
                for entry in outcome.replaced:
                    tracer.record(
                        tracing.BUFFER_REMOVE, self.who, t0, timestamp=entry.ts
                    )
        if charge > 0:
            yield self.sim.timeout(charge)

        # Transfers: this export *is* the match for these connections.
        for cid in outcome.send_connections:
            coupler._send_pieces(self, region, cid, ts)
        for cid, m in outcome.post_sends:
            coupler._send_pieces(self, region, cid, m)
        # Slow-path responses: open requests that became decidable.
        for cid, response in outcome.new_responses:
            coupler._send_response(self, cid, response)
        # Threshold-driven eviction uncovered by this call.
        evicted = st.collect_evictions()
        if evicted:
            free_cost = coupler.preset.memory.free_buffers_time(len(evicted))
            if tracer.enabled:
                tracer.record(
                    tracing.BUFFER_REMOVE,
                    self.who,
                    self.sim.now,
                    timestamp=evicted[-1].ts,
                    low=evicted[0].ts,
                    high=evicted[-1].ts,
                )
            yield self.sim.timeout(free_cost)
            charge += free_cost

        self.stats.export_records.append(
            ExportRecord(ts=ts, decision=outcome.decision, cost=charge, at=t0)
        )
        if coupler.operation_log is not None:
            coupler.operation_log.log(self.program, self.rank, "export", region, ts)
        if coupler._prov is not None:
            coupler._prov.on_op(
                self.program,
                self.rank,
                {
                    "op": "export",
                    "region": region,
                    "ts": ts,
                    "dtype": None if data is None else np.dtype(data.dtype).name,
                },
            )
        return outcome.decision

    def _note_buddy_skip(self, ts: float, outcome: Any, now: float) -> None:
        """Record the buddy-help lead of a skipped window.

        The lead is the time from the enabling buddy answer's arrival
        to the skip decision it enabled — how much of a head start the
        rep's dissemination gave this process over deciding locally.
        """
        enabler = outcome.buddy_enabler
        if enabler is None:
            return
        cid, request_ts = enabler
        arrival = self._buddy_arrivals.get((cid, request_ts))
        if arrival is None:
            return
        arrived_at, recv_span = arrival
        lead = now - arrived_at
        self.stats.buddy_lead_times.append((ts, request_ts, lead))
        coupler = self._coupler
        if coupler.causal is not None:
            tid = (
                recv_span.trace_id
                if recv_span is not None
                else coupler.causal.trace_for(cid, request_ts)
            )
            coupler.causal.record(
                tid,
                "buddy_skip",
                self.who,
                now,
                parents=() if recv_span is None else (recv_span.span_id,),
                connection=cid,
                request=request_ts,
                export_ts=ts,
                lead=lead,
            )

    # -- import -----------------------------------------------------------------
    def import_begin(self, region: str, ts: float) -> "ImportHandle":
        """Post the request for *ts* without waiting (non-blocking).

        Returns an :class:`ImportHandle` to pass to
        :meth:`import_wait`.  This is the paper's Section-6 extension:
        a process can post the request, compute, and collect the data
        later — overlapping the framework round-trip and the transfer
        with useful work.  Requests must still be issued collectively
        and in increasing timestamp order.
        """
        ist = self.import_states.get(region)
        require(ist is not None, f"{self.program} imports no region {region!r}")
        assert ist is not None
        coupler = self._coupler
        cid = ist.connection_id
        now = self.sim.now
        tr: TraceContext | None = None
        if coupler.causal is not None:
            tid = coupler.causal.trace_for(cid, ts)
            tr = coupler.causal.record(
                tid, "request", self.who, now,
                connection=cid, request=ts, rank=self.rank,
            )
            coupler._causal_req[(cid, ts, self.rank)] = tr
        record = ist.start_request(
            ts, now, trace_id=None if tr is None else tr.trace_id
        )
        if coupler.tracer.enabled:
            coupler.tracer.record(
                tracing.IMPORT_REQUEST, self.who, self.sim.now, request=ts
            )
        coupler._net_send(
            ("cpl", self.program, self.rank),
            ("rep", self.program),
            _ImpProcRequest(
                connection_id=cid, request_ts=ts, rank=self.rank, trace=tr
            ),
        )
        if coupler.operation_log is not None:
            coupler.operation_log.log(self.program, self.rank, "import", region, ts)
        if coupler._prov is not None:
            coupler._prov.on_op(
                self.program,
                self.rank,
                {"op": "import_begin", "region": region, "ts": ts},
            )
        return ImportHandle(region=region, connection_id=cid, ts=ts, record=record)

    def import_wait(
        self, handle: "ImportHandle"
    ) -> Generator[Event, Any, tuple[float | None, np.ndarray | None]]:
        """Block until the request behind *handle* resolves.

        Returns ``(matched_ts, local_block)``; ``(None, None)`` on
        NO_MATCH.  The local block is this rank's share under its own
        declared decomposition (``None`` in cost-only runs).
        """
        require(not handle.done, "import handle already completed")
        ist = self.import_states[handle.region]
        coupler = self._coupler
        cid = handle.connection_id
        ts = handle.ts
        if coupler._prov is not None:
            coupler._prov.on_op(
                self.program,
                self.rank,
                {"op": "import_wait", "region": handle.region, "ts": ts},
            )
        conn_rt = coupler._connections[cid]
        box = coupler._cpl_mailbox(self.program, self.rank)
        answer_ev = box.get_matching(
            lambda d: isinstance(d.payload, _AnswerToProc)
            and d.payload.connection_id == cid
            and d.payload.answer.request_ts == ts
        )
        delivery = yield from self._await_with_retransmit(answer_ev, handle)
        answer: FinalAnswer = delivery.payload.answer
        ist.on_answer(handle.record, answer, self.sim.now)
        handle.done = True
        ans_span: TraceContext | None = None
        if coupler.causal is not None:
            ans_span = self._causal_answered(
                cid, ts, delivery.payload.trace, str(answer.kind)
            )
        if answer.kind is MatchKind.NO_MATCH:
            ist.complete(handle.record, self.sim.now)
            if ans_span is not None:
                assert coupler.causal is not None
                coupler.causal.record(
                    ans_span.trace_id, "complete", self.who, self.sim.now,
                    parents=(ans_span.span_id,),
                    connection=cid, request=ts, kind=str(answer.kind), pieces=0,
                )
            return (None, None)
        m = answer.matched_ts
        assert m is not None
        schedule = conn_rt.schedule
        assert schedule is not None
        expected = schedule.recvs_for(self.rank)
        # Keyed by (src_rank, region) so duplicated and re-sent pieces
        # collapse to one piece per scheduled transfer.
        pieces: dict[tuple[int, RectRegion], _DataPiece] = {}
        while len(pieces) < len(expected):
            piece_ev = box.get_matching(
                lambda d: isinstance(d.payload, _DataPiece)
                and d.payload.connection_id == cid
                and d.payload.match_ts == m
            )
            d = yield from self._await_with_retransmit(piece_ev, handle)
            pieces.setdefault((d.payload.src_rank, d.payload.region), d.payload)
        block = self._assemble(handle.region, list(pieces.values()))
        ist.complete(handle.record, self.sim.now)
        if ans_span is not None:
            assert coupler.causal is not None
            coupler.causal.record(
                ans_span.trace_id, "complete", self.who, self.sim.now,
                parents=(ans_span.span_id,),
                connection=cid, request=ts, kind=str(answer.kind),
                pieces=len(pieces),
            )
        if coupler.tracer.enabled:
            coupler.tracer.record(
                tracing.IMPORT_COMPLETE, self.who, self.sim.now, timestamp=m
            )
        return (m, block)

    def _causal_answered(
        self, cid: str, ts: float, incoming: TraceContext | None, kind: str
    ) -> TraceContext:
        """Record the 'answered' span when the final answer is consumed."""
        coupler = self._coupler
        assert coupler.causal is not None
        root = coupler._causal_req.get((cid, ts, self.rank))
        if incoming is not None:
            tid = incoming.trace_id
        elif root is not None:
            tid = root.trace_id
        else:
            tid = coupler.causal.trace_for(cid, ts)
        parents = tuple(x.span_id for x in (incoming, root) if x is not None)
        return coupler.causal.record(
            tid, "answered", self.who, self.sim.now,
            parents=parents, connection=cid, request=ts, kind=kind,
        )

    def _await_with_retransmit(
        self, get_ev: Event, handle: "ImportHandle"
    ) -> Generator[Event, Any, Any]:
        """Wait for *get_ev*; retransmit the request on timeout.

        Without a retransmission timeout this is a plain wait (the
        classic reliable-network protocol).  With one, the importing
        process owns the single retransmission timer of its request:
        on expiry it re-sends the :class:`ImpProcRequest` (a fresh
        send, fresh sequence number) and every hop recovers
        idempotently — the rep re-drives the cross-program request, the
        exporter rep re-answers from its final-answer cache, and agents
        re-send buffered pieces.  Backoff doubles per attempt.
        """
        coupler = self._coupler
        rto = coupler._rto
        if rto is None:
            result = yield get_ev
            return result
        attempt = 0
        while True:
            timer = self.sim.timeout(rto * (2 ** min(attempt, 6)))
            yield AnyOf(self.sim, [get_ev, timer])
            if get_ev.triggered:
                return get_ev.value
            attempt += 1
            if attempt > coupler.max_retransmits:
                raise FrameworkError(
                    f"{self.who}: request {handle.connection_id}@{handle.ts:g} "
                    f"unanswered after {coupler.max_retransmits} retransmissions"
                )
            coupler.retransmissions += 1
            if coupler.tracer.enabled:
                coupler.tracer.record(
                    tracing.RETRANSMIT,
                    self.who,
                    self.sim.now,
                    request=handle.ts,
                    attempt=attempt,
                    rto=rto * (2 ** min(attempt, 6)),
                )
            tr: TraceContext | None = None
            if coupler.causal is not None:
                # Retransmissions keep the ORIGINAL trace id: the DAG
                # of one import survives the fault layer intact.
                root = coupler._causal_req.get(
                    (handle.connection_id, handle.ts, self.rank)
                )
                tid = (
                    root.trace_id
                    if root is not None
                    else coupler.causal.trace_for(handle.connection_id, handle.ts)
                )
                tr = coupler.causal.record(
                    tid, "retransmit", self.who, self.sim.now,
                    parents=() if root is None else (root.span_id,),
                    connection=handle.connection_id,
                    request=handle.ts,
                    attempt=attempt,
                )
            coupler._net_send(
                ("cpl", self.program, self.rank),
                ("rep", self.program),
                _ImpProcRequest(
                    connection_id=handle.connection_id,
                    request_ts=handle.ts,
                    rank=self.rank,
                    trace=tr,
                ),
            )

    def import_(
        self, region: str, ts: float
    ) -> Generator[Event, Any, tuple[float | None, np.ndarray | None]]:
        """Blocking import: :meth:`import_begin` + :meth:`import_wait`."""
        handle = self.import_begin(region, ts)
        result = yield from self.import_wait(handle)
        return result

    def _assemble(
        self, region: str, pieces: list[_DataPiece]
    ) -> np.ndarray | None:
        rdef = self._program.regions[region]
        local = self.local_region(region)
        if any(p.data is None for p in pieces):
            return None
        if local.is_empty:
            return np.zeros(local.shape, dtype=rdef.dtype)
        block = np.zeros(local.shape, dtype=rdef.dtype)
        slice_map: dict[RectRegion, tuple[slice, ...]] = {}
        if pieces:
            crt = self._coupler._connections[pieces[0].connection_id]
            slice_map = crt.recv_slices.get(self.rank, {})
        for p in pieces:
            sl = slice_map.get(p.region)
            if sl is None:
                sl = p.region.to_slices(origin=local.lo)
            block[sl] = p.data
        return block


# ---------------------------------------------------------------------------
# the coupler
# ---------------------------------------------------------------------------

class CoupledSimulation:
    """A set of coupled programs on one virtual clock.

    Parameters
    ----------
    config:
        A :class:`CouplingConfig` or raw configuration text.
    options:
        A frozen :class:`~repro.api.options.RunOptions` carrying every
        setting below — the preferred construction path
        (``CoupledSimulation(config, options=RunOptions(...))``).  The
        individual keyword arguments remain as a deprecated
        compatibility shim: passing any of them emits one
        :class:`DeprecationWarning` and builds the equivalent options
        value.
    preset:
        Cost-model bundle (default: fast test costs).
    buddy_help:
        Enable the paper's optimization (default on; the benchmarks
        compare both settings).
    seed:
        Root RNG seed (compute jitter etc.).
    tracer:
        A :class:`~repro.util.tracing.Tracer` for Figure-5/7/8 style
        event traces (default: record nothing).
    buffer_capacity_bytes:
        Optional bound on each process's framework buffer (the finite
        buffer space named as future work in the paper's Section 6).
    buffer_policy:
        What an export does when buffering would exceed the capacity:
        ``"error"`` raises :class:`FrameworkError` (default);
        ``"block"`` applies backpressure — the exporting process stalls
        until eviction (driven by arriving requests/answers) frees
        space.  Stalled time accrues in ``stats.backpressure_time``.
    record_operations:
        Record every export/import call into an
        :class:`~repro.core.properties.OperationLog` so Property-1
        conformance can be checked after the run
        (:meth:`check_property1`).
    sanitize:
        Enable the online protocol sanitizer
        (:mod:`repro.analysis.sanitizer`): ``True`` or ``"strict"``
        raises :class:`~repro.analysis.sanitizer.SanitizerError` at the
        first invariant violation; ``"report"`` only accumulates
        findings in :attr:`sanitizer`.  Default (``None``) consults the
        ``REPRO_SANITIZE`` environment variable (``1``/``strict`` or
        ``report``; empty/``0`` disables).
    fault_plan:
        Optional :class:`repro.faults.FaultPlan`; the coupler's network
        becomes a :class:`repro.faults.network.FaultyNetwork` executing
        it, and the protocol switches to resilient mode (relaxed
        request ordering, idempotent reps, request retransmission).
    batch_control:
        Coalesce each representative's per-tick fan-out of control
        messages into per-destination :class:`~repro.core.wire.Frame`
        batches (default off).  Framing changes the modelled wire
        timing — one latency per frame instead of per member — so runs
        are *answer*-equivalent but not trace-identical to unbatched
        runs; the fault layer then draws once per frame.
    retransmit_timeout:
        Base request-timeout (virtual seconds) of the importer-side
        retransmission loop; backoff doubles it per attempt.  ``None``
        derives a bound from the network latency and the fault plan's
        delay knobs when a plan is given, else disables retransmission
        (the classic reliable-network protocol).
    max_retransmits:
        Retransmission attempts per request before the importer gives
        up with :class:`FrameworkError`.
    """

    def __init__(
        self,
        config: CouplingConfig | str,
        preset: Any = _UNSET,
        buddy_help: Any = _UNSET,
        seed: Any = _UNSET,
        tracer: Any = _UNSET,
        buffer_capacity_bytes: Any = _UNSET,
        buffer_policy: Any = _UNSET,
        record_operations: Any = _UNSET,
        sanitize: Any = _UNSET,
        fault_plan: Any = _UNSET,
        retransmit_timeout: Any = _UNSET,
        max_retransmits: Any = _UNSET,
        batch_control: Any = _UNSET,
        *,
        options: "RunOptions | None" = None,
    ) -> None:
        # Imported lazily: repro.api.facade imports this module.
        from repro.api.options import RunOptions

        legacy = {
            name: value
            for name, value in (
                ("preset", preset),
                ("buddy_help", buddy_help),
                ("seed", seed),
                ("tracer", tracer),
                ("buffer_capacity_bytes", buffer_capacity_bytes),
                ("buffer_policy", buffer_policy),
                ("record_operations", record_operations),
                ("sanitize", sanitize),
                ("fault_plan", fault_plan),
                ("retransmit_timeout", retransmit_timeout),
                ("max_retransmits", max_retransmits),
                ("batch_control", batch_control),
            )
            if value is not _UNSET
        }
        if legacy:
            if options is not None:
                raise ConfigError(
                    "pass either options=RunOptions(...) or legacy keyword "
                    "arguments, not both"
                )
            warnings.warn(
                "CoupledSimulation(preset=..., seed=..., ...) keyword arguments "
                "are deprecated; pass options=repro.RunOptions(...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            options = RunOptions(**legacy)
        elif options is None:
            options = RunOptions()
        #: The frozen options this simulation was built from.
        self.options = options
        preset = options.preset
        buddy_help = options.buddy_help
        seed = options.seed
        tracer = options.tracer
        buffer_capacity_bytes = options.buffer_capacity_bytes
        buffer_policy = options.buffer_policy
        record_operations = options.record_operations
        sanitize = options.sanitize
        fault_plan = options.fault_plan
        retransmit_timeout = options.retransmit_timeout
        max_retransmits = (
            12 if options.max_retransmits is None else options.max_retransmits
        )
        batch_control = options.batch_control
        # Provenance needs the causal DAG to certify replays, so
        # recording implies causal tracing (reflected in the log header).
        causal_trace = options.causal_trace or options.provenance is not None
        telemetry_sinks = options.telemetry_sinks
        telemetry_interval = options.telemetry_interval
        require(buffer_policy in ("error", "block"), "buffer_policy: 'error' or 'block'")
        self.config = parse_config(config) if isinstance(config, str) else config
        self.config.validate()
        self.preset = preset
        self.buddy_help = buddy_help
        self.rng = RngRegistry(seed=seed)
        #: Provenance recorder (opt-in).  ``None`` keeps every hot-path
        #: hook to one attribute check per event.
        self._prov = None
        if options.provenance is not None:
            # Imported lazily: the core stays importable without the
            # obs package and pays nothing when recording is off.
            from repro.obs.prov import ProvenanceRecorder

            self._prov = ProvenanceRecorder(options.provenance)
            # Installed before any subsystem opens a stream, so every
            # draw of the run lands in the log.
            self.rng.set_recorder(self._prov.on_rng)
        self.tracer = tracer if tracer is not None else NullTracer()
        if sanitize is None:
            env = os.environ.get("REPRO_SANITIZE", "")
            if env in ("", "0"):
                sanitize = False
            elif env == "report":
                sanitize = "report"
            else:  # "1", "strict", or any other opt-in value
                sanitize = "strict"
        require(
            sanitize in (False, True, "strict", "report"),
            "sanitize: True/'strict', 'report', or False",
        )
        #: The online sanitizer, when enabled (findings in ``.report``).
        self.sanitizer = None
        if sanitize:
            # Imported lazily: the core stays importable without the
            # analysis package and pays nothing when sanitizing is off.
            from repro.analysis.sanitizer import ProtocolSanitizer

            self.sanitizer = ProtocolSanitizer(self.config, strict=sanitize != "report")
            self.tracer = self.sanitizer.wrap_tracer(self.tracer)
        self.buffer_capacity_bytes = buffer_capacity_bytes
        self.buffer_policy = buffer_policy
        #: Poll interval while stalled on a full buffer.
        self.backpressure_poll = 1.0e-4
        #: Optional Property-1 operation log (see record_operations).
        self.operation_log: OperationLog | None = (
            OperationLog() if record_operations else None
        )
        self.world = DesWorld(
            latency=preset.network.latency,
            bandwidth=preset.network.bandwidth,
            congestion=preset.network.congestion,
            seed=seed,
            fault_plan=fault_plan,
        )
        self.fault_plan = fault_plan
        if self._prov is not None:
            self.world.rng.set_recorder(self._prov.on_rng)
            fault_rngs = getattr(self.world.network, "_rngs", None)
            if fault_rngs is not None:
                fault_rngs.set_recorder(self._prov.on_rng)
        if fault_plan is not None:
            # The faulty network narrates drops/dups/delays into the
            # same (possibly sanitizer-wrapped) tracer as the protocol.
            self.world.network.tracer = self.tracer
        #: Resilient mode: relaxed ordering + idempotent reps + (when a
        #: timeout applies) importer-side retransmission.
        self.resilient = fault_plan is not None or retransmit_timeout is not None
        self.strict_order = not self.resilient
        #: Which match engine every exporter process uses (validated by
        #: ``RunOptions.__post_init__``; decisions are backend-independent).
        self.match_backend = options.match_backend
        require_positive(max_retransmits, "max_retransmits")
        self.max_retransmits = max_retransmits
        if retransmit_timeout is not None:
            require_positive(retransmit_timeout, "retransmit_timeout")
            self._rto: float | None = retransmit_timeout
        elif fault_plan is not None:
            # Comfortably above one fault-free round trip plus the worst
            # jitter/reorder hold-back, so spurious retransmissions stay
            # rare while lost requests still recover quickly.
            lat = preset.network.latency
            self._rto = max(
                1e-3,
                8.0
                * (
                    lat
                    + fault_plan.delay_jitter
                    + fault_plan.effective_reorder_delay(lat)
                ),
            )
        else:
            self._rto = None
        #: Resilience counters (reported by the chaos benchmark).
        self.retransmissions = 0
        self.dup_discards = 0
        #: Modelled framework traffic, split by plane kind.  Control
        #: bytes include every retransmitted/duplicated control message
        #: at full CTL_NBYTES — the DES timing model charges them all.
        self.ctl_messages = 0
        self.ctl_bytes = 0
        self.data_messages = 0
        self.data_bytes = 0
        #: Control-plane frame batching (see class docstring).
        self.batch_control = batch_control
        self.frames_sent = 0
        self.framed_messages = 0
        self._wire_seq = 0
        #: Causal tracing (opt-in).  ``None`` keeps the hot path to a
        #: single attribute check per send.
        self.causal: CausalLog | None = CausalLog() if causal_trace else None
        self._causal_req: dict[tuple[str, float, int], TraceContext] = {}
        self._causal_resp: dict[tuple[str, float], list[int]] = {}
        self._causal_agg: dict[tuple[str, float], TraceContext] = {}
        self._causal_ans: dict[tuple[str, float], TraceContext] = {}
        #: Streaming telemetry (opt-in).  Sinks receive periodic
        #: snapshots from a dedicated simulation process.
        self.telemetry_sinks: tuple[Any, ...] = tuple(telemetry_sinks or ())
        require_positive(telemetry_interval, "telemetry_interval")
        self.telemetry_interval = telemetry_interval
        self.sim: Simulator = self.world.sim
        if self._prov is not None:
            # The hook is the recorder's list append — no indirection on
            # the kernel's heap branch beyond one attribute check.
            self.sim._sched_hook = self._prov.sched.append
        self._programs: dict[str, _ProgramRuntime] = {}
        self._connections: dict[str, _ConnRuntime] = {
            c.connection_id: _ConnRuntime(c) for c in self.config.connections
        }
        self._started = False

    # -- setup ------------------------------------------------------------
    def add_program(
        self,
        name: str,
        main: Callable[[ProcessContext], Generator[Event, Any, Any]] | None = None,
        regions: dict[str, RegionDef] | None = None,
        nprocs: int | None = None,
    ) -> _ProgramRuntime:
        """Register a program.

        *nprocs* defaults to the configuration file's process count.
        *regions* maps region names to :class:`RegionDef`; every region
        named by a connection endpoint of this program must appear.
        *main* is the per-process generator function (optional for
        passive programs driven by tests).
        """
        require(not self._started, "cannot add programs after run()")
        require(name not in self._programs, f"program {name!r} already added")
        spec = self.config.programs.get(name)
        if nprocs is None:
            if spec is None:
                raise ConfigError(
                    f"program {name!r} is not in the configuration; pass nprocs="
                )
            nprocs = spec.nprocs
        require_positive(nprocs, "nprocs")
        regions = dict(regions or {})
        for rname, rdef in regions.items():
            require(
                rdef.decomp.nprocs == nprocs,
                f"region {name}.{rname}: decomposition is over "
                f"{rdef.decomp.nprocs} ranks but the program has {nprocs}",
            )
        comms = self.world.create_program(name, nprocs)
        for r in range(nprocs):
            self.world.network.register(("ctl", name, r))
            self.world.network.register(("cpl", name, r))
        self.world.network.register(("rep", name))
        prog = _ProgramRuntime(name, nprocs, main, regions, comms)
        self._programs[name] = prog
        return prog

    def context(self, program: str, rank: int) -> ProcessContext:
        """The :class:`ProcessContext` of one process (after run() started)."""
        return self._programs[program].contexts[rank]

    # -- run ----------------------------------------------------------------
    def run(self, until: float | None = None) -> None:
        """Finalize the wiring and run the simulation."""
        if not self._started:
            self._finalize_setup()
        self.sim.run(until)

    def start(self) -> None:
        """Finalize the wiring without running (drive the clock yourself)."""
        if not self._started:
            self._finalize_setup()

    def _finalize_setup(self) -> None:
        self._started = True
        # Resolve connections: both endpoints must be registered with
        # matching region declarations (the paper's early detection of
        # incorrect couplings).
        for crt in self._connections.values():
            spec = crt.spec
            for side, ep in (("exporter", spec.exporter), ("importer", spec.importer)):
                prog = self._programs.get(ep.program)
                if prog is None:
                    raise ConfigError(
                        f"connection {crt.cid}: {side} program {ep.program!r} "
                        "was never added"
                    )
                if ep.region not in prog.regions:
                    raise ConfigError(
                        f"connection {crt.cid}: program {ep.program!r} does not "
                        f"declare region {ep.region!r}"
                    )
            crt.exp_def = self._programs[spec.exporter.program].regions[
                spec.exporter.region
            ]
            crt.imp_def = self._programs[spec.importer.program].regions[
                spec.importer.region
            ]
            if (
                crt.exp_def.decomp.global_shape
                != crt.imp_def.decomp.global_shape
            ):
                raise ConfigError(
                    f"connection {crt.cid}: exporter global shape "
                    f"{crt.exp_def.decomp.global_shape} != importer global shape "
                    f"{crt.imp_def.decomp.global_shape}"
                )
            transfer = crt.exp_def.effective_section().intersect(
                crt.imp_def.effective_section()
            )
            if transfer.is_empty:
                raise ConfigError(
                    f"connection {crt.cid}: the exporter and importer sections "
                    "do not overlap — nothing would ever be transferred"
                )
            crt.schedule = CommSchedule.build_cached(
                crt.exp_def.decomp, crt.imp_def.decomp, transfer
            )
            # Precompute the per-rank wire plans once: every export of
            # this connection reuses the same slice tuples, so the hot
            # path sends zero-copy views with no index arithmetic.
            itemsize = crt.exp_def.itemsize
            crt.send_plans = {
                r: tuple(
                    (
                        item.dst_rank,
                        item.region,
                        item.region.to_slices(
                            origin=crt.exp_def.decomp.local_region(r).lo
                        ),
                        item.region.size * itemsize,
                    )
                    for item in crt.schedule.sends_for(r)
                )
                for r in range(crt.exp_def.decomp.nprocs)
            }
            crt.recv_slices = {
                r: {
                    item.region: item.region.to_slices(
                        origin=crt.imp_def.decomp.local_region(r).lo
                    )
                    for item in crt.schedule.recvs_for(r)
                }
                for r in range(crt.imp_def.decomp.nprocs)
            }

        # Build reps, contexts, agents and mains.
        for prog in self._programs.values():
            exp_cids = [
                c.connection_id
                for c in self.config.connections
                if c.exporter.program == prog.name
            ]
            imp_cids = [
                c.connection_id
                for c in self.config.connections
                if c.importer.program == prog.name
            ]
            if exp_cids:
                prog.exp_rep = ExporterRep(
                    prog.name,
                    prog.nprocs,
                    exp_cids,
                    buddy_help=self.buddy_help,
                    strict_order=self.strict_order,
                )
                if self.sanitizer is not None:
                    prog.exp_rep = self.sanitizer.wrap_rep(prog.exp_rep)
            if imp_cids:
                prog.imp_rep = ImporterRep(prog.name, prog.nprocs, imp_cids)
                if self.sanitizer is not None:
                    prog.imp_rep = self.sanitizer.wrap_imp_rep(prog.imp_rep)
            prog.contexts = [
                ProcessContext(self, prog, r) for r in range(prog.nprocs)
            ]
            self.sim.process(self._rep_proc(prog), name=f"{prog.name}.rep")
            for r in range(prog.nprocs):
                self.sim.process(
                    self._agent_proc(prog.contexts[r]), name=f"{prog.name}.agent{r}"
                )
            if prog.main is not None:
                for r in range(prog.nprocs):
                    self.sim.process(
                        self._main_proc(prog.contexts[r]), name=f"{prog.name}.{r}"
                    )
        if self.telemetry_sinks:
            self.sim.process(self._telemetry_proc(), name="telemetry")
        if self._prov is not None:
            from repro.obs.prov import build_header

            self._prov.set_header(build_header(self, "des"))

    # -- network helpers ------------------------------------------------------
    def _stamp(self, payload: Any) -> Any:
        """Give *payload* a fresh wire sequence number if unstamped."""
        if getattr(payload, "seq", None) == -1:
            self._wire_seq += 1
            payload = dataclasses.replace(payload, seq=self._wire_seq)
        return payload

    def _net_send(self, src: Any, dst: Any, payload: Any, nbytes: int = _CTL_NBYTES) -> None:
        payload = self._stamp(payload)
        if isinstance(payload, _DataPiece):
            self.data_messages += 1
            self.data_bytes += nbytes
            plane = "data"
        else:
            self.ctl_messages += 1
            self.ctl_bytes += nbytes
            plane = "ctl"
        if self._prov is not None:
            self._prov.on_wire(
                self.sim.now,
                getattr(payload, "seq", -1),
                src,
                dst,
                type(payload).__name__,
                plane,
                nbytes,
                getattr(payload, "trace", None),
            )
        self.world.network.send(src, dst, payload, nbytes=nbytes)

    def _flush_frames(
        self, src: Any, out: list[tuple[Any, Any, int]]
    ) -> None:
        """Send collected ``(dst, payload, nbytes)`` control sends as frames.

        Sends to the same destination mailbox coalesce into one
        :class:`~repro.core.wire.Frame` (members individually stamped so
        receiver-side dedup is unchanged); singletons go out bare.
        """
        by_dst: dict[Any, list[tuple[Any, int]]] = {}
        for dst, payload, nbytes in out:
            by_dst.setdefault(dst, []).append((payload, nbytes))
        for dst, entries in by_dst.items():
            if len(entries) == 1:
                payload, nbytes = entries[0]
                self._net_send(src, dst, payload, nbytes=nbytes)
                continue
            members = tuple(self._stamp(p) for p, _ in entries)
            total = _frame_nbytes(sum(n for _, n in entries))
            self.frames_sent += 1
            self.framed_messages += len(members)
            self._net_send(
                src, dst, _Frame(messages=members, nbytes=total), nbytes=total
            )

    def _cpl_mailbox(self, program: str, rank: int):
        return self.world.network.mailbox(("cpl", program, rank))

    # -- causal tracing -------------------------------------------------------
    def _causal_child(
        self,
        name: str,
        who: str,
        cause: TraceContext | None,
        cid: str,
        request_ts: float,
        extra_parents: tuple[int, ...] = (),
        **attrs: Any,
    ) -> TraceContext:
        """Record a span caused by *cause* (or rooted at the request key)."""
        assert self.causal is not None
        tid = (
            cause.trace_id
            if cause is not None
            else self.causal.trace_for(cid, request_ts)
        )
        parents = (() if cause is None else (cause.span_id,)) + tuple(extra_parents)
        return self.causal.record(
            tid,
            name,
            who,
            self.sim.now,
            parents=parents,
            connection=cid,
            request=request_ts,
            **attrs,
        )

    # -- data plane ----------------------------------------------------------------
    def _send_pieces(self, ctx: ProcessContext, region: str, cid: str, m: float) -> None:
        """Transfer this rank's scheduled pieces of the matched object."""
        crt = self._connections[cid]
        spec = crt.spec
        schedule = crt.schedule
        assert schedule is not None and crt.exp_def is not None
        st = ctx.export_states[region]
        if not st.buffer.has(m):
            if st.buffer.was_sent(m):
                # Already transferred (a retransmission-driven re-send
                # by the agent can beat this call and evict the entry);
                # the importer deduplicates pieces, nothing to do.
                return
            raise FrameworkError(
                f"{ctx.who}: match @{m:g} of {cid} is no longer buffered — "
                "pipelined imports combined with control-message loss can "
                "evict a pending match (see docs/resilience.md)"
            )
        entry = st.buffer.get(m)
        if not entry.sent:
            st.buffer.mark_sent(m)
        payload = entry.payload
        imp_prog = spec.importer.program
        src_addr = ("cpl", ctx.program, ctx.rank)
        # Zero-copy: each piece is a view into the buffered payload
        # (never mutated after buffering), selected by the slice tuple
        # precomputed at finalize time.
        for dst_rank, piece_region, slices, nbytes in crt.send_plans.get(ctx.rank, ()):
            data = payload[slices] if payload is not None else None
            self._net_send(
                src_addr,
                ("cpl", imp_prog, dst_rank),
                _DataPiece(
                    connection_id=cid,
                    match_ts=m,
                    src_rank=ctx.rank,
                    region=piece_region,
                    data=data,
                    nbytes=nbytes,
                ),
                nbytes=nbytes,
            )
        if self.tracer.enabled:
            self.tracer.record(
                tracing.EXPORT_SEND, ctx.who, self.sim.now, timestamp=m
            )

    def _send_response(
        self,
        ctx: ProcessContext,
        cid: str,
        response: MatchResponse,
        out: list[tuple[Any, Any, int]] | None = None,
    ) -> None:
        if self.tracer.enabled:
            self.tracer.record(
                tracing.REQUEST_REPLY,
                ctx.who,
                self.sim.now,
                cid=cid,
                request=response.request_ts,
                answer=str(response.kind),
                latest=(None if response.latest_export_ts == float("-inf")
                        else response.latest_export_ts),
            )
        tr: TraceContext | None = None
        if self.causal is not None:
            tr = self._causal_child(
                "match",
                ctx.who,
                ctx._causal_fwd.get((cid, response.request_ts)),
                cid,
                response.request_ts,
                kind=str(response.kind),
                rank=ctx.rank,
            )
        if self._prov is not None:
            self._prov.on_match(
                self.sim.now,
                cid,
                ctx.rank,
                response.request_ts,
                str(response.kind),
                response.latest_export_ts,
                self.match_backend,
            )
        payload = _ProcResponse(
            connection_id=cid, rank=ctx.rank, response=response, trace=tr
        )
        if out is None:
            self._net_send(("cpl", ctx.program, ctx.rank), ("rep", ctx.program), payload)
        else:
            out.append((("rep", ctx.program), payload, _CTL_NBYTES))

    # -- processes ---------------------------------------------------------------
    def _region_of_connection(self, prog: str, cid: str) -> str:
        spec = self._connections[cid].spec
        require(spec.exporter.program == prog, f"{cid} does not export from {prog}")
        return spec.exporter.region

    def _seq_duplicate(self, msg: Any, seen: set[int], who: str) -> bool:
        """Wire-level duplicate detection by sequence number."""
        seq = getattr(msg, "seq", -1)
        if seq < 0:
            return False
        if seq in seen:
            self.dup_discards += 1
            if self.tracer.enabled:
                self.tracer.record(
                    tracing.DUP_DISCARD,
                    who,
                    self.sim.now,
                    msg=type(msg).__name__,
                    seq=seq,
                )
            return True
        seen.add(seq)
        return False

    def _agent_proc(self, ctx: ProcessContext) -> Generator[Event, Any, None]:
        """The framework service agent of one application process."""
        box = self.world.network.mailbox(("ctl", ctx.program, ctx.rank))
        free_time = self.preset.memory.free_time
        seen: set[int] = set()
        while True:
            delivery: Delivery = yield box.get()
            deliveries = [delivery]
            if self.batch_control:
                deliveries.extend(box.drain())
            out: list[tuple[Any, Any, int]] | None = (
                [] if self.batch_control else None
            )
            for delivery in deliveries:
                unit = delivery.payload
                members = unit.messages if isinstance(unit, _Frame) else (unit,)
                for msg in members:
                    if self._seq_duplicate(msg, seen, f"{ctx.who}.agent"):
                        continue
                    if isinstance(msg, _FwdRequest):
                        region = self._region_of_connection(ctx.program, msg.connection_id)
                        st = ctx.export_states[region]
                        if self.tracer.enabled:
                            self.tracer.record(
                                tracing.REQUEST_RECV,
                                ctx.who,
                                self.sim.now,
                                cid=msg.connection_id,
                                request=msg.request_ts,
                            )
                        if self.causal is not None:
                            ctx._causal_fwd[(msg.connection_id, msg.request_ts)] = (
                                msg.trace
                            )
                        outcome = st.on_request(msg.connection_id, msg.request_ts)
                        self._send_response(ctx, msg.connection_id, outcome.response, out)
                        if outcome.applied is not None and outcome.applied.send_now is not None:
                            self._send_pieces(
                                ctx, region, msg.connection_id, outcome.applied.send_now
                            )
                        yield from self._agent_evict(ctx, st, free_time)
                    elif isinstance(msg, _BuddyMsg):
                        region = self._region_of_connection(ctx.program, msg.connection_id)
                        st = ctx.export_states[region]
                        if self.tracer.enabled:
                            self.tracer.record(
                                tracing.BUDDY_RECV,
                                ctx.who,
                                self.sim.now,
                                cid=msg.connection_id,
                                request=msg.answer.request_ts,
                                answer="YES" if msg.answer.is_match else "NO",
                                match=msg.answer.matched_ts
                                if msg.answer.matched_ts is not None
                                else msg.answer.request_ts,
                            )
                        recv_tr: TraceContext | None = None
                        if self.causal is not None:
                            recv_tr = self._causal_child(
                                "buddy_recv",
                                ctx.who,
                                msg.trace,
                                msg.connection_id,
                                msg.answer.request_ts,
                                rank=ctx.rank,
                            )
                        # Arrival bookkeeping is unconditional (one dict
                        # write, off the hot path): buddy-help lead times
                        # are reported even without causal tracing.
                        ctx._buddy_arrivals[
                            (msg.connection_id, msg.answer.request_ts)
                        ] = (self.sim.now, recv_tr)
                        applied = st.on_buddy_answer(msg.connection_id, msg.answer)
                        ctx.stats.buddy_answers_received += 1
                        if applied.send_now is not None:
                            self._send_pieces(ctx, region, msg.connection_id, applied.send_now)
                        yield from self._agent_evict(ctx, st, free_time)
                    else:
                        raise FrameworkError(f"agent received unexpected message {msg!r}")
            if out:
                self._flush_frames(("cpl", ctx.program, ctx.rank), out)

    def _agent_evict(
        self, ctx: ProcessContext, st: RegionExportState, free_time: float
    ) -> Generator[Event, Any, None]:
        evicted = st.collect_evictions()
        if evicted:
            if self.tracer.enabled:
                self.tracer.record(
                    tracing.BUFFER_REMOVE,
                    ctx.who,
                    self.sim.now,
                    timestamp=evicted[-1].ts,
                    low=evicted[0].ts,
                    high=evicted[-1].ts,
                )
            yield self.sim.timeout(free_time * len(evicted))

    def _rep_proc(self, prog: _ProgramRuntime) -> Generator[Event, Any, None]:
        """The program's representative process."""
        box = self.world.network.mailbox(("rep", prog.name))
        seen: set[int] = set()
        while True:
            delivery: Delivery = yield box.get()
            deliveries = [delivery]
            if self.batch_control:
                # Per-tick coalescing: everything already queued behind
                # this delivery arrived no later than now, so handle the
                # whole backlog in one go and frame the combined fan-out.
                deliveries.extend(box.drain())
            out: list[tuple[Any, Any, int]] | None = (
                [] if self.batch_control else None
            )
            for delivery in deliveries:
                unit = delivery.payload
                # An incoming frame unpacks to its members; each member
                # is deduplicated and processed exactly as a bare arrival.
                members = unit.messages if isinstance(unit, _Frame) else (unit,)
                for msg in members:
                    if self._seq_duplicate(msg, seen, f"{prog.name}.rep"):
                        continue
                    self._rep_handle(prog, msg, out)
            if out:
                self._flush_frames(("rep", prog.name), out)

    def _rep_handle(
        self,
        prog: _ProgramRuntime,
        msg: Any,
        out: list[tuple[Any, Any, int]] | None,
    ) -> None:
        """Dispatch one rep message to the right state machine."""
        cause: TraceContext | None = getattr(msg, "trace", None)
        if isinstance(msg, _ReqToExpRep):
            assert prog.exp_rep is not None
            directives = prog.exp_rep.on_request(msg.connection_id, msg.request_ts)
        elif isinstance(msg, _ProcResponse):
            assert prog.exp_rep is not None
            if self.causal is not None and cause is not None:
                # The aggregate span joins every per-process match span
                # gathered for this request, not just the finalizing one.
                self._causal_resp.setdefault(
                    (msg.connection_id, msg.response.request_ts), []
                ).append(cause.span_id)
            directives = prog.exp_rep.on_response(
                msg.connection_id, msg.rank, msg.response
            )
        elif isinstance(msg, _ImpProcRequest):
            assert prog.imp_rep is not None
            directives = prog.imp_rep.on_process_request(
                msg.connection_id, msg.request_ts, msg.rank
            )
        elif isinstance(msg, _AnswerToImpRep):
            assert prog.imp_rep is not None
            if self.causal is not None and cause is not None:
                self._causal_ans[(msg.connection_id, msg.answer.request_ts)] = cause
            directives = prog.imp_rep.on_answer(msg.connection_id, msg.answer)
        else:
            raise FrameworkError(f"rep received unexpected message {msg!r}")
        for d in directives:
            self._execute_directive(prog, d, out, cause=cause)

    def _execute_directive(
        self,
        prog: _ProgramRuntime,
        d: Any,
        out: list[tuple[Any, Any, int]] | None = None,
        cause: TraceContext | None = None,
    ) -> None:
        """Send the wire message(s) a rep directive implies.

        With *out* given (batch mode), rep/ctl-plane sends are collected
        for per-destination framing by the caller; data-plane deliveries
        (``cpl`` mailboxes) always go out bare — importer mailboxes match
        on member payload types.  *cause* is the trace context of the
        rep message that produced the directive (causal tracing only).
        """
        rep_addr = ("rep", prog.name)
        rep_who = f"{prog.name}.rep"

        def send_ctl(dst: Any, payload: Any) -> None:
            if out is None:
                self._net_send(rep_addr, dst, payload)
            else:
                out.append((dst, payload, _CTL_NBYTES))

        if isinstance(d, ForwardRequest):
            tr: TraceContext | None = None
            if self.causal is not None:
                tr = self._causal_child(
                    "fan_out", rep_who, cause, d.connection_id, d.request_ts,
                    rank=d.rank,
                )
            send_ctl(
                ("ctl", prog.name, d.rank),
                _FwdRequest(
                    connection_id=d.connection_id,
                    request_ts=d.request_ts,
                    trace=tr,
                ),
            )
        elif isinstance(d, AnswerImporter):
            imp_prog = self._connections[d.connection_id].spec.importer.program
            if self.tracer.enabled:
                self.tracer.record(
                    tracing.REP_FINALIZE,
                    rep_who,
                    self.sim.now,
                    request=d.answer.request_ts,
                    answer=str(d.answer.kind),
                )
            tr = None
            if self.causal is not None:
                key = (d.connection_id, d.answer.request_ts)
                prior = self._causal_agg.get(key)
                extra = tuple(self._causal_resp.pop(key, ()))
                if prior is not None:
                    extra = (prior.span_id,) + extra
                attrs: dict[str, Any] = {"kind": str(d.answer.kind)}
                finfo = getattr(prog.exp_rep, "finalize_info", None)
                info = finfo(d.connection_id, d.answer.request_ts) if finfo else None
                if info is not None:
                    attrs["case"], attrs["finalizing_rank"] = info
                if prior is not None:
                    attrs["cached"] = True
                tr = self._causal_child(
                    "aggregate", rep_who, cause, d.connection_id,
                    d.answer.request_ts, extra_parents=extra, **attrs,
                )
                self._causal_agg.setdefault(key, tr)
            send_ctl(
                ("rep", imp_prog),
                _AnswerToImpRep(
                    connection_id=d.connection_id, answer=d.answer, trace=tr
                ),
            )
        elif isinstance(d, BuddyHelp):
            if self.tracer.enabled:
                self.tracer.record(
                    tracing.BUDDY_SEND,
                    rep_who,
                    self.sim.now,
                    request=d.answer.request_ts,
                    answer="YES" if d.answer.is_match else "NO",
                    match=d.answer.matched_ts
                    if d.answer.matched_ts is not None
                    else d.answer.request_ts,
                )
            tr = None
            if self.causal is not None:
                agg = self._causal_agg.get((d.connection_id, d.answer.request_ts))
                tr = self._causal_child(
                    "buddy_notify",
                    rep_who,
                    agg if agg is not None else cause,
                    d.connection_id,
                    d.answer.request_ts,
                    rank=d.rank,
                )
            send_ctl(
                ("ctl", prog.name, d.rank),
                _BuddyMsg(connection_id=d.connection_id, answer=d.answer, trace=tr),
            )
        elif isinstance(d, ForwardToExporter):
            exp_prog = self._connections[d.connection_id].spec.exporter.program
            tr = None
            if self.causal is not None:
                tr = self._causal_child(
                    "rep_forward", rep_who, cause, d.connection_id, d.request_ts
                )
            send_ctl(
                ("rep", exp_prog),
                _ReqToExpRep(
                    connection_id=d.connection_id,
                    request_ts=d.request_ts,
                    trace=tr,
                ),
            )
        elif isinstance(d, DeliverAnswer):
            tr = None
            if self.causal is not None:
                ans = self._causal_ans.get((d.connection_id, d.answer.request_ts))
                extra = () if ans is None else (ans.span_id,)
                tr = self._causal_child(
                    "answer", rep_who, cause, d.connection_id,
                    d.answer.request_ts, extra_parents=extra, rank=d.rank,
                )
            self._net_send(
                rep_addr,
                ("cpl", prog.name, d.rank),
                _AnswerToProc(
                    connection_id=d.connection_id, answer=d.answer, trace=tr
                ),
            )
        else:  # pragma: no cover - defensive
            raise FrameworkError(f"unknown directive {d!r}")

    def _telemetry_proc(self) -> Generator[Event, Any, None]:
        """Periodic telemetry flush; ends with the last user main.

        The loop must terminate (the DES scheduler otherwise never runs
        dry), so it watches the alive count of every main-bearing
        program and emits one ``final`` snapshot when the last exits.
        """
        # Imported lazily: the core stays importable without obs.stream
        # and pays nothing when streaming is off.
        from repro.obs.stream import emit_snapshot

        def running() -> bool:
            mains = [p for p in self._programs.values() if p.main is not None]
            return any(p.alive > 0 for p in mains) if mains else False

        emitted_final = False
        while running():
            yield self.sim.timeout(self.telemetry_interval)
            emitted_final = not running()
            emit_snapshot(self, self.telemetry_sinks, final=emitted_final)
        if not emitted_final:
            emit_snapshot(self, self.telemetry_sinks, final=True)

    def _main_proc(self, ctx: ProcessContext) -> Generator[Event, Any, None]:
        """User main wrapped with end-of-stream bookkeeping."""
        assert ctx._program.main is not None
        try:
            yield from ctx._program.main(ctx)
        finally:
            ctx._program.alive -= 1
            for region, st in ctx.export_states.items():
                responses, post_sends = st.close()
                for cid, m in post_sends:
                    self._send_pieces(ctx, region, cid, m)
                for cid, response in responses:
                    self._send_response(ctx, cid, response)

    # -- reporting -------------------------------------------------------------
    def check_property1(self, raise_on_violation: bool = True) -> list[str]:
        """Verify Property 1 over the recorded operation log.

        Requires ``record_operations=True`` at construction.  Returns
        violation descriptions (empty when conformant); raises
        :class:`~repro.core.exceptions.PropertyViolationError` by
        default when any are found.
        """
        require(
            self.operation_log is not None,
            "construct CoupledSimulation(record_operations=True) to check Property 1",
        )
        assert self.operation_log is not None
        return check_property1(
            self.operation_log, raise_on_violation=raise_on_violation
        )

    def export_series(self, program: str, rank: int) -> list[float]:
        """The Figure-4 y-series of one process: per-export call cost."""
        return self.context(program, rank).stats.export_times()

    def buffer_stats(self, program: str, rank: int, region: str):
        """Buffer counters (Eq. 1-2 ledgers) of one process's region."""
        return self.context(program, rank).export_states[region].buffer.stats()
