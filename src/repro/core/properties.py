"""Offline Property-1 conformance checking.

Property 1 (paper Section 4): if one process of a program transfers
(exports or imports) data with timestamps ``t_1, ..., t_n``, every
other process of that program must transfer the same timestamps in the
same order.  The runtime detects violations *reactively* (inconsistent
responses reach the rep); this module checks recorded operation logs
*exhaustively* after a run — used by the integration tests and
available to users as a debugging aid.

Divergences are reported *per rank*: every rank that deviates from the
reference sequence contributes its first point of divergence, so one
:class:`~repro.core.exceptions.PropertyViolationError` shows the whole
damage picture at once instead of the first mismatch found.  The same
per-rank formatting (:func:`format_per_rank`) is reused by the online
protocol sanitizer (:mod:`repro.analysis.sanitizer`) when it reports
illegal aggregate mixtures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.exceptions import PropertyViolationError


@dataclass(frozen=True)
class Operation:
    """One logged collective-relevant operation of one process."""

    kind: str  # "export" | "import" | "transfer"
    region: str
    ts: float


@dataclass
class OperationLog:
    """Per-program, per-rank operation records."""

    #: program -> rank -> ordered operations
    records: dict[str, dict[int, list[Operation]]] = field(default_factory=dict)

    def log(self, program: str, rank: int, kind: str, region: str, ts: float) -> None:
        """Append one operation for ``program`` rank ``rank``."""
        self.records.setdefault(program, {}).setdefault(rank, []).append(
            Operation(kind=kind, region=region, ts=ts)
        )

    def sequence(self, program: str, rank: int) -> list[Operation]:
        """The recorded sequence for one process (empty if none)."""
        return list(self.records.get(program, {}).get(rank, []))

    def programs(self) -> list[str]:
        """Programs with at least one record."""
        return sorted(self.records)


@dataclass(frozen=True)
class Divergence:
    """One rank's first departure from the reference sequence."""

    program: str
    rank: int
    ref_rank: int
    index: int
    #: What the rank logged at *index* (``None`` beyond its sequence —
    #: impossible here since prefixes are conformant, kept for clarity).
    got: Operation | None
    #: What the reference logged at *index* (``None`` when the rank
    #: logged *extra* operations beyond the reference).
    expected: Operation | None

    def describe(self) -> str:
        """Human description of this single divergence."""
        if self.expected is None:
            return (
                f"logged extra operation {self.got} at position {self.index} "
                f"beyond rank {self.ref_rank}'s sequence"
            )
        return (
            f"operation {self.index} is {self.got}, but rank {self.ref_rank} "
            f"logged {self.expected}"
        )


def format_per_rank(header: str, per_rank: Mapping[int, str]) -> str:
    """Render per-rank diagnostics as an aligned multi-line block.

    Shared formatting between the offline checker and the online
    sanitizer: a header line followed by one ``rank N: ...`` line per
    rank, in rank order.
    """
    lines = [header]
    for rank in sorted(per_rank):
        lines.append(f"  rank {rank}: {per_rank[rank]}")
    return "\n".join(lines)


def find_divergences(
    log: OperationLog, programs: Iterable[str] | None = None
) -> list[Divergence]:
    """All ranks' first divergences from their program's reference.

    The reference is the longest recorded sequence of the program
    (slower processes legitimately lag, so a shorter sequence that is a
    prefix of the reference is conformant).  Every non-reference rank
    contributes at most one divergence — its first.
    """
    divergences: list[Divergence] = []
    names = list(programs) if programs is not None else log.programs()
    for program in names:
        ranks = log.records.get(program, {})
        if len(ranks) < 2:
            continue
        ref_rank = max(sorted(ranks), key=lambda r: len(ranks[r]))
        reference = ranks[ref_rank]
        for rank, ops in sorted(ranks.items()):
            if rank == ref_rank:
                continue
            for i, op in enumerate(ops):
                if i >= len(reference):
                    divergences.append(
                        Divergence(
                            program=program,
                            rank=rank,
                            ref_rank=ref_rank,
                            index=i,
                            got=op,
                            expected=None,
                        )
                    )
                    break
                if op != reference[i]:
                    divergences.append(
                        Divergence(
                            program=program,
                            rank=rank,
                            ref_rank=ref_rank,
                            index=i,
                            got=op,
                            expected=reference[i],
                        )
                    )
                    break
    return divergences


def check_property1(
    log: OperationLog,
    programs: Iterable[str] | None = None,
    raise_on_violation: bool = True,
) -> list[str]:
    """Verify that every program's processes logged identical sequences.

    Returns a list of human-readable violation descriptions — one per
    divergent rank, each describing that rank's *first* divergence —
    empty when conformant.  With ``raise_on_violation`` (default) a
    non-empty result raises :class:`PropertyViolationError` whose
    message lists *all* divergent ranks program by program.
    """
    divergences = find_divergences(log, programs)
    violations = [f"{d.program}: rank {d.rank} {d.describe()}" for d in divergences]
    if violations and raise_on_violation:
        by_program: dict[str, dict[int, str]] = {}
        for d in divergences:
            by_program.setdefault(d.program, {})[d.rank] = d.describe()
        blocks = [
            format_per_rank(
                f"{program}: {len(per_rank)} rank(s) diverge (Property 1 violated):",
                per_rank,
            )
            for program, per_rank in sorted(by_program.items())
        ]
        raise PropertyViolationError("\n".join(blocks))
    return violations
