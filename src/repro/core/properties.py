"""Offline Property-1 conformance checking.

Property 1 (paper Section 4): if one process of a program transfers
(exports or imports) data with timestamps ``t_1, ..., t_n``, every
other process of that program must transfer the same timestamps in the
same order.  The runtime detects violations *reactively* (inconsistent
responses reach the rep); this module checks recorded operation logs
*exhaustively* after a run — used by the integration tests and
available to users as a debugging aid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.exceptions import PropertyViolationError


@dataclass(frozen=True)
class Operation:
    """One logged collective-relevant operation of one process."""

    kind: str  # "export" | "import" | "transfer"
    region: str
    ts: float


@dataclass
class OperationLog:
    """Per-program, per-rank operation records."""

    #: program -> rank -> ordered operations
    records: dict[str, dict[int, list[Operation]]] = field(default_factory=dict)

    def log(self, program: str, rank: int, kind: str, region: str, ts: float) -> None:
        """Append one operation for ``program`` rank ``rank``."""
        self.records.setdefault(program, {}).setdefault(rank, []).append(
            Operation(kind=kind, region=region, ts=ts)
        )

    def sequence(self, program: str, rank: int) -> list[Operation]:
        """The recorded sequence for one process (empty if none)."""
        return list(self.records.get(program, {}).get(rank, []))

    def programs(self) -> list[str]:
        """Programs with at least one record."""
        return sorted(self.records)


def check_property1(
    log: OperationLog,
    programs: Iterable[str] | None = None,
    raise_on_violation: bool = True,
) -> list[str]:
    """Verify that every program's processes logged identical sequences.

    Returns a list of human-readable violation descriptions (empty when
    conformant).  With ``raise_on_violation`` (default) a non-empty
    result raises :class:`PropertyViolationError` instead.

    Processes may be at different *positions* in the sequence when the
    run is cut off (slower processes lag); therefore a shorter sequence
    that is a prefix of the longest one is conformant — only genuine
    mismatches are violations.
    """
    violations: list[str] = []
    names = list(programs) if programs is not None else log.programs()
    for program in names:
        ranks = log.records.get(program, {})
        if len(ranks) < 2:
            continue
        # Use the longest sequence as the reference.
        ref_rank = max(ranks, key=lambda r: len(ranks[r]))
        reference = ranks[ref_rank]
        for rank, ops in sorted(ranks.items()):
            if rank == ref_rank:
                continue
            for i, op in enumerate(ops):
                if i >= len(reference):
                    violations.append(
                        f"{program}: rank {rank} logged extra operation {op} "
                        f"beyond rank {ref_rank}'s sequence"
                    )
                    break
                if op != reference[i]:
                    violations.append(
                        f"{program}: rank {rank} operation {i} is {op}, but "
                        f"rank {ref_rank} logged {reference[i]}"
                    )
                    break
    if violations and raise_on_violation:
        raise PropertyViolationError("; ".join(violations))
    return violations
