"""The per-process framework buffer, with Eq. (1)-(2) accounting.

Every exported data object that *might* still be requested must be kept
in a framework buffer (one memcpy on export, one free on eviction —
paper Section 4.1).  The paper quantifies the waste:

* ``T_i`` (Eq. 1): the buffering time spent, within the acceptable
  region ``R_i`` of request *i*, on objects that were **not** the final
  match — every candidate except the last.
* ``T_ub`` (Eq. 2): ``Σ_i T_i`` over all requests.

:class:`BufferManager` tracks live entries and accrues exactly these
quantities.  It is deliberately policy-free: *when* to buffer, free or
send is decided by :mod:`repro.core.exporter`; the manager only records
what happened and what it cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.core.exceptions import FrameworkError
from repro.util.validation import require, require_non_negative


@dataclass
class BufferEntry:
    """One buffered data object (a timestamped local array copy).

    Attributes
    ----------
    ts:
        Simulation timestamp of the object.
    nbytes:
        Buffered payload size.
    memcpy_cost:
        The (virtual) time the buffering memcpy took.
    window:
        Index of the request window the object was a candidate for at
        buffering time, or ``None`` when it was buffered "blind"
        (no open request covered it).
    sent:
        Whether the object was transferred to an importer.
    payload:
        Optional reference to the actual buffered data (the Figure-4
        micro-benchmark buffers cost-only; coupled runs keep the data).
    """

    ts: float
    nbytes: int
    memcpy_cost: float
    window: int | None = None
    sent: bool = False
    payload: object | None = None


@dataclass(frozen=True)
class BufferStats:
    """Immutable snapshot of a :class:`BufferManager`'s counters."""

    buffered_count: int
    sent_count: int
    freed_unsent_count: int
    live_count: int
    live_bytes: int
    peak_bytes: int
    total_memcpy_time: float
    unnecessary_total_time: float
    unnecessary_in_region_time: float
    t_by_window: dict[int, float]

    @property
    def t_ub(self) -> float:
        """Eq. (2): total in-region unnecessary buffering time."""
        return self.unnecessary_in_region_time


class BufferManager:
    """Timestamped buffer pool for one process's exported region.

    Entries are keyed by timestamp (unique because export timestamps
    strictly increase).  An optional *capacity_bytes* bound models the
    finite buffer space the paper's conclusion lists as future work;
    exceeding it raises :class:`FrameworkError`.
    """

    def __init__(self, capacity_bytes: int | None = None) -> None:
        if capacity_bytes is not None:
            require(capacity_bytes > 0, "capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: dict[float, BufferEntry] = {}
        self._sent_ts: set[float] = set()
        self._live_bytes = 0
        # -- counters ----------------------------------------------------
        self.buffered_count = 0
        self.sent_count = 0
        self.freed_unsent_count = 0
        self.peak_bytes = 0
        self.total_memcpy_time = 0.0
        self.unnecessary_total_time = 0.0
        self.unnecessary_in_region_time = 0.0
        #: Eq. (1) ledger: window index -> accumulated ``T_i``.
        self.t_by_window: dict[int, float] = {}

    # -- inspection --------------------------------------------------------
    @property
    def live_bytes(self) -> int:
        """Bytes currently buffered."""
        return self._live_bytes

    @property
    def live_count(self) -> int:
        """Number of currently buffered objects."""
        return len(self._entries)

    def timestamps(self) -> list[float]:
        """Buffered timestamps, ascending."""
        return sorted(self._entries)

    def has(self, ts: float) -> bool:
        """Whether an object with timestamp *ts* is buffered."""
        return ts in self._entries

    def was_sent(self, ts: float) -> bool:
        """Whether *ts* was ever transferred (survives freeing).

        Under retransmission an object can be re-sent by the agent and
        evicted while the export call that created it is still mid
        virtual-time charge; the runtime uses this record to treat the
        stale send as the duplicate it is instead of an error.
        """
        return ts in self._sent_ts

    def get(self, ts: float) -> BufferEntry:
        """The entry for *ts* (KeyError if absent)."""
        return self._entries[ts]

    def stats(self) -> BufferStats:
        """Snapshot of all counters."""
        return BufferStats(
            buffered_count=self.buffered_count,
            sent_count=self.sent_count,
            freed_unsent_count=self.freed_unsent_count,
            live_count=self.live_count,
            live_bytes=self._live_bytes,
            peak_bytes=self.peak_bytes,
            total_memcpy_time=self.total_memcpy_time,
            unnecessary_total_time=self.unnecessary_total_time,
            unnecessary_in_region_time=self.unnecessary_in_region_time,
            t_by_window=dict(self.t_by_window),
        )

    # -- mutation ------------------------------------------------------------
    def buffer(
        self,
        ts: float,
        nbytes: int,
        memcpy_cost: float,
        window: int | None = None,
        payload: object | None = None,
    ) -> BufferEntry:
        """Record that the object at *ts* was copied into the buffer."""
        require_non_negative(nbytes, "nbytes")
        require_non_negative(memcpy_cost, "memcpy_cost")
        require(ts not in self._entries, f"timestamp {ts} already buffered")
        if (
            self.capacity_bytes is not None
            and self._live_bytes + nbytes > self.capacity_bytes
        ):
            raise FrameworkError(
                f"buffer capacity exceeded: {self._live_bytes} + {nbytes} > "
                f"{self.capacity_bytes} bytes "
                "(the finite-buffer scenario of the paper's Section 6)"
            )
        entry = BufferEntry(
            ts=ts, nbytes=nbytes, memcpy_cost=memcpy_cost, window=window, payload=payload
        )
        self._entries[ts] = entry
        self._live_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self._live_bytes)
        self.buffered_count += 1
        self.total_memcpy_time += memcpy_cost
        return entry

    def attribute_window(self, low: float, high: float, window: int) -> int:
        """Assign *window* to unattributed entries with ts in [low, high].

        Called when a request arrives: objects buffered *before* the
        request (blind) that turn out to lie inside its acceptable
        region become that window's candidates, so Eq. (1) charges
        their eventual waste to ``T_window``.  Returns the number of
        entries attributed.
        """
        count = 0
        for ts, entry in self._entries.items():
            if entry.window is None and low <= ts <= high:
                entry.window = window
                count += 1
        return count

    def mark_sent(self, ts: float) -> BufferEntry:
        """Record that the buffered object at *ts* was transferred."""
        entry = self._entries[ts]
        entry.sent = True
        self._sent_ts.add(ts)
        self.sent_count += 1
        return entry

    def record_cost(self, ts: float, memcpy_cost: float) -> BufferEntry:
        """Overwrite the memcpy cost of a live entry.

        Used by the live (wall-clock) runtime, where the copy duration
        is only known *after* the buffering decision: the entry is
        created with a zero placeholder and the measured time recorded
        here, keeping the Eq. (1)-(2) ledgers exact.
        """
        require_non_negative(memcpy_cost, "memcpy_cost")
        entry = self._entries[ts]
        self.total_memcpy_time += memcpy_cost - entry.memcpy_cost
        entry.memcpy_cost = memcpy_cost
        return entry

    def free(self, ts: float) -> BufferEntry:
        """Release the object at *ts*; accrue waste if it was never sent.

        Freeing a never-sent object means its memcpy was unnecessary:
        the cost lands in ``unnecessary_total_time`` and — when it was
        an in-region candidate — in its window's ``T_i`` (Eq. 1).
        """
        entry = self._entries.pop(ts)
        self._live_bytes -= entry.nbytes
        if not entry.sent:
            self.freed_unsent_count += 1
            self.unnecessary_total_time += entry.memcpy_cost
            if entry.window is not None:
                self.unnecessary_in_region_time += entry.memcpy_cost
                self.t_by_window[entry.window] = (
                    self.t_by_window.get(entry.window, 0.0) + entry.memcpy_cost
                )
        return entry

    def free_below(
        self, threshold: float, keep: Iterable[float] = ()
    ) -> list[BufferEntry]:
        """Release every entry with ``ts < threshold`` not in *keep*.

        Returns the freed entries (ascending).  This is the eviction
        the paper shows as ``remove D@1.6, ..., D@14.6`` when a request
        reveals that old timestamps can never be matched.
        """
        require(not math.isnan(threshold), "threshold must be a number")
        kept = set(keep)
        doomed = sorted(ts for ts in self._entries if ts < threshold and ts not in kept)
        return [self.free(ts) for ts in doomed]

    def free_all(self) -> list[BufferEntry]:
        """Release everything (program shutdown)."""
        return [self.free(ts) for ts in sorted(self._entries)]

    def t_ub(self) -> float:
        """Eq. (2): current total of in-region unnecessary buffering time."""
        return self.unnecessary_in_region_time
