"""Representative ("rep") processes (paper Sections 3-4).

Each program runs one extra low-overhead control process.  The
exporter-side rep fans incoming requests out to the program's
processes, aggregates their MATCH/NO_MATCH/PENDING responses under the
five-legal-cases rule, answers the importer, and — when buddy-help is
enabled — forwards the final answer to its own still-PENDING processes
so they can skip future buffering.

The importer-side rep deduplicates the collective import requests of
its processes (one request crosses programs regardless of N importer
ranks) and broadcasts the final answer back to them.

Both classes are pure state machines: events in, *directives* out.
The runtime (:mod:`repro.core.coupler`) turns directives into
messages; the unit tests drive the machines directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.exceptions import ProtocolError, PropertyViolationError
from repro.match.aggregate import (
    CollectiveViolationError,
    aggregate_responses,
    classify_case,
)
from repro.match.result import FinalAnswer, MatchKind, MatchResponse
from repro.util.validation import require


# ---------------------------------------------------------------------------
# directives
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ForwardRequest:
    """Exporter rep → exporter process: evaluate this request."""

    rank: int
    connection_id: str
    request_ts: float


@dataclass(frozen=True)
class AnswerImporter:
    """Exporter rep → importer rep: the final answer."""

    connection_id: str
    answer: FinalAnswer


@dataclass(frozen=True)
class BuddyHelp:
    """Exporter rep → a (slow) exporter process: the final answer.

    This is the paper's optimization: the receiving process uses the
    answer to skip buffering data objects that can never be a match,
    even before those objects are generated.
    """

    rank: int
    connection_id: str
    answer: FinalAnswer


@dataclass(frozen=True)
class ForwardToExporter:
    """Importer rep → exporter rep: a deduplicated request."""

    connection_id: str
    request_ts: float


@dataclass(frozen=True)
class DeliverAnswer:
    """Importer rep → importer process: the final answer."""

    rank: int
    connection_id: str
    answer: FinalAnswer


Directive = (
    ForwardRequest | AnswerImporter | BuddyHelp | ForwardToExporter | DeliverAnswer
)


# ---------------------------------------------------------------------------
# exporter-side rep
# ---------------------------------------------------------------------------

@dataclass
class _ExpRequestState:
    request_ts: float
    responses: dict[int, MatchResponse] = field(default_factory=dict)
    definitive_ranks: set[int] = field(default_factory=set)
    finalized: FinalAnswer | None = None
    #: Which of the five legal cases the finalization hit, and whose
    #: response triggered it (Property 1: the first definitive one).
    #: Kept for causal tracing and post-hoc attribution.
    finalized_case: str | None = None
    finalizing_rank: int | None = None


class ExporterRep:
    """Aggregation and buddy-help dissemination for one exporting program.

    Parameters
    ----------
    program:
        Program name (for diagnostics).
    nprocs:
        Number of application processes in the program.
    connection_ids:
        The connections this program exports over.
    buddy_help:
        Whether to disseminate final answers to PENDING processes (the
        paper's optimization; disable for the baseline comparison).
    strict_order:
        When ``False`` (resilient runtimes), a repeated request
        timestamp is treated as a retransmission and re-answered
        idempotently — from the final-answer cache once finalized —
        instead of raising :class:`ProtocolError`.
    """

    def __init__(
        self,
        program: str,
        nprocs: int,
        connection_ids: list[str],
        buddy_help: bool = True,
        strict_order: bool = True,
    ) -> None:
        require(nprocs > 0, "nprocs must be positive")
        self.program = program
        self.nprocs = nprocs
        self.buddy_help = buddy_help
        self.strict_order = strict_order
        self._requests: dict[str, dict[float, _ExpRequestState]] = {
            cid: {} for cid in connection_ids
        }
        self._last_request_ts: dict[str, float] = {
            cid: -math.inf for cid in connection_ids
        }
        #: Counters for reporting.
        self.buddy_messages_sent = 0
        self.requests_seen = 0
        self.finalized_count = 0
        self.duplicate_requests = 0
        self.cached_answers_served = 0
        #: Which of the five legal aggregate cases each finalization
        #: hit (``all_match`` .. ``pending_no_match``); requests still
        #: open with only-PENDING responses are counted as
        #: ``all_pending`` by :meth:`aggregate_case_counts`.
        self.aggregate_cases: dict[str, int] = {}

    # -- events ------------------------------------------------------------
    def on_request(self, connection_id: str, request_ts: float) -> list[Directive]:
        """A request arrives from the importer side; fan it out.

        A request already known (possible only with
        ``strict_order=False``) is a retransmission: once finalized it
        is re-answered from the final-answer cache so the importer
        always hears the *same* answer, and — for a MATCH — re-forwarded
        to every rank so the data pieces are re-driven too; while still
        open it is re-forwarded to the ranks that have not answered
        definitively (some may have missed the original forward).
        """
        states = self._conn(connection_id)
        st = states.get(request_ts)
        if st is not None and not self.strict_order:
            self.duplicate_requests += 1
            if st.finalized is not None:
                self.cached_answers_served += 1
                directives: list[Directive] = [
                    AnswerImporter(connection_id=connection_id, answer=st.finalized)
                ]
                if st.finalized.kind is MatchKind.MATCH:
                    directives.extend(
                        ForwardRequest(
                            rank=r, connection_id=connection_id, request_ts=request_ts
                        )
                        for r in range(self.nprocs)
                    )
                return directives
            return [
                ForwardRequest(rank=r, connection_id=connection_id, request_ts=request_ts)
                for r in range(self.nprocs)
                if r not in st.definitive_ranks
            ]
        last = self._last_request_ts[connection_id]
        if request_ts <= last:
            if self.strict_order:
                raise ProtocolError(
                    f"{self.program} rep: request timestamps must increase on "
                    f"{connection_id}: got {request_ts} after {last}"
                )
        else:
            self._last_request_ts[connection_id] = request_ts
        states[request_ts] = _ExpRequestState(request_ts=request_ts)
        self.requests_seen += 1
        return [
            ForwardRequest(rank=r, connection_id=connection_id, request_ts=request_ts)
            for r in range(self.nprocs)
        ]

    def on_response(
        self, connection_id: str, rank: int, response: MatchResponse
    ) -> list[Directive]:
        """A process responds (possibly again, after its stream advanced)."""
        states = self._conn(connection_id)
        st = states.get(response.request_ts)
        if st is None:
            raise ProtocolError(
                f"{self.program} rep: response for unknown request "
                f"@{response.request_ts} on {connection_id}"
            )
        st.responses[rank] = response
        if response.is_definitive:
            st.definitive_ranks.add(rank)

        if st.finalized is not None:
            # Late response: it must agree with the verdict, otherwise
            # the program is not collective.
            self._validate_late(connection_id, st, rank, response)
            return []

        if not response.is_definitive:
            return []

        # First definitive response: Property 1 makes it final already.
        try:
            answer = aggregate_responses(list(st.responses.values()))
        except CollectiveViolationError as exc:
            raise PropertyViolationError(str(exc)) from exc
        assert answer is not None  # at least one definitive response
        st.finalized = answer
        self.finalized_count += 1
        case = classify_case(list(st.responses.values()))
        st.finalized_case = case
        st.finalizing_rank = rank
        self.aggregate_cases[case] = self.aggregate_cases.get(case, 0) + 1
        directives: list[Directive] = [
            AnswerImporter(connection_id=connection_id, answer=answer)
        ]
        if self.buddy_help:
            for r in range(self.nprocs):
                if r not in st.definitive_ranks:
                    directives.append(
                        BuddyHelp(rank=r, connection_id=connection_id, answer=answer)
                    )
                    self.buddy_messages_sent += 1
        return directives

    # -- inspection -----------------------------------------------------------
    def open_requests(self, connection_id: str) -> list[float]:
        """Requests not yet finalized (all responses so far PENDING)."""
        return sorted(
            ts
            for ts, st in self._conn(connection_id).items()
            if st.finalized is None
        )

    def answer_for(self, connection_id: str, request_ts: float) -> FinalAnswer | None:
        """The final answer for a request, if decided."""
        st = self._conn(connection_id).get(request_ts)
        return st.finalized if st else None

    def finalize_info(
        self, connection_id: str, request_ts: float
    ) -> tuple[str, int] | None:
        """``(case, finalizing_rank)`` of a decided request, else ``None``.

        The finalizing rank is the process whose first definitive
        response triggered Property 1; causal tracing attaches both to
        the ``aggregate`` span.
        """
        st = self._conn(connection_id).get(request_ts)
        if st is None or st.finalized_case is None or st.finalizing_rank is None:
            return None
        return (st.finalized_case, st.finalizing_rank)

    def aggregate_case_counts(self) -> dict[str, int]:
        """Finalization cases plus still-open all-PENDING requests."""
        out = dict(self.aggregate_cases)
        all_pending = sum(
            1
            for states in self._requests.values()
            for st in states.values()
            if st.finalized is None and st.responses
        )
        if all_pending:
            out["all_pending"] = out.get("all_pending", 0) + all_pending
        return out

    # -- internals ---------------------------------------------------------------
    def _conn(self, connection_id: str) -> dict[float, _ExpRequestState]:
        try:
            return self._requests[connection_id]
        except KeyError:
            raise ProtocolError(
                f"{self.program} rep: unknown connection {connection_id!r}"
            ) from None

    def _validate_late(
        self,
        connection_id: str,
        st: _ExpRequestState,
        rank: int,
        response: MatchResponse,
    ) -> None:
        answer = st.finalized
        assert answer is not None
        if not response.is_definitive:
            return
        if response.kind is not answer.kind or (
            response.kind is MatchKind.MATCH
            and response.matched_ts != answer.matched_ts
        ):
            raise PropertyViolationError(
                f"{self.program} rep: process {rank} answered "
                f"{response.kind}/{response.matched_ts} for request "
                f"@{response.request_ts} on {connection_id}, but the collective "
                f"verdict was {answer.kind}/{answer.matched_ts} — Property 1 violated"
            )


# ---------------------------------------------------------------------------
# importer-side rep
# ---------------------------------------------------------------------------

@dataclass
class _ImpRequestState:
    request_ts: float
    waiting: set[int] = field(default_factory=set)
    #: Every rank that has asked (never cleared — distinguishes a
    #: retransmitted ask from a late first ask).
    asked: set[int] = field(default_factory=set)
    answer: FinalAnswer | None = None


class ImporterRep:
    """Request deduplication and answer broadcast for an importing program."""

    def __init__(self, program: str, nprocs: int, connection_ids: list[str]) -> None:
        require(nprocs > 0, "nprocs must be positive")
        self.program = program
        self.nprocs = nprocs
        self._requests: dict[str, dict[float, _ImpRequestState]] = {
            cid: {} for cid in connection_ids
        }
        self.forwarded_count = 0
        self.duplicate_asks = 0
        self.duplicate_answers = 0

    def on_process_request(
        self, connection_id: str, request_ts: float, rank: int
    ) -> list[Directive]:
        """An importer process wants data at *request_ts*.

        The first process to ask triggers the cross-program request
        (so the request reaches the exporter as early as the *fastest*
        importer process gets there); later processes either wait or
        get the already-known answer immediately.  A *repeated* ask by
        a still-waiting rank is a retransmission (its answer, or the
        original request, was lost): the cross-program request is
        re-driven so the exporter side re-answers.
        """
        states = self._conn(connection_id)
        st = states.get(request_ts)
        directives: list[Directive] = []
        if st is None:
            st = _ImpRequestState(request_ts=request_ts)
            states[request_ts] = st
            self.forwarded_count += 1
            directives.append(
                ForwardToExporter(connection_id=connection_id, request_ts=request_ts)
            )
        elif rank in st.asked:
            # A rank only asks twice when something it needs was lost —
            # the answer, or (answer in hand) its data pieces.  Either
            # way the cross-program request is re-driven; every hop on
            # the exporter side recovers idempotently.
            self.duplicate_asks += 1
            directives.append(
                ForwardToExporter(connection_id=connection_id, request_ts=request_ts)
            )
        st.asked.add(rank)
        if st.answer is not None:
            directives.append(
                DeliverAnswer(rank=rank, connection_id=connection_id, answer=st.answer)
            )
        else:
            st.waiting.add(rank)
        return directives

    def on_answer(self, connection_id: str, answer: FinalAnswer) -> list[Directive]:
        """The exporter rep's final answer arrives; wake the waiters.

        A repeated identical answer (retransmission, or a re-answer
        from the exporter rep's cache) is discarded idempotently; a
        *disagreeing* repeat is a protocol violation.
        """
        states = self._conn(connection_id)
        st = states.get(answer.request_ts)
        if st is None:
            raise ProtocolError(
                f"{self.program} rep: answer for unknown request "
                f"@{answer.request_ts} on {connection_id}"
            )
        if st.answer is not None:
            if st.answer == answer:
                self.duplicate_answers += 1
                return []
            raise ProtocolError(
                f"{self.program} rep: conflicting duplicate answer for request "
                f"@{answer.request_ts} on {connection_id}: "
                f"{st.answer} then {answer}"
            )
        st.answer = answer
        woken = sorted(st.waiting)
        st.waiting.clear()
        return [
            DeliverAnswer(rank=r, connection_id=connection_id, answer=answer)
            for r in woken
        ]

    def _conn(self, connection_id: str) -> dict[float, _ImpRequestState]:
        try:
            return self._requests[connection_id]
        except KeyError:
            raise ProtocolError(
                f"{self.program} rep: unknown connection {connection_id!r}"
            ) from None
