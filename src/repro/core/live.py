"""The live coupling runtime: OS threads and wall-clock time.

:class:`LiveCoupledSimulation` runs the *same* coupling protocol as the
DES runtime (:mod:`repro.core.coupler`) — identical state machines
(:class:`~repro.core.exporter.RegionExportState`,
:class:`~repro.core.rep.ExporterRep`/:class:`~repro.core.rep.ImporterRep`)
and identical wire messages (:mod:`repro.core.wire`) — but on real
threads:

* each program runs ``nprocs`` application threads, ``nprocs``
  framework *agent* threads (the service thread of the paper's
  framework, handling forwarded requests and buddy-help messages
  concurrently with application compute), and one *rep* thread;
* buffering performs an actual ``ndarray.copy()`` and records its
  measured wall-clock duration in the Eq. (1)-(2) ledgers;
* ``ctx.compute(seconds)`` really sleeps (scaled by ``time_scale`` so
  demos stay fast).

The DES runtime remains the tool for the paper's experiments (virtual
time is deterministic); this runtime demonstrates — and tests — that
the framework logic is runtime-independent, and is what a downstream
user would embed in real applications.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from repro.core import wire
from repro.core.config import CouplingConfig, parse_config
from repro.core.coupler import RegionDef
from repro.core.exceptions import ConfigError, FrameworkError
from repro.core.exporter import ExportDecision, RegionExportState
from repro.core.importer import RegionImportState
from repro.core.rep import (
    AnswerImporter,
    BuddyHelp,
    DeliverAnswer,
    ExporterRep,
    ForwardRequest,
    ForwardToExporter,
    ImporterRep,
)
from repro.data.region import RectRegion
from repro.data.schedule import CommSchedule
from repro.match.result import FinalAnswer, MatchKind
from repro.obs.trace import CausalLog, TraceContext
from repro.util import tracing
from repro.util.tracing import NullTracer
from repro.util.validation import require, require_positive
from repro.vmpi.thread_backend import (
    MailboxTimeout,
    ThreadCommunicator,
    ThreadMailbox,
    ThreadWorld,
)

if TYPE_CHECKING:
    from repro.api.options import RunOptions

#: Sentinel distinguishing "not passed" from any real value in the
#: deprecated keyword-argument constructor path.
_UNSET: Any = object()


@dataclass
class LiveExportRecord:
    """One export call: wall-clock duration and the decision taken."""

    ts: float
    decision: ExportDecision
    seconds: float


@dataclass
class LiveStats:
    """Per-process wall-clock instrumentation."""

    export_records: list[LiveExportRecord] = field(default_factory=list)
    #: Buddy-help accounting (wall-clock runtimes cannot price the
    #: avoided copy, so only the counts are kept here).
    buddy_answers_received: int = 0
    buddy_skips: int = 0
    #: Per buddy-enabled skip: ``(export_ts, request_ts, lead_seconds)``
    #: where *lead* is the wall-clock head start the enabling buddy
    #: answer arrived with (see the DES twin for the full story).
    buddy_lead_times: list[tuple[float, float, float]] = field(default_factory=list)

    def decisions(self) -> dict[str, int]:
        """Histogram of export decisions."""
        out: dict[str, int] = {}
        for r in self.export_records:
            out[r.decision.value] = out.get(r.decision.value, 0) + 1
        return out

    def total_export_seconds(self) -> float:
        """Total wall time spent inside export calls."""
        return sum(r.seconds for r in self.export_records)


class _LiveProgram:
    def __init__(self, name, nprocs, main, regions, comms):
        self.name = name
        self.nprocs = nprocs
        self.main = main
        self.regions: dict[str, RegionDef] = regions
        self.comms: list[ThreadCommunicator] = comms
        self.contexts: list[LiveProcessContext] = []
        self.exp_rep: ExporterRep | None = None
        self.imp_rep: ImporterRep | None = None
        self.rep_lock = threading.Lock()
        #: Application threads still running (telemetry snapshots).
        self.alive = nprocs if main is not None else 0


class LiveProcessContext:
    """The per-process API of the live runtime (blocking calls)."""

    def __init__(self, runtime: "LiveCoupledSimulation", program: _LiveProgram, rank: int):
        self._rt = runtime
        self._program = program
        self.program = program.name
        self.rank = rank
        self.nprocs = program.nprocs
        #: Intra-program communicator (vmpi thread backend).
        self.comm = program.comms[rank]
        self.stats = LiveStats()
        #: Guards the export states shared with this process's agent.
        self.lock = threading.RLock()
        self.export_states: dict[str, RegionExportState] = {}
        self.import_states: dict[str, RegionImportState] = {}
        config = runtime.config
        for rname in program.regions:
            exp = config.connections_exporting(self.program, rname)
            if exp:
                self.export_states[rname] = RegionExportState(
                    rname,
                    exp,
                    strict_order=runtime.strict_order,
                    match_backend=runtime.match_backend,
                )
            imp = config.connections_importing(self.program, rname)
            if imp:
                require(len(imp) == 1, f"region {rname}: one exporter only")
                self.import_states[rname] = RegionImportState(
                    rname, imp[0].connection_id
                )
        for rname in program.regions:
            if rname not in self.export_states and rname not in self.import_states:
                self.export_states[rname] = RegionExportState(rname, [])
        #: Buddy-answer arrival bookkeeping (``(cid, request_ts)`` →
        #: ``(arrived_at, recv_span)``); feeds per-window lead times.
        self._buddy_arrivals: dict[tuple[str, float], tuple[float, Any]] = {}
        #: Trace context of the last FwdRequest per request (causal).
        self._causal_fwd: dict[tuple[str, float], TraceContext | None] = {}

    # -- identity --------------------------------------------------------
    @property
    def who(self) -> str:
        """Trace identity, e.g. ``"F.p2"``."""
        return f"{self.program}.p{self.rank}"

    def local_region(self, region: str) -> RectRegion:
        """This rank's owned sub-box of *region*."""
        return self._program.regions[region].decomp.local_region(self.rank)

    # -- time -----------------------------------------------------------------
    def compute(self, seconds: float) -> None:
        """Really sleep for ``seconds * time_scale``."""
        require(seconds >= 0, "compute time must be >= 0")
        time.sleep(seconds * self._rt.time_scale)
        if self._rt._prov is not None:
            self._rt._prov.on_op(
                self.program, self.rank, {"op": "compute", "seconds": seconds}
            )

    # -- export ------------------------------------------------------------------
    def export(self, region: str, ts: float, data: np.ndarray | None = None) -> ExportDecision:
        """Export the region's object at *ts*; returns the decision.

        Buffering performs an actual copy of *data*; its measured
        duration lands in the buffer ledger and the export record.
        """
        st = self.export_states.get(region)
        require(st is not None, f"{self.program} declares no region {region!r}")
        assert st is not None
        local = self.local_region(region)
        if data is not None:
            require(
                tuple(data.shape) == local.shape,
                f"export {region}@{ts}: block shape {data.shape} != {local.shape}",
            )
            nbytes = int(data.nbytes)
        else:
            nbytes = local.size * self._program.regions[region].itemsize
        t0 = time.perf_counter()
        with self.lock:
            self._rt._race_enter(
                ("ctx", self.who),
                (("match", self.who, region), "write", "export.on_export"),
                (("ledger", self.who, region), "write", "export.buffer"),
            )
            outcome = st.on_export(ts, nbytes, memcpy_cost=0.0)
            if outcome.decision in (ExportDecision.BUFFER, ExportDecision.SEND):
                copy_start = time.perf_counter()
                payload = data.copy() if data is not None else None
                copied = time.perf_counter() - copy_start
                entry = st.buffer.get(ts)
                entry.payload = payload
                st.buffer.record_cost(ts, copied)
            for cid in outcome.send_connections:
                self._rt._send_pieces(self, region, cid, ts)
            for cid, m in outcome.post_sends:
                self._rt._send_pieces(self, region, cid, m)
            for cid, response in outcome.new_responses:
                self._rt._send_response(self, cid, response)
            st.collect_evictions()
            self._rt._race_exit(("ctx", self.who))
        elapsed = time.perf_counter() - t0
        if outcome.buddy_skip:
            self.stats.buddy_skips += 1
            self._note_buddy_skip(ts, outcome)
        self.stats.export_records.append(
            LiveExportRecord(ts=ts, decision=outcome.decision, seconds=elapsed)
        )
        if self._rt.tracer.enabled:
            kind = (
                tracing.EXPORT_SKIP
                if outcome.decision is ExportDecision.SKIP
                else tracing.EXPORT_MEMCPY
            )
            self._rt.tracer.record(kind, self.who, time.perf_counter(), timestamp=ts)
        if self._rt._prov is not None:
            self._rt._prov.on_op(
                self.program,
                self.rank,
                {
                    "op": "export",
                    "region": region,
                    "ts": ts,
                    "dtype": None if data is None else np.dtype(data.dtype).name,
                },
            )
        return outcome.decision

    def _note_buddy_skip(self, ts: float, outcome: Any) -> None:
        """Record the lead time (and causal span) of a buddy-enabled skip."""
        rt = self._rt
        enabler = getattr(outcome, "buddy_enabler", None)
        if enabler is None:
            return
        arrival = self._buddy_arrivals.get(enabler)
        if arrival is None:
            return
        arrived_at, recv_span = arrival
        now = rt.elapsed()
        cid, request_ts = enabler
        lead = now - arrived_at
        self.stats.buddy_lead_times.append((ts, request_ts, lead))
        if rt.causal is not None and recv_span is not None:
            rt.causal.record(
                recv_span.trace_id,
                "buddy_skip",
                self.who,
                now,
                parents=(recv_span.span_id,),
                connection=cid,
                request=request_ts,
                export_ts=ts,
                lead=lead,
            )

    # -- import -------------------------------------------------------------------
    def import_(
        self, region: str, ts: float, timeout: float | None = None
    ) -> tuple[float | None, np.ndarray | None]:
        """Request the region's object for *ts*; blocks until resolved.

        On a resilient runtime (``fault_injector`` or
        ``retransmit_timeout`` set) each blocking receive runs under a
        retransmission loop: a timed-out wait re-posts the
        :class:`~repro.core.wire.ImpProcRequest` with exponential
        backoff, and the rep/exporter chain re-answers idempotently.
        """
        ist = self.import_states.get(region)
        require(ist is not None, f"{self.program} imports no region {region!r}")
        assert ist is not None
        rt = self._rt
        cid = ist.connection_id
        if rt._prov is not None:
            # One combined row: the live API has no begin/wait split.
            rt._prov.on_op(
                self.program,
                self.rank,
                {"op": "import_begin", "region": region, "ts": ts},
            )
        tr: TraceContext | None = None
        if rt.causal is not None:
            tid = rt.causal.trace_for(cid, ts)
            tr = rt.causal.record(
                tid, "request", self.who, rt.elapsed(),
                connection=cid, request=ts, rank=self.rank,
            )
            rt._causal_req[(cid, ts, self.rank)] = tr
        record = ist.start_request(
            ts, rt.elapsed(), trace_id=None if tr is None else tr.trace_id
        )
        rt._post(
            ("rep", self.program),
            wire.ImpProcRequest(
                connection_id=cid, request_ts=ts, rank=self.rank, trace=tr
            ),
        )
        box = rt._mailbox("cpl", self.program, self.rank)
        timeout = rt.default_timeout if timeout is None else timeout
        answer_msg = self._get_with_retransmit(
            box,
            lambda m: isinstance(m, wire.AnswerToProc)
            and m.connection_id == cid
            and m.answer.request_ts == ts,
            cid,
            ts,
            timeout,
        )
        answer: FinalAnswer = answer_msg.answer
        ist.on_answer(record, answer, rt.elapsed())
        ans_span: TraceContext | None = None
        if rt.causal is not None:
            ans_span = self._causal_answered(
                cid, ts, getattr(answer_msg, "trace", None), str(answer.kind)
            )
        if answer.kind is MatchKind.NO_MATCH:
            ist.complete(record, rt.elapsed())
            if rt.causal is not None and ans_span is not None:
                rt.causal.record(
                    ans_span.trace_id, "complete", self.who, rt.elapsed(),
                    parents=(ans_span.span_id,),
                    connection=cid, request=ts,
                    kind=str(answer.kind), pieces=0,
                )
            return (None, None)
        m = answer.matched_ts
        assert m is not None
        schedule = rt._connections[cid].schedule
        assert schedule is not None
        expected = list(schedule.recvs_for(self.rank))
        # Keyed by (src_rank, region) so duplicated or re-driven pieces
        # collapse instead of double-counting.
        pieces: dict[tuple[int, RectRegion], wire.DataPiece] = {}
        while len(pieces) < len(expected):
            piece = self._get_with_retransmit(
                box,
                lambda msg: isinstance(msg, wire.DataPiece)
                and msg.connection_id == cid
                and msg.match_ts == m,
                cid,
                ts,
                timeout,
            )
            pieces.setdefault((piece.src_rank, piece.region), piece)
        block = self._assemble(region, list(pieces.values()))
        ist.complete(record, rt.elapsed())
        if rt.causal is not None and ans_span is not None:
            rt.causal.record(
                ans_span.trace_id, "complete", self.who, rt.elapsed(),
                parents=(ans_span.span_id,),
                connection=cid, request=ts,
                kind=str(answer.kind), pieces=len(pieces),
            )
        return (m, block)

    def _causal_answered(
        self, cid: str, ts: float, incoming: TraceContext | None, kind: str
    ) -> TraceContext | None:
        """Record the importer-side ``answered`` span of one import."""
        rt = self._rt
        assert rt.causal is not None
        root = rt._causal_req.get((cid, ts, self.rank))
        if incoming is not None:
            tid = incoming.trace_id
        elif root is not None:
            tid = root.trace_id
        else:
            tid = rt.causal.trace_for(cid, ts)
        parents = tuple(x.span_id for x in (incoming, root) if x is not None)
        return rt.causal.record(
            tid, "answered", self.who, rt.elapsed(),
            parents=parents, connection=cid, request=ts, kind=kind,
        )

    def _get_with_retransmit(
        self,
        box: ThreadMailbox,
        pred: Callable[[Any], bool],
        cid: str,
        request_ts: float,
        timeout: float | None,
    ) -> Any:
        """Blocking receive; on a resilient runtime, re-ask on timeout."""
        rt = self._rt
        if rt._rto is None:
            return box.get(pred, timeout=timeout)
        attempt = 0
        while True:
            rto = rt._rto * (2 ** min(attempt, 6))
            try:
                return box.get(pred, timeout=rto)
            except MailboxTimeout:
                attempt += 1
                if attempt > rt.max_retransmits:
                    raise FrameworkError(
                        f"{self.who}: request {cid}@{request_ts:g} unanswered "
                        f"after {rt.max_retransmits} retransmissions"
                    ) from None
                with rt._count_lock:
                    rt.retransmissions += 1
                if rt.tracer.enabled:
                    rt.tracer.record(
                        tracing.RETRANSMIT,
                        self.who,
                        time.perf_counter(),
                        request=request_ts,
                        attempt=attempt,
                        rto=rto,
                    )
                tr: TraceContext | None = None
                if rt.causal is not None:
                    # Retransmissions keep the ORIGINAL trace id so the
                    # causal DAG survives the fault layer intact.
                    root = rt._causal_req.get((cid, request_ts, self.rank))
                    tid = (
                        root.trace_id
                        if root is not None
                        else rt.causal.trace_for(cid, request_ts)
                    )
                    tr = rt.causal.record(
                        tid, "retransmit", self.who, rt.elapsed(),
                        parents=() if root is None else (root.span_id,),
                        connection=cid, request=request_ts, attempt=attempt,
                    )
                rt._post(
                    ("rep", self.program),
                    wire.ImpProcRequest(
                        connection_id=cid,
                        request_ts=request_ts,
                        rank=self.rank,
                        trace=tr,
                    ),
                )

    def _assemble(self, region: str, pieces: list[wire.DataPiece]) -> np.ndarray | None:
        rdef = self._program.regions[region]
        local = self.local_region(region)
        if any(p.data is None for p in pieces):
            return None
        block = np.zeros(local.shape, dtype=rdef.dtype)
        slice_map: dict[RectRegion, tuple[slice, ...]] = {}
        if pieces:
            crt = self._rt._connections[pieces[0].connection_id]
            slice_map = crt.recv_slices.get(self.rank, {})
        for p in pieces:
            sl = slice_map.get(p.region)
            if sl is None:
                sl = p.region.to_slices(origin=local.lo)
            block[sl] = p.data
        return block


class LiveCoupledSimulation:
    """Threaded, wall-clock twin of :class:`CoupledSimulation`.

    Parameters
    ----------
    config:
        A :class:`CouplingConfig` or configuration text (Figure 2).
    buddy_help:
        Enable the paper's optimization.
    time_scale:
        Multiplier applied to ``ctx.compute`` sleeps (use < 1 to speed
        demos up).
    default_timeout:
        Blocking-receive timeout (deadlock diagnosis).
    fault_injector:
        A callable ``f(world, address, msg)`` installed as
        :attr:`ThreadWorld.fault_hook` — typically a
        :class:`repro.faults.injectors.LiveFaultInjector`.  Setting it
        switches the runtime to resilient mode (relaxed request
        ordering + retransmission).
    retransmit_timeout:
        Base retransmission timeout in wall seconds.  Defaults to
        ``0.25`` when a fault injector is installed; set explicitly to
        enable resilience without chaos.
    max_retransmits:
        Give-up bound per blocking receive (exponential backoff,
        exponent capped at 6).
    batch_control:
        Coalesce each representative's fan-out of control messages into
        per-destination :class:`~repro.core.wire.Frame` batches (default
        off).  Fault injectors then act once per frame.
    """

    def __init__(
        self,
        config: CouplingConfig | str,
        buddy_help: Any = _UNSET,
        time_scale: Any = _UNSET,
        default_timeout: Any = _UNSET,
        tracer: Any = _UNSET,
        fault_injector: Any = _UNSET,
        retransmit_timeout: Any = _UNSET,
        max_retransmits: Any = _UNSET,
        batch_control: Any = _UNSET,
        *,
        options: "RunOptions | None" = None,
    ) -> None:
        # Imported lazily: repro.api.facade imports this module.
        from repro.api.options import RunOptions

        legacy = {
            name: value
            for name, value in (
                ("buddy_help", buddy_help),
                ("time_scale", time_scale),
                ("default_timeout", default_timeout),
                ("tracer", tracer),
                ("fault_injector", fault_injector),
                ("retransmit_timeout", retransmit_timeout),
                ("max_retransmits", max_retransmits),
                ("batch_control", batch_control),
            )
            if value is not _UNSET
        }
        if legacy:
            if options is not None:
                raise ConfigError(
                    "pass either options=RunOptions(...) or legacy keyword "
                    "arguments, not both"
                )
            warnings.warn(
                "LiveCoupledSimulation(buddy_help=..., time_scale=..., ...) "
                "keyword arguments are deprecated; pass "
                "options=repro.RunOptions(runtime='live', ...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            options = RunOptions(runtime="live", **legacy)
        elif options is None:
            options = RunOptions(runtime="live")
        #: The frozen options this simulation was built from.
        self.options = options
        buddy_help = options.buddy_help
        time_scale = options.time_scale
        default_timeout = options.default_timeout
        tracer = options.tracer
        fault_injector = options.fault_injector
        retransmit_timeout = options.retransmit_timeout
        max_retransmits = (
            8 if options.max_retransmits is None else options.max_retransmits
        )
        batch_control = options.batch_control
        self.config = parse_config(config) if isinstance(config, str) else config
        self.config.validate()
        require_positive(time_scale, "time_scale")
        require(max_retransmits >= 0, "max_retransmits must be >= 0")
        self.buddy_help = buddy_help
        self.time_scale = time_scale
        self.default_timeout = default_timeout
        self.tracer = tracer if tracer is not None else NullTracer()
        self.world = ThreadWorld(default_timeout=default_timeout)
        self.world.fault_hook = fault_injector
        self.resilient = fault_injector is not None or retransmit_timeout is not None
        self.strict_order = not self.resilient
        #: Which match engine every exporter process uses (validated by
        #: ``RunOptions.__post_init__``; decisions are backend-independent).
        self.match_backend = options.match_backend
        if retransmit_timeout is not None:
            require_positive(retransmit_timeout, "retransmit_timeout")
            self._rto: float | None = retransmit_timeout
        else:
            self._rto = 0.25 if fault_injector is not None else None
        self.max_retransmits = max_retransmits
        self.retransmissions = 0
        self.dup_discards = 0
        self.batch_control = batch_control
        self.frames_sent = 0
        self.framed_messages = 0
        self._count_lock = threading.Lock()
        self._wire_seq = 0
        #: Provenance recorder (opt-in).  Live logs are audit-only —
        #: wall-clock scheduling is not replayable — but they capture
        #: the same wire/match/operation record as the DES runtime.
        #: Recorder appends are single ``list.append``/dict-op calls,
        #: atomic under the GIL, so no extra lock is needed.
        self._prov = None
        if options.provenance is not None:
            # Imported lazily: the core stays importable without the
            # obs package and pays nothing when recording is off.
            from repro.obs.prov import ProvenanceRecorder

            self._prov = ProvenanceRecorder(options.provenance)
        #: Causal tracing (opt-in, same span vocabulary as the DES
        #: runtime).  The aux dicts are written by at most one thread
        #: per key (CPython dict ops are atomic under the GIL).
        self.causal: CausalLog | None = (
            CausalLog()
            if options.causal_trace or self._prov is not None
            else None
        )
        #: Happens-before race detection (opt-in, duck-typed so the
        #: core layer does not import :mod:`repro.analysis.races`).
        #: ``None`` keeps every hook a single attribute check.
        self.races: Any | None = options.race_monitor
        self._causal_req: dict[tuple[str, float, int], TraceContext] = {}
        self._causal_resp: dict[tuple[str, float], list[int]] = {}
        self._causal_agg: dict[tuple[str, float], TraceContext] = {}
        self._causal_ans: dict[tuple[str, float], TraceContext] = {}
        #: Streaming telemetry (opt-in); a background thread flushes
        #: snapshots every ``telemetry_interval`` wall seconds.
        self.telemetry_sinks: tuple[Any, ...] = tuple(options.telemetry_sinks)
        self.telemetry_interval = options.telemetry_interval
        #: Run epoch: span times and import latencies are relative to
        #: this so both runtimes report small comparable numbers.
        self._t0 = time.perf_counter()
        self._programs: dict[str, _LiveProgram] = {}
        self._connections = {
            c.connection_id: _LiveConn(c) for c in self.config.connections
        }
        self._started = False

    # -- setup ------------------------------------------------------------
    def add_program(
        self,
        name: str,
        main: Callable[[LiveProcessContext], Any] | None = None,
        regions: dict[str, RegionDef] | None = None,
        nprocs: int | None = None,
    ) -> _LiveProgram:
        """Register a program (same contract as the DES coupler)."""
        require(not self._started, "cannot add programs after run()")
        require(name not in self._programs, f"program {name!r} already added")
        spec = self.config.programs.get(name)
        if nprocs is None:
            if spec is None:
                raise ConfigError(f"program {name!r} not in configuration; pass nprocs=")
            nprocs = spec.nprocs
        regions = dict(regions or {})
        for rname, rdef in regions.items():
            require(
                rdef.decomp.nprocs == nprocs,
                f"region {name}.{rname}: decomposition over {rdef.decomp.nprocs} "
                f"ranks but program has {nprocs}",
            )
        comms = self.world.create_program(name, nprocs)
        for r in range(nprocs):
            self.world.register(("ctl", name, r))
            self.world.register(("cpl", name, r))
        self.world.register(("rep", name))
        prog = _LiveProgram(name, nprocs, main, regions, comms)
        self._programs[name] = prog
        return prog

    def elapsed(self) -> float:
        """Wall seconds since this runtime was constructed."""
        return time.perf_counter() - self._t0

    def context(self, program: str, rank: int) -> LiveProcessContext:
        """The live context of one process (valid once run() started)."""
        return self._programs[program].contexts[rank]

    def buffer_stats(self, program: str, rank: int, region: str):
        """Buffer ledger snapshot of one process's exported region."""
        return self.context(program, rank).export_states[region].buffer.stats()

    # -- run --------------------------------------------------------------
    def run(self, join_timeout: float = 120.0) -> None:
        """Start all threads, wait for application mains, shut down."""
        self._finalize_setup()
        service: list[threading.Thread] = []
        mains: list[threading.Thread] = []
        errors: list[BaseException] = []

        def guarded(fn, *args):
            def runner():
                try:
                    fn(*args)
                except BaseException as exc:  # noqa: BLE001 - reported below
                    errors.append(exc)

            return runner

        for prog in self._programs.values():
            t = threading.Thread(
                target=guarded(self._rep_loop, prog),
                name=f"{prog.name}.rep",
                daemon=True,
            )
            service.append(t)
            for ctx in prog.contexts:
                a = threading.Thread(
                    target=guarded(self._agent_loop, ctx),
                    name=f"{prog.name}.agent{ctx.rank}",
                    daemon=True,
                )
                service.append(a)
            if prog.main is not None:
                for ctx in prog.contexts:
                    m = threading.Thread(
                        target=guarded(self._main_body, ctx),
                        name=f"{prog.name}.{ctx.rank}",
                        daemon=True,
                    )
                    mains.append(m)
        telemetry_stop: threading.Event | None = None
        telemetry_thread: threading.Thread | None = None
        if self.telemetry_sinks:
            from repro.obs.stream import emit_snapshot

            telemetry_stop = threading.Event()

            def telemetry_loop(stop: threading.Event) -> None:
                while not stop.wait(self.telemetry_interval):
                    emit_snapshot(self, self.telemetry_sinks, final=False)

            telemetry_thread = threading.Thread(
                target=telemetry_loop,
                args=(telemetry_stop,),
                name="telemetry",
                daemon=True,
            )
            telemetry_thread.start()
        for t in service:
            t.start()
        for t in mains:
            t.start()
        for t in mains:
            t.join(timeout=join_timeout)
        if telemetry_stop is not None and telemetry_thread is not None:
            telemetry_stop.set()
            telemetry_thread.join(timeout=5.0)
            from repro.obs.stream import emit_snapshot

            emit_snapshot(self, self.telemetry_sinks, final=True)
        alive = [t.name for t in mains if t.is_alive()]
        # Stop the service loops regardless of outcome.
        for prog in self._programs.values():
            self._mailbox("rep", prog.name).put(wire.Shutdown())
            for r in range(prog.nprocs):
                self._mailbox("ctl", prog.name, r).put(wire.Shutdown())
        for t in service:
            t.join(timeout=5.0)
        if errors:
            raise RuntimeError(f"live run failed: {errors[0]!r}") from errors[0]
        if alive:
            raise RuntimeError(f"application threads did not finish: {alive}")

    # -- internals ------------------------------------------------------------
    def _finalize_setup(self) -> None:
        self._started = True
        for crt in self._connections.values():
            spec = crt.spec
            for side, ep in (("exporter", spec.exporter), ("importer", spec.importer)):
                prog = self._programs.get(ep.program)
                if prog is None:
                    raise ConfigError(
                        f"connection {crt.cid}: {side} program {ep.program!r} never added"
                    )
                if ep.region not in prog.regions:
                    raise ConfigError(
                        f"connection {crt.cid}: {ep.program!r} does not declare "
                        f"region {ep.region!r}"
                    )
            exp_def = self._programs[spec.exporter.program].regions[spec.exporter.region]
            imp_def = self._programs[spec.importer.program].regions[spec.importer.region]
            if exp_def.decomp.global_shape != imp_def.decomp.global_shape:
                raise ConfigError(f"connection {crt.cid}: global shape mismatch")
            transfer = exp_def.effective_section().intersect(
                imp_def.effective_section()
            )
            if transfer.is_empty:
                raise ConfigError(
                    f"connection {crt.cid}: the sections do not overlap"
                )
            crt.exp_def = exp_def
            crt.schedule = CommSchedule.build_cached(
                exp_def.decomp, imp_def.decomp, transfer
            )
            itemsize = exp_def.itemsize
            crt.send_plans = {
                r: tuple(
                    (
                        item.dst_rank,
                        item.region,
                        item.region.to_slices(origin=exp_def.decomp.local_region(r).lo),
                        item.region.size * itemsize,
                    )
                    for item in crt.schedule.sends_for(r)
                )
                for r in range(exp_def.decomp.nprocs)
            }
            crt.recv_slices = {
                r: {
                    item.region: item.region.to_slices(
                        origin=imp_def.decomp.local_region(r).lo
                    )
                    for item in crt.schedule.recvs_for(r)
                }
                for r in range(imp_def.decomp.nprocs)
            }
        for prog in self._programs.values():
            exp_cids = [
                c.connection_id
                for c in self.config.connections
                if c.exporter.program == prog.name
            ]
            imp_cids = [
                c.connection_id
                for c in self.config.connections
                if c.importer.program == prog.name
            ]
            if exp_cids:
                prog.exp_rep = ExporterRep(
                    prog.name,
                    prog.nprocs,
                    exp_cids,
                    buddy_help=self.buddy_help,
                    strict_order=self.strict_order,
                )
            if imp_cids:
                prog.imp_rep = ImporterRep(prog.name, prog.nprocs, imp_cids)
            prog.contexts = [
                LiveProcessContext(self, prog, r) for r in range(prog.nprocs)
            ]
        if self._prov is not None:
            from repro.obs.prov import build_header

            self._prov.set_header(build_header(self, "live"))

    def _mailbox(self, *address: Any) -> ThreadMailbox:
        return self.world.mailbox(tuple(address))

    def _causal_child(
        self,
        name: str,
        who: str,
        cause: TraceContext | None,
        cid: str,
        request_ts: float,
        extra_parents: tuple[int, ...] = (),
        **attrs: Any,
    ) -> TraceContext:
        """Record a span caused by *cause* (or rooted at the request key)."""
        assert self.causal is not None
        tid = (
            cause.trace_id
            if cause is not None
            else self.causal.trace_for(cid, request_ts)
        )
        parents = (() if cause is None else (cause.span_id,)) + tuple(extra_parents)
        return self.causal.record(
            tid,
            name,
            who,
            self.elapsed(),
            parents=parents,
            connection=cid,
            request=request_ts,
            **attrs,
        )

    def _stamp(self, msg: Any) -> Any:
        """Give *msg* a fresh wire sequence number if unstamped."""
        if getattr(msg, "seq", None) == -1:
            with self._count_lock:
                self._wire_seq += 1
                msg = dataclasses.replace(msg, seq=self._wire_seq)
            if self.races is not None:
                self.races.send(msg.seq)
        return msg

    # -- race-detector hooks ----------------------------------------------
    # Each hook is one attribute check when no monitor is attached.
    # _race_enter runs *after* the instrumented lock is taken and
    # _race_exit *before* it is dropped, so the monitor observes lock
    # events in their true serialization order.
    def _race_enter(
        self, lock_key: Any, *accesses: tuple[tuple[str, ...], str, str]
    ) -> None:
        mon = self.races
        if mon is not None:
            mon.acquire(lock_key)
            for site, kind, where in accesses:
                mon.access(site, kind, where=where)

    def _race_exit(self, lock_key: Any) -> None:
        if self.races is not None:
            self.races.release(lock_key)

    def _race_recv(self, msg: Any) -> None:
        if self.races is not None:
            seq = getattr(msg, "seq", -1)
            if seq >= 0:
                self.races.recv(seq)

    def _post(self, address: tuple[Any, ...], msg: Any) -> None:
        """Stamp a fresh sequence number and deliver via the fault hook."""
        msg = self._stamp(msg)
        if self._prov is not None:
            self._prov.on_wire(
                self.elapsed(),
                getattr(msg, "seq", -1),
                None,
                address,
                type(msg).__name__,
                "data" if isinstance(msg, wire.DataPiece) else "ctl",
                int(getattr(msg, "nbytes", wire.CTL_NBYTES)),
                getattr(msg, "trace", None),
            )
        self.world.post(address, msg)

    def _flush_frames(self, out: list[tuple[Any, Any]]) -> None:
        """Post collected ``(address, msg)`` control sends as frames.

        Sends to the same destination mailbox coalesce into one
        :class:`~repro.core.wire.Frame`; singletons go out bare.
        Members are stamped individually so receiver dedup is unchanged.
        """
        by_dst: dict[Any, list[Any]] = {}
        for dst, msg in out:
            by_dst.setdefault(dst, []).append(msg)
        for dst, msgs in by_dst.items():
            if len(msgs) == 1:
                self._post(dst, msgs[0])
                continue
            members = tuple(self._stamp(m) for m in msgs)
            with self._count_lock:
                self.frames_sent += 1
                self.framed_messages += len(members)
            self._post(
                dst,
                wire.Frame(
                    messages=members,
                    nbytes=wire.frame_nbytes(wire.CTL_NBYTES * len(members)),
                ),
            )

    def _send_response(
        self,
        ctx: LiveProcessContext,
        cid: str,
        response,
        out: list[tuple[Any, Any]] | None = None,
    ) -> None:
        tr: TraceContext | None = None
        if self.causal is not None:
            tr = self._causal_child(
                "match",
                ctx.who,
                ctx._causal_fwd.get((cid, response.request_ts)),
                cid,
                response.request_ts,
                kind=str(response.kind),
                rank=ctx.rank,
            )
        if self._prov is not None:
            self._prov.on_match(
                self.elapsed(),
                cid,
                ctx.rank,
                response.request_ts,
                str(response.kind),
                response.latest_export_ts,
                self.match_backend,
            )
        payload = wire.ProcResponse(
            connection_id=cid, rank=ctx.rank, response=response, trace=tr
        )
        if out is None:
            self._post(("rep", ctx.program), payload)
        else:
            out.append((("rep", ctx.program), payload))

    def _send_pieces(self, ctx: LiveProcessContext, region: str, cid: str, m: float) -> None:
        crt = self._connections[cid]
        schedule = crt.schedule
        assert schedule is not None and crt.exp_def is not None
        st = ctx.export_states[region]
        if not st.buffer.has(m):
            if st.buffer.was_sent(m):
                # Already transferred and evicted (a retransmission
                # re-sent it); the importer deduplicates pieces.
                return
            raise FrameworkError(
                f"{ctx.who}: match @{m:g} of {cid} is no longer buffered — "
                "pipelined imports combined with control-message loss can "
                "evict a pending match (see docs/resilience.md)"
            )
        entry = st.buffer.get(m)
        if not entry.sent:
            st.buffer.mark_sent(m)
        payload = entry.payload
        imp_prog = crt.spec.importer.program
        # Zero-copy: send views into the buffered payload, selected by
        # slice tuples precomputed at finalize time.  The payload is a
        # private buffered copy and is never mutated, so sharing it
        # across threads is safe.
        for dst_rank, piece_region, slices, nbytes in crt.send_plans.get(ctx.rank, ()):
            data = payload[slices] if payload is not None else None
            self._post(
                ("cpl", imp_prog, dst_rank),
                wire.DataPiece(
                    connection_id=cid,
                    match_ts=m,
                    src_rank=ctx.rank,
                    region=piece_region,
                    data=data,
                    nbytes=nbytes,
                ),
            )

    def _region_of_connection(self, prog: str, cid: str) -> str:
        spec = self._connections[cid].spec
        require(spec.exporter.program == prog, f"{cid} does not export from {prog}")
        return spec.exporter.region

    def _seq_duplicate(self, msg: Any, seen: set[int], who: str) -> bool:
        """Wire-level duplicate detection by sequence number."""
        seq = getattr(msg, "seq", -1)
        if seq < 0:
            return False
        if seq in seen:
            with self._count_lock:
                self.dup_discards += 1
            if self.tracer.enabled:
                self.tracer.record(
                    tracing.DUP_DISCARD,
                    who,
                    time.perf_counter(),
                    msg=type(msg).__name__,
                    seq=seq,
                )
            return True
        seen.add(seq)
        return False

    def _agent_loop(self, ctx: LiveProcessContext) -> None:
        box = self._mailbox("ctl", ctx.program, ctx.rank)
        seen: set[int] = set()
        while True:
            unit = box.get(lambda _m: True, timeout=None)
            units = [unit]
            if self.batch_control:
                units.extend(box.drain())
            out: list[tuple[Any, Any]] | None = [] if self.batch_control else None
            stop = False
            for unit in units:
                if isinstance(unit, wire.Shutdown):
                    stop = True
                    continue
                members = unit.messages if isinstance(unit, wire.Frame) else (unit,)
                for msg in members:
                    if self._seq_duplicate(msg, seen, f"{ctx.who}.agent"):
                        continue
                    self._race_recv(msg)
                    self._agent_handle(ctx, msg, out)
            if out:
                self._flush_frames(out)
            if stop:
                return

    def _agent_handle(
        self,
        ctx: LiveProcessContext,
        msg: Any,
        out: list[tuple[Any, Any]] | None,
    ) -> None:
        if isinstance(msg, wire.FwdRequest):
            region = self._region_of_connection(ctx.program, msg.connection_id)
            st = ctx.export_states[region]
            if self.causal is not None:
                ctx._causal_fwd[(msg.connection_id, msg.request_ts)] = msg.trace
            with ctx.lock:
                self._race_enter(
                    ("ctx", ctx.who),
                    (("match", ctx.who, region), "write", "agent.on_request"),
                    (("ledger", ctx.who, region), "write", "agent.pieces"),
                )
                outcome = st.on_request(msg.connection_id, msg.request_ts)
                self._send_response(ctx, msg.connection_id, outcome.response, out)
                if outcome.applied is not None and outcome.applied.send_now is not None:
                    self._send_pieces(
                        ctx, region, msg.connection_id, outcome.applied.send_now
                    )
                st.collect_evictions()
                self._race_exit(("ctx", ctx.who))
        elif isinstance(msg, wire.BuddyMsg):
            region = self._region_of_connection(ctx.program, msg.connection_id)
            st = ctx.export_states[region]
            if self.tracer.enabled:
                self.tracer.record(
                    tracing.BUDDY_RECV,
                    ctx.who,
                    time.perf_counter(),
                    request=msg.answer.request_ts,
                    answer="YES" if msg.answer.is_match else "NO",
                    match=msg.answer.matched_ts
                    if msg.answer.matched_ts is not None
                    else msg.answer.request_ts,
                )
            recv_tr: TraceContext | None = None
            if self.causal is not None:
                recv_tr = self._causal_child(
                    "buddy_recv",
                    ctx.who,
                    msg.trace,
                    msg.connection_id,
                    msg.answer.request_ts,
                    rank=ctx.rank,
                )
            # Unconditional arrival bookkeeping: lead times are
            # reported even without causal tracing.
            ctx._buddy_arrivals[(msg.connection_id, msg.answer.request_ts)] = (
                self.elapsed(),
                recv_tr,
            )
            with ctx.lock:
                self._race_enter(
                    ("ctx", ctx.who),
                    (("match", ctx.who, region), "write", "agent.on_buddy_answer"),
                    (("ledger", ctx.who, region), "write", "agent.buddy_pieces"),
                )
                applied = st.on_buddy_answer(msg.connection_id, msg.answer)
                ctx.stats.buddy_answers_received += 1
                if applied.send_now is not None:
                    self._send_pieces(ctx, region, msg.connection_id, applied.send_now)
                st.collect_evictions()
                self._race_exit(("ctx", ctx.who))
        else:
            raise FrameworkError(f"agent received unexpected message {msg!r}")

    def _rep_loop(self, prog: _LiveProgram) -> None:
        box = self._mailbox("rep", prog.name)
        seen: set[int] = set()
        while True:
            unit = box.get(lambda _m: True, timeout=None)
            units = [unit]
            if self.batch_control:
                # Burst coalescing: handle the whole backlog in one go
                # and frame the combined fan-out per destination.
                units.extend(box.drain())
            out: list[tuple[Any, Any]] | None = [] if self.batch_control else None
            stop = False
            for unit in units:
                if isinstance(unit, wire.Shutdown):
                    stop = True
                    continue
                members = unit.messages if isinstance(unit, wire.Frame) else (unit,)
                for msg in members:
                    if self._seq_duplicate(msg, seen, f"{prog.name}.rep"):
                        continue
                    self._race_recv(msg)
                    self._rep_handle(prog, msg, out)
            if out:
                self._flush_frames(out)
            if stop:
                return

    def _rep_handle(
        self, prog: _LiveProgram, msg: Any, out: list[tuple[Any, Any]] | None
    ) -> None:
        """Dispatch one rep message to the right state machine."""
        cause: TraceContext | None = getattr(msg, "trace", None)
        with prog.rep_lock:
            self._race_enter(
                ("rep", prog.name),
                (("rep_cache", f"{prog.name}.rep"), "write", "rep.dispatch"),
            )
            if isinstance(msg, wire.ReqToExpRep):
                assert prog.exp_rep is not None
                directives = prog.exp_rep.on_request(msg.connection_id, msg.request_ts)
            elif isinstance(msg, wire.ProcResponse):
                assert prog.exp_rep is not None
                if self.causal is not None and cause is not None:
                    self._causal_resp.setdefault(
                        (msg.connection_id, msg.response.request_ts), []
                    ).append(cause.span_id)
                directives = prog.exp_rep.on_response(
                    msg.connection_id, msg.rank, msg.response
                )
            elif isinstance(msg, wire.ImpProcRequest):
                assert prog.imp_rep is not None
                directives = prog.imp_rep.on_process_request(
                    msg.connection_id, msg.request_ts, msg.rank
                )
            elif isinstance(msg, wire.AnswerToImpRep):
                assert prog.imp_rep is not None
                if self.causal is not None and cause is not None:
                    self._causal_ans[(msg.connection_id, msg.answer.request_ts)] = (
                        cause
                    )
                directives = prog.imp_rep.on_answer(msg.connection_id, msg.answer)
            else:
                raise FrameworkError(f"rep received unexpected message {msg!r}")
            self._race_exit(("rep", prog.name))
        for d in directives:
            self._execute_directive(prog, d, out, cause=cause)

    def _execute_directive(
        self,
        prog: _LiveProgram,
        d: Any,
        out: list[tuple[Any, Any]] | None = None,
        cause: TraceContext | None = None,
    ) -> None:
        rep_who = f"{prog.name}.rep"

        def send_ctl(dst: Any, payload: Any) -> None:
            if out is None:
                self._post(dst, payload)
            else:
                out.append((dst, payload))

        if isinstance(d, ForwardRequest):
            tr: TraceContext | None = None
            if self.causal is not None:
                tr = self._causal_child(
                    "fan_out", rep_who, cause, d.connection_id, d.request_ts,
                    rank=d.rank,
                )
            send_ctl(
                ("ctl", prog.name, d.rank),
                wire.FwdRequest(
                    connection_id=d.connection_id,
                    request_ts=d.request_ts,
                    trace=tr,
                ),
            )
        elif isinstance(d, AnswerImporter):
            imp_prog = self._connections[d.connection_id].spec.importer.program
            tr = None
            if self.causal is not None:
                key = (d.connection_id, d.answer.request_ts)
                prior = self._causal_agg.get(key)
                extra = tuple(self._causal_resp.pop(key, ()))
                if prior is not None:
                    extra = (prior.span_id,) + extra
                attrs: dict[str, Any] = {"kind": str(d.answer.kind)}
                finfo = getattr(prog.exp_rep, "finalize_info", None)
                info = finfo(d.connection_id, d.answer.request_ts) if finfo else None
                if info is not None:
                    attrs["case"], attrs["finalizing_rank"] = info
                if prior is not None:
                    attrs["cached"] = True
                tr = self._causal_child(
                    "aggregate", rep_who, cause, d.connection_id,
                    d.answer.request_ts, extra_parents=extra, **attrs,
                )
                self._causal_agg.setdefault(key, tr)
            send_ctl(
                ("rep", imp_prog),
                wire.AnswerToImpRep(
                    connection_id=d.connection_id, answer=d.answer, trace=tr
                ),
            )
        elif isinstance(d, BuddyHelp):
            tr = None
            if self.causal is not None:
                agg = self._causal_agg.get((d.connection_id, d.answer.request_ts))
                tr = self._causal_child(
                    "buddy_notify",
                    rep_who,
                    agg if agg is not None else cause,
                    d.connection_id,
                    d.answer.request_ts,
                    rank=d.rank,
                )
            send_ctl(
                ("ctl", prog.name, d.rank),
                wire.BuddyMsg(
                    connection_id=d.connection_id, answer=d.answer, trace=tr
                ),
            )
        elif isinstance(d, ForwardToExporter):
            exp_prog = self._connections[d.connection_id].spec.exporter.program
            tr = None
            if self.causal is not None:
                tr = self._causal_child(
                    "rep_forward", rep_who, cause, d.connection_id, d.request_ts
                )
            send_ctl(
                ("rep", exp_prog),
                wire.ReqToExpRep(
                    connection_id=d.connection_id,
                    request_ts=d.request_ts,
                    trace=tr,
                ),
            )
        elif isinstance(d, DeliverAnswer):
            tr = None
            if self.causal is not None:
                ans = self._causal_ans.get((d.connection_id, d.answer.request_ts))
                extra = () if ans is None else (ans.span_id,)
                tr = self._causal_child(
                    "answer", rep_who, cause, d.connection_id,
                    d.answer.request_ts, extra_parents=extra, rank=d.rank,
                )
            self._post(
                ("cpl", prog.name, d.rank),
                wire.AnswerToProc(
                    connection_id=d.connection_id, answer=d.answer, trace=tr
                ),
            )
        else:  # pragma: no cover - defensive
            raise FrameworkError(f"unknown directive {d!r}")

    def _main_body(self, ctx: LiveProcessContext) -> None:
        assert ctx._program.main is not None
        try:
            ctx._program.main(ctx)
        finally:
            with self._count_lock:
                ctx._program.alive -= 1
            with ctx.lock:
                for region, st in ctx.export_states.items():
                    responses, post_sends = st.close()
                    for cid, m in post_sends:
                        self._send_pieces(ctx, region, cid, m)
                    for cid, response in responses:
                        self._send_response(ctx, cid, response)


class _LiveConn:
    def __init__(self, spec):
        self.spec = spec
        self.schedule: CommSchedule | None = None
        self.exp_def: RegionDef | None = None
        #: Per-exporter-rank send plan: (dst_rank, region, slices, nbytes).
        self.send_plans: dict[int, tuple[tuple[int, RectRegion, tuple[slice, ...], int], ...]] = {}
        #: Per-importer-rank assembly slices, keyed by piece region.
        self.recv_slices: dict[int, dict[RectRegion, tuple[slice, ...]]] = {}

    @property
    def cid(self) -> str:
        return self.spec.connection_id
