"""Export-side state machine: buffer / skip / send decisions.

One :class:`RegionExportState` lives in every process of an exporting
program, per exported region.  It owns the region's export history and
framework buffer, and one :class:`ConnectionExportState` per connection
the region participates in.  All methods are pure state transitions
returning *outcome* objects; the runtime (:mod:`repro.core.coupler`)
charges virtual time and moves messages.

The decision logic for a new export at timestamp ``ts`` (paper
Section 4.1 and Figures 5/7/8), per connection:

* ``ts`` is a **known match** (learned from buddy-help or from this
  process's own definitive answer) → ``SEND``: buffer it and transfer
  the scheduled pieces.
* ``ts < skip_threshold`` → ``SKIP``: no future request can ever match
  it, so the memcpy is avoided entirely.  The threshold advances on
  three events: a request arrives (everything below the infimum of
  future acceptable regions is dead), the process decides an answer
  itself, or — **buddy-help** — the rep forwards the answer decided by
  a faster peer.
* otherwise → ``BUFFER`` (it may be a candidate now or for a future
  request).  If it falls inside the acceptable region of an open
  request and supersedes the previous best candidate, the previous
  candidate is freed (the Figure-8 buffer-then-replace churn whose
  cost is Eq. 1's ``T_i``).

The region-level decision combines the per-connection votes: ``SEND``
if any connection needs the object, else ``SKIP`` only if *every*
connection allows skipping, else ``BUFFER``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.core.buffers import BufferEntry, BufferManager
from repro.core.config import ConnectionSpec
from repro.core.exceptions import PropertyViolationError
from repro.match.backend import make_backend
from repro.match.engine import ExportHistory
from repro.match.result import FinalAnswer, MatchKind, MatchResponse
from repro.util.validation import require


class ExportDecision(enum.Enum):
    """What the framework does with one exported data object."""

    BUFFER = "buffer"
    SKIP = "skip"
    SEND = "send"
    NOOP = "noop"  # region has no importer: the zero-overhead path

    def __str__(self) -> str:
        return self.value


@dataclass
class OpenRequest:
    """A request this connection has seen but not yet resolved."""

    ts: float
    window: int
    candidate_ts: float | None = None  # best in-region export so far


@dataclass(frozen=True)
class ApplyOutcome:
    """Effects of learning a final answer (locally or via buddy-help)."""

    answer: FinalAnswer
    #: The matched timestamp is already buffered and should be
    #: transferred now (its pieces go out from the agent).
    send_now: float | None = None
    #: The answer was new knowledge for this process (False when it
    #: merely confirmed what the process had already decided).
    was_news: bool = False


@dataclass(frozen=True)
class RequestOutcome:
    """Effects of a request arriving at this process."""

    response: MatchResponse
    #: The request's window index, or ``-1`` for an idempotently
    #: re-handled retransmission (no new window opened).
    window: int
    #: Local resolution triggered by the request being immediately
    #: decidable (fast process path).
    applied: ApplyOutcome | None = None


@dataclass(frozen=True)
class ExportOutcome:
    """Effects of one export call."""

    decision: ExportDecision
    #: Request window the object was an in-region candidate for.
    window: int | None
    #: Connections for which this object is the match → transfer pieces.
    send_connections: tuple[str, ...]
    #: Buffer entries freed by candidate replacement during this call
    #: (their free cost is charged to the export call, as in Figure 8).
    replaced: tuple[BufferEntry, ...]
    #: Definitive responses that became possible because the stream
    #: advanced (PENDING requests resolving on the slow path).
    new_responses: tuple[tuple[str, MatchResponse], ...]
    #: Matches resolved during this call whose (already buffered) data
    #: must be transferred now: ``(connection_id, matched_ts)``.
    post_sends: tuple[tuple[str, float], ...] = ()
    #: A SKIP that *local* knowledge alone would not have allowed —
    #: some connection's skip threshold passed this timestamp only
    #: because of a buddy-help answer.  The memcpy avoided here is the
    #: paper's buddy-help saving (Figure 7 vs. Figure 8).
    buddy_skip: bool = False
    #: For a buddy skip: ``(connection_id, request_ts)`` of the
    #: *earliest-learned* buddy answer whose threshold raise passed
    #: this timestamp.  The runtime subtracts the answer's arrival
    #: time from the export time to get the buddy-help *lead* — how
    #: far ahead of the local decision the help arrived (Eq. 1-2's
    #: win, surfaced per skipped window by causal tracing).
    buddy_enabler: tuple[str, float] | None = None


class ConnectionExportState:
    """Per-connection knowledge of one exporting process."""

    def __init__(
        self,
        conn: ConnectionSpec,
        history: ExportHistory,
        strict_order: bool = True,
        match_backend: str = "legacy",
    ) -> None:
        self.conn = conn
        self.policy = conn.policy
        self.disjoint = conn.disjoint_regions
        #: Relaxed under resilient runtimes: a retransmitted request may
        #: arrive after a later request already advanced the mark.
        self.strict_order = strict_order
        self.engine = make_backend(
            conn.policy, match_backend, history=history, strict_order=strict_order
        )
        self.open_requests: dict[float, OpenRequest] = {}
        #: request ts -> resolved answer (local decision or buddy-help).
        self.answers: dict[float, FinalAnswer] = {}
        #: Exports strictly below this can never match → skippable.
        self.skip_threshold: float = -math.inf
        #: Counterfactual threshold raised only by *local* knowledge
        #: (requests this process saw, answers it decided itself).  The
        #: gap up to ``skip_threshold`` is what buddy-help bought; see
        #: :meth:`skip_is_buddy`.
        self.local_skip_threshold: float = -math.inf
        #: Matched timestamps not yet exported: export them with SEND.
        self.must_send: set[float] = set()
        #: Count of requests seen (N of Eq. 2); also the window index.
        self.window_count: int = 0
        #: Threshold raises learned from buddy answers, in learn order:
        #: ``(raised_to, request_ts)``.  :meth:`buddy_enabler` walks
        #: this to name the answer that enabled a given buddy skip.
        self._buddy_raises: list[tuple[float, float]] = []

    # -- events ---------------------------------------------------------
    def on_request(self, request_ts: float) -> RequestOutcome:
        """A request forwarded by the rep arrives at this process.

        In relaxed mode a request at or below the engine's high-water
        mark is a *re-ask* (retransmission after loss) and is handled
        idempotently — it opens no new window and never double-counts
        in the Eq. (2) ledger.
        """
        if not self.strict_order and request_ts <= self.engine.last_request_ts:
            return self._on_reask(request_ts)
        response = self.engine.evaluate(request_ts, record=True)
        window = self.window_count
        self.window_count += 1
        # Anything below every future acceptable region is dead now.
        self._raise_threshold(self.policy.future_low(request_ts))
        applied = None
        if response.is_definitive:
            answer = _answer_from(response)
            applied = self.apply_answer(answer, source="local")
        else:
            self.open_requests[request_ts] = OpenRequest(ts=request_ts, window=window)
        return RequestOutcome(response=response, window=window, applied=applied)

    def _on_reask(self, request_ts: float) -> RequestOutcome:
        """Handle a retransmitted request idempotently (``window == -1``).

        * Already answered → repeat the recorded answer; if it was a
          MATCH, ask the runtime to (re-)send the buffered data.
        * Still open or never seen (this process may have missed the
          original forward entirely) → re-evaluate without recording;
          adopt it as an open request when undecidable so the normal
          slow-process path resolves it later.
        """
        known = self.answers.get(request_ts)
        if known is not None:
            response = MatchResponse(
                request_ts=request_ts,
                kind=known.kind,
                matched_ts=known.matched_ts,
                latest_export_ts=self.engine.history.latest,
            )
            send_now = known.matched_ts if known.kind is MatchKind.MATCH else None
            applied = ApplyOutcome(answer=known, send_now=send_now, was_news=False)
            return RequestOutcome(response=response, window=-1, applied=applied)
        response = self.engine.evaluate(request_ts, record=False)
        if response.is_definitive:
            applied = self.apply_answer(_answer_from(response), source="local")
            return RequestOutcome(response=response, window=-1, applied=applied)
        if request_ts not in self.open_requests:
            self.open_requests[request_ts] = OpenRequest(
                ts=request_ts, window=self.window_count
            )
        return RequestOutcome(response=response, window=-1, applied=None)

    def apply_answer(self, answer: FinalAnswer, source: str) -> ApplyOutcome:
        """Learn the final answer for a request (local decision or buddy).

        Raises :class:`PropertyViolationError` if it contradicts an
        answer this process already holds — that would mean the
        program's processes are not collective.
        """
        ts = answer.request_ts
        known = self.answers.get(ts)
        if known is not None:
            if known != answer:
                raise PropertyViolationError(
                    f"connection {self.conn.connection_id}: conflicting answers "
                    f"for request @{ts}: {known} vs {answer} (source={source})"
                )
            return ApplyOutcome(answer=answer, send_now=None, was_news=False)
        self.answers[ts] = answer
        self.open_requests.pop(ts, None)
        if source == "buddy" and self.disjoint:
            self._buddy_raises.append((self.policy.region(ts)[1], ts))

        send_now: float | None = None
        if answer.kind is MatchKind.MATCH:
            m = answer.matched_ts
            assert m is not None
            if self.disjoint:
                # Successive acceptable regions do not overlap, so
                # nothing up to this request's region high can satisfy
                # any future request; the match itself is protected by
                # ``must_send``/``keep_set``.
                self._raise_threshold(
                    self.policy.region(ts)[1], local=source == "local"
                )
            if self.engine.history.latest >= m:
                # Already exported: the object is buffered (the skip
                # threshold can never have passed an eventual match) —
                # transfer it now.
                send_now = m
            else:
                # The buddy-help payoff: the match is known before this
                # process has even generated it.
                self.must_send.add(m)
        else:
            if self.disjoint:
                self._raise_threshold(
                    self.policy.region(ts)[1], local=source == "local"
                )
        return ApplyOutcome(answer=answer, send_now=send_now, was_news=True)

    def vote_export(self, ts: float) -> tuple[ExportDecision, int | None, float | None]:
        """This connection's vote for a new export at *ts*.

        Returns ``(decision, window, replaced_candidate_ts)``.  The
        caller must already have appended *ts* to the shared history.
        """
        if ts in self.must_send:
            self.must_send.discard(ts)
            return (ExportDecision.SEND, None, None)
        # In-region candidate for an open request?  Checked BEFORE the
        # skip threshold: a later request's arrival advances the
        # threshold past the regions of still-unresolved earlier
        # requests (their future_low exceeds the open regions), but
        # those requests' potential matches must of course be kept.
        for req in sorted(self.open_requests.values(), key=lambda r: r.ts):
            if not self.policy.in_region(ts, req.ts):
                continue
            if req.candidate_ts is None:
                req.candidate_ts = ts
                return (ExportDecision.BUFFER, req.window, None)
            better = self.policy.select_best([req.candidate_ts, ts], req.ts)
            if better != ts:
                # The existing candidate stays best (can only happen
                # above the request timestamp, where later exports are
                # farther away).  Buffer the new object anyway: it is
                # in-region churn attributable to this window.
                return (ExportDecision.BUFFER, req.window, None)
            # The new object supersedes the previous candidate.  For an
            # increasing export stream "better now" is "better forever"
            # for the *current* request, but the superseded candidate
            # may only be *freed* when successive acceptable regions
            # are known to be disjoint — otherwise a future request's
            # region could still reach back and match it.
            previous = req.candidate_ts
            req.candidate_ts = ts
            replaced = (
                previous
                if self.disjoint and not self._needed_elsewhere(previous, req)
                else None
            )
            return (ExportDecision.BUFFER, req.window, replaced)
        if ts < self.skip_threshold:
            return (ExportDecision.SKIP, None, None)
        return (ExportDecision.BUFFER, None, None)

    def newly_decidable(self) -> list[tuple[MatchResponse, ApplyOutcome]]:
        """Re-evaluate open requests after the stream advanced.

        Requests that became decidable are resolved locally; the caller
        forwards the definitive responses to the rep.
        """
        out: list[tuple[MatchResponse, ApplyOutcome]] = []
        pending = sorted(self.open_requests)
        # One batched sweep over the sorted open set; answers are then
        # applied in ascending request order, exactly as the former
        # per-request loop did (evaluation depends only on the history
        # and policy, so evaluate-all-then-apply is decision-identical).
        for response in self.engine.evaluate_batch(pending, record=False):
            if response.is_definitive:
                applied = self.apply_answer(_answer_from(response), source="local")
                out.append((response, applied))
        return out

    def close_stream(self) -> list[tuple[MatchResponse, ApplyOutcome]]:
        """End of the export stream: every open request becomes decidable."""
        self.engine.close_stream()
        return self.newly_decidable()

    def skip_is_buddy(self, ts: float) -> bool:
        """Whether skipping *ts* is attributable to buddy-help.

        True when the actual threshold passed *ts* but the
        local-knowledge counterfactual has not: without the rep's
        disseminated answer this process would have buffered the
        object (and, per Figure 8, freed it unsent later).
        """
        return self.local_skip_threshold <= ts < self.skip_threshold

    def buddy_enabler(self, ts: float) -> float | None:
        """The request whose buddy answer first made *ts* skippable.

        Returns the request timestamp of the earliest-learned buddy
        answer whose threshold raise passed *ts*, or ``None`` when no
        single buddy answer covers it (e.g. the threshold advanced for
        local reasons too).
        """
        for raised_to, request_ts in self._buddy_raises:
            if raised_to > ts:
                return request_ts
        return None

    # -- helpers -----------------------------------------------------------
    def _raise_threshold(self, value: float, *, local: bool = True) -> None:
        if value > self.skip_threshold:
            self.skip_threshold = value
        if local and value > self.local_skip_threshold:
            self.local_skip_threshold = value

    def _needed_elsewhere(self, ts: float, excluding: OpenRequest) -> bool:
        """Whether *ts* is still a candidate for another open request."""
        for req in self.open_requests.values():
            if req is excluding:
                continue
            if self.policy.in_region(ts, req.ts):
                return True
        return ts in self.must_send

    def would_skip(self, ts: float) -> bool:
        """Non-mutating preview of :meth:`vote_export` for *ts*.

        Used by the finite-buffer backpressure path to decide whether
        an upcoming export will need buffer space at all.
        """
        if ts in self.must_send:
            return False
        for req in self.open_requests.values():
            if self.policy.in_region(ts, req.ts):
                return False
        return ts < self.skip_threshold

    def keep_set(self) -> set[float]:
        """Timestamps eviction must never free for this connection."""
        keep = set(self.must_send)
        for ts, answer in self.answers.items():
            del ts
            if answer.kind is MatchKind.MATCH:
                assert answer.matched_ts is not None
                keep.add(answer.matched_ts)
        for req in self.open_requests.values():
            if req.candidate_ts is not None:
                keep.add(req.candidate_ts)
        return keep


def _answer_from(response: MatchResponse) -> FinalAnswer:
    """Convert a definitive local response into the (identical) answer.

    Sound because of Property 1: every process reaches the same
    decision, so a local definitive response *is* the final answer.
    """
    require(response.is_definitive, "cannot finalize a PENDING response")
    return FinalAnswer(
        request_ts=response.request_ts,
        kind=response.kind,
        matched_ts=response.matched_ts,
    )


class RegionExportState:
    """All export-side state of one process for one exported region."""

    def __init__(
        self,
        region_name: str,
        connections: list[ConnectionSpec],
        capacity_bytes: int | None = None,
        strict_order: bool = True,
        match_backend: str = "legacy",
    ) -> None:
        self.region_name = region_name
        self.history = ExportHistory()
        self.match_backend = match_backend
        self.connections = {
            c.connection_id: ConnectionExportState(
                c,
                self.history,
                strict_order=strict_order,
                match_backend=match_backend,
            )
            for c in connections
        }
        self.buffer = BufferManager(capacity_bytes=capacity_bytes)

    # -- events --------------------------------------------------------------
    @property
    def is_connected(self) -> bool:
        """Whether any importer consumes this region."""
        return bool(self.connections)

    def on_request(self, connection_id: str, request_ts: float) -> RequestOutcome:
        """Dispatch a forwarded request to the right connection.

        Objects already buffered inside the request's acceptable region
        become candidates of this window for the Eq. (1) ledger.
        """
        conn = self.connections[connection_id]
        outcome = conn.on_request(request_ts)
        if outcome.window < 0:
            # Re-ask: no new window to attribute, and the recorded
            # match may have been sent and evicted already — only
            # re-send data that is actually still buffered.
            applied = outcome.applied
            if (
                applied is not None
                and applied.send_now is not None
                and not self.buffer.has(applied.send_now)
            ):
                outcome = RequestOutcome(
                    response=outcome.response,
                    window=outcome.window,
                    applied=ApplyOutcome(
                        answer=applied.answer, send_now=None, was_news=False
                    ),
                )
            return outcome
        low, high = conn.policy.region(request_ts)
        self.buffer.attribute_window(low, high, outcome.window)
        return outcome

    def on_buddy_answer(self, connection_id: str, answer: FinalAnswer) -> ApplyOutcome:
        """Learn a final answer disseminated by the rep (buddy-help)."""
        return self.connections[connection_id].apply_answer(answer, source="buddy")

    def on_export(self, ts: float, nbytes: int, memcpy_cost: float,
                  payload: object | None = None) -> ExportOutcome:
        """Process one export call; see module docstring for the rules.

        *memcpy_cost* is the virtual cost the runtime would charge if
        the object is buffered; it is recorded in the buffer ledger
        only when buffering actually happens.
        """
        if not self.connections:
            # Nobody imports this region: the framework does nothing at
            # all (the paper's low-overhead unconnected-region path).
            self.history.add(ts)
            return ExportOutcome(
                decision=ExportDecision.NOOP,
                window=None,
                send_connections=(),
                replaced=(),
                new_responses=(),
            )
        self.history.add(ts)

        votes: list[tuple[str, ExportDecision, int | None, float | None]] = []
        for cid, conn in self.connections.items():
            decision, window, replaced_ts = conn.vote_export(ts)
            votes.append((cid, decision, window, replaced_ts))
        buddy_skip = False
        buddy_enabler: tuple[str, float] | None = None

        send_connections = tuple(cid for cid, d, _w, _r in votes if d is ExportDecision.SEND)
        all_skip = all(d is ExportDecision.SKIP for _c, d, _w, _r in votes)
        window = next((w for _c, _d, w, _r in votes if w is not None), None)

        replaced_entries: list[BufferEntry] = []
        if send_connections:
            decision = ExportDecision.SEND
            # Buffered but NOT yet marked sent: the runtime marks it
            # when the pieces actually leave, and until then the
            # connection's answer record keeps the entry alive.
            self.buffer.buffer(ts, nbytes, memcpy_cost, window=window, payload=payload)
        elif all_skip:
            decision = ExportDecision.SKIP
            for cid, conn in self.connections.items():
                if not conn.skip_is_buddy(ts):
                    continue
                buddy_skip = True
                if buddy_enabler is None:
                    enabling_request = conn.buddy_enabler(ts)
                    if enabling_request is not None:
                        buddy_enabler = (cid, enabling_request)
        else:
            decision = ExportDecision.BUFFER
            self.buffer.buffer(ts, nbytes, memcpy_cost, window=window, payload=payload)
        if decision is not ExportDecision.SKIP:
            # Candidate replacement (Figure 8): the superseded object
            # is freed during the same export call, provided no other
            # connection still needs it.
            for _cid, _d, _w, replaced_ts in votes:
                if replaced_ts is not None and self.buffer.has(replaced_ts):
                    if not self._needed_by_any(replaced_ts):
                        replaced_entries.append(self.buffer.free(replaced_ts))

        # The stream advanced: PENDING requests may now be decidable.
        new_responses: list[tuple[str, MatchResponse]] = []
        post_sends: list[tuple[str, float]] = []
        for cid, conn in self.connections.items():
            for response, applied in conn.newly_decidable():
                new_responses.append((cid, response))
                if applied.send_now is not None:
                    post_sends.append((cid, applied.send_now))

        return ExportOutcome(
            decision=decision,
            window=window,
            send_connections=send_connections,
            replaced=tuple(replaced_entries),
            new_responses=tuple(new_responses),
            post_sends=tuple(post_sends),
            buddy_skip=buddy_skip,
            buddy_enabler=buddy_enabler,
        )

    def close(self) -> tuple[list[tuple[str, MatchResponse]], list[tuple[str, float]]]:
        """End of run: close the stream, resolve all open requests.

        Returns ``(responses, post_sends)``: the definitive responses
        to forward to the rep, and matches whose buffered data must
        still be transferred.
        """
        responses: list[tuple[str, MatchResponse]] = []
        post_sends: list[tuple[str, float]] = []
        for cid, conn in self.connections.items():
            for response, applied in conn.close_stream():
                responses.append((cid, response))
                if applied.send_now is not None:
                    post_sends.append((cid, applied.send_now))
        return responses, post_sends

    def would_skip(self, ts: float) -> bool:
        """Whether exporting *ts* now would be a SKIP (no buffer space
        needed).  Non-mutating; unanimous across connections."""
        if not self.connections:
            return True  # NOOP path
        return all(c.would_skip(ts) for c in self.connections.values())

    # -- eviction ---------------------------------------------------------------
    def evict_threshold(self) -> float:
        """Everything strictly below this can be freed (all connections agree)."""
        if not self.connections:
            return math.inf
        return min(c.skip_threshold for c in self.connections.values())

    def collect_evictions(self) -> list[BufferEntry]:
        """Free every buffered entry no connection can still need.

        Connections protect unsent matches and live candidates; an
        already-*sent* match below the threshold is done with and may
        be freed (paper Figure 5 line 23 frees the transferred D@19.6
        once the next request proves it dead).
        """
        keep: set[float] = set()
        for conn in self.connections.values():
            keep |= conn.keep_set()
        keep = {
            ts
            for ts in keep
            if not (self.buffer.has(ts) and self.buffer.get(ts).sent)
        }
        return self.buffer.free_below(self.evict_threshold(), keep=keep)

    def _needed_by_any(self, ts: float) -> bool:
        for conn in self.connections.values():
            if ts in conn.keep_set():
                return True
        return False
