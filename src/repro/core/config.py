"""The framework-level configuration file (paper Figure 2).

The file has two kinds of lines:

* **program lines** — ``NAME CLUSTER EXECUTABLE NPROCS [extra ...]``,
  describing how to deploy each participating program;
* **connection lines** — ``EXP.REGION IMP.REGION POLICY [TOL]``,
  connecting an exported region to an imported region under a match
  policy.

Blank lines and lines starting with ``#`` are ignored (the paper's
example uses a bare ``#`` to separate the two sections).  A line is
recognized as a connection when its first two tokens both contain a
dot; this keeps the parser order-independent and resilient to missing
separators.

Keeping the coupling specification outside the programs is a design
point of the paper: programs can be re-paired without recompilation,
and the framework can detect incorrect couplings at initialization
(e.g. an imported region nobody exports) as well as skip all buffering
work for exported regions nobody imports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.core.exceptions import ConfigError
from repro.match.policies import MatchPolicy, parse_policy


@dataclass(frozen=True)
class ProgramSpec:
    """One program deployment line.

    Attributes
    ----------
    name:
        Program identifier used in connection endpoints.
    cluster:
        Target cluster/host name (informational in the reproduction).
    executable:
        Path of the binary (informational in the reproduction).
    nprocs:
        Number of processes the program runs with.
    extra:
        Any remaining tokens, preserved verbatim.
    """

    name: str
    cluster: str
    executable: str
    nprocs: int
    extra: tuple[str, ...] = ()


@dataclass(frozen=True)
class Endpoint:
    """A ``program.region`` reference in a connection line."""

    program: str
    region: str

    def __str__(self) -> str:
        return f"{self.program}.{self.region}"

    @staticmethod
    def parse(token: str) -> "Endpoint":
        """Parse ``"P0.r1"``; the region name may itself contain dots."""
        program, sep, region = token.partition(".")
        if not sep or not program or not region:
            raise ConfigError(f"bad endpoint {token!r}: expected PROGRAM.REGION")
        return Endpoint(program=program, region=region)


@dataclass(frozen=True)
class ConnectionSpec:
    """One export/import connection with its match policy.

    ``disjoint_regions`` reflects the paper's (implicit) assumption
    that successive requests' acceptable regions do not overlap
    (Eq. 2); it widens the exporter's skip threshold after a match is
    known.  Set it false per-connection with a trailing
    ``overlapping`` token in the config line for the provably safe
    conservative behaviour.
    """

    exporter: Endpoint
    importer: Endpoint
    policy: MatchPolicy
    disjoint_regions: bool = True

    @property
    def connection_id(self) -> str:
        """Stable identifier, e.g. ``"P0.r1->P1.r1"``."""
        return f"{self.exporter}->{self.importer}"

    def __str__(self) -> str:
        suffix = "" if self.disjoint_regions else " overlapping"
        return f"{self.exporter} {self.importer} {self.policy}{suffix}"


@dataclass
class CouplingConfig:
    """Parsed configuration: programs plus connections."""

    programs: dict[str, ProgramSpec] = field(default_factory=dict)
    connections: list[ConnectionSpec] = field(default_factory=list)

    # -- queries ----------------------------------------------------------
    def connections_exporting(
        self, program: str, region: str | None = None
    ) -> list[ConnectionSpec]:
        """Connections whose exporter side is ``program[.region]``."""
        return [
            c
            for c in self.connections
            if c.exporter.program == program
            and (region is None or c.exporter.region == region)
        ]

    def connections_importing(
        self, program: str, region: str | None = None
    ) -> list[ConnectionSpec]:
        """Connections whose importer side is ``program[.region]``."""
        return [
            c
            for c in self.connections
            if c.importer.program == program
            and (region is None or c.importer.region == region)
        ]

    def is_region_exported(self, program: str, region: str) -> bool:
        """Whether anyone imports this exported region.

        ``False`` enables the paper's low-overhead path: exports of an
        unconnected region never buffer anything.
        """
        return bool(self.connections_exporting(program, region))

    # -- validation --------------------------------------------------------
    def validate(
        self,
        declared_exports: Mapping[str, Iterable[str]] | None = None,
        declared_imports: Mapping[str, Iterable[str]] | None = None,
    ) -> list[str]:
        """Check internal consistency; returns a list of warnings.

        Hard errors (unknown programs, duplicate connections, an
        *imported* region with no exporter) raise :class:`ConfigError`;
        soft issues (an exported region nobody imports — legal, just
        zero-overhead) are returned as warnings.

        *declared_exports* / *declared_imports* optionally map program
        name to the region names the program actually registers,
        enabling the early mismatch detection the paper describes.
        """
        warnings: list[str] = []
        seen: set[tuple[str, str]] = set()
        for conn in self.connections:
            for side, ep in (("exporter", conn.exporter), ("importer", conn.importer)):
                if ep.program not in self.programs:
                    raise ConfigError(
                        f"connection {conn.connection_id}: unknown {side} "
                        f"program {ep.program!r}"
                    )
            pair = (str(conn.exporter), str(conn.importer))
            if pair in seen:
                raise ConfigError(f"duplicate connection {conn.connection_id}")
            seen.add(pair)
            if conn.exporter.program == conn.importer.program:
                raise ConfigError(
                    f"connection {conn.connection_id} couples a program to itself"
                )
        # The declared-region maps may be partial (cover only some
        # programs); connections touching undeclared programs are
        # checked at runtime registration instead.
        if declared_exports is not None:
            for conn in self.connections:
                ep = conn.exporter
                if ep.program not in declared_exports:
                    continue
                regions = set(declared_exports.get(ep.program, ()))
                if ep.region not in regions:
                    raise ConfigError(
                        f"connection {conn.connection_id}: program {ep.program!r} "
                        f"does not export region {ep.region!r} (exports {sorted(regions)})"
                    )
            for prog, regions in declared_exports.items():
                for region in regions:
                    if not self.is_region_exported(prog, region):
                        warnings.append(
                            f"exported region {prog}.{region} has no importer "
                            "(exports of it will be zero-overhead no-ops)"
                        )
        if declared_imports is not None:
            for conn in self.connections:
                ep = conn.importer
                if ep.program not in declared_imports:
                    continue
                regions = set(declared_imports.get(ep.program, ()))
                if ep.region not in regions:
                    raise ConfigError(
                        f"connection {conn.connection_id}: program {ep.program!r} "
                        f"does not import region {ep.region!r} (imports {sorted(regions)})"
                    )
            for prog, regions in declared_imports.items():
                for region in regions:
                    if not self.connections_importing(prog, region):
                        raise ConfigError(
                            f"imported region {prog}.{region} has no exporter"
                        )
        return warnings


def parse_config(text: str) -> CouplingConfig:
    """Parse configuration *text* (see module docstring for the format)."""
    config = CouplingConfig()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        if len(tokens) >= 3 and "." in tokens[0] and "." in tokens[1]:
            config.connections.append(_parse_connection(tokens, lineno))
        else:
            spec = _parse_program(tokens, lineno)
            if spec.name in config.programs:
                raise ConfigError(f"line {lineno}: duplicate program {spec.name!r}")
            config.programs[spec.name] = spec
    return config


def load_config(path: str | Path) -> CouplingConfig:
    """Read and parse a configuration file."""
    return parse_config(Path(path).read_text(encoding="utf-8"))


def _parse_program(tokens: Sequence[str], lineno: int) -> ProgramSpec:
    if len(tokens) < 4:
        raise ConfigError(
            f"line {lineno}: program line needs NAME CLUSTER EXECUTABLE NPROCS, "
            f"got {' '.join(tokens)!r}"
        )
    name, cluster, executable, nprocs_s, *extra = tokens
    try:
        nprocs = int(nprocs_s)
    except ValueError:
        raise ConfigError(
            f"line {lineno}: bad process count {nprocs_s!r} for program {name!r}"
        ) from None
    if nprocs <= 0:
        raise ConfigError(f"line {lineno}: nprocs must be positive, got {nprocs}")
    return ProgramSpec(
        name=name,
        cluster=cluster,
        executable=executable,
        nprocs=nprocs,
        extra=tuple(extra),
    )


def _parse_connection(tokens: Sequence[str], lineno: int) -> ConnectionSpec:
    exporter = Endpoint.parse(tokens[0])
    importer = Endpoint.parse(tokens[1])
    rest = list(tokens[2:])
    disjoint = True
    if rest and rest[-1].lower() == "overlapping":
        disjoint = False
        rest.pop()
    try:
        policy = parse_policy(" ".join(rest))
    except ValueError as exc:
        raise ConfigError(f"line {lineno}: {exc}") from None
    return ConnectionSpec(
        exporter=exporter,
        importer=importer,
        policy=policy,
        disjoint_regions=disjoint,
    )
