"""Framework exception hierarchy."""

from __future__ import annotations


class FrameworkError(RuntimeError):
    """Base class for coupling-framework errors."""


class ConfigError(FrameworkError):
    """A configuration file is malformed or inconsistent.

    Raised at initialization time — the paper emphasizes that a
    separate configuration enables *early* detection of incorrect
    couplings (e.g. an imported region with no exporter).
    """


class PropertyViolationError(FrameworkError):
    """Property 1 (collective operation semantics) was violated.

    Some processes of one program transferred different timestamp
    sequences, or answered inconsistently for the same request.
    """


class ProtocolError(FrameworkError):
    """Messages arrived that the coupling protocol does not allow."""
