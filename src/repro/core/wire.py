"""Wire messages of the coupling protocol.

Shared by the two runtimes — the DES coupler
(:mod:`repro.core.coupler`) and the live threaded coupler
(:mod:`repro.core.live`) — so both speak exactly the same protocol:

* importer process → importer rep: :class:`ImpProcRequest`
* importer rep → exporter rep:     :class:`ReqToExpRep`
* exporter rep → exporter process: :class:`FwdRequest`
* exporter process → exporter rep: :class:`ProcResponse`
* exporter rep → exporter process: :class:`BuddyMsg`   (buddy-help)
* exporter rep → importer rep:     :class:`AnswerToImpRep`
* importer rep → importer process: :class:`AnswerToProc`
* exporter process → importer process: :class:`DataPiece`
* runtime → its own service loops:  :class:`Shutdown`  (no wire cost)

Sequence numbers
----------------
Every message carries a ``seq`` field, stamped by the sending runtime
from a per-coupler counter (``-1`` means "not stamped", e.g. in unit
tests that build messages by hand).  Receivers discard a ``seq`` they
have already processed, which makes *wire-level duplication* (a fault,
or a duplicated delivery) harmless.  *Retransmissions* are new sends
and get fresh sequence numbers — they are deduplicated one level up,
by the rep state machines' idempotent request handling (see
``docs/resilience.md``).

``CTL_NBYTES`` models headers plus a few scalar fields — connection
id, timestamp, rank, and the sequence word all fit comfortably, so the
constant is unchanged by the seq field.  Retransmitted and duplicated
control messages are real sends and are charged at full ``CTL_NBYTES``
each, keeping the DES traffic/timing model honest under faults.

Trace contexts
--------------
Every control message also carries an optional ``trace`` field: a
:class:`~repro.obs.trace.TraceContext` (trace id + parent span id)
stamped by the sending runtime when causal tracing is enabled
(``RunOptions(causal_trace=True)``).  ``None`` — the default, and the
only value ever stamped when tracing is off — keeps hand-built test
messages and untraced runs byte-identical to before.  Like the seq
word, the two trace integers ride inside ``CTL_NBYTES``.  Duplicated
deliveries carry the *same* context as the original; retransmissions
get a fresh span id but keep the original trace id, so the causal DAG
of an import survives the fault layer intact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.region import RectRegion
from repro.match.result import FinalAnswer, MatchResponse
from repro.obs.trace import TraceContext

#: Modelled wire size of a control message (headers + a few scalars,
#: including the sequence number).
CTL_NBYTES = 64


@dataclass(frozen=True)
class ReqToExpRep:
    """Importer rep → exporter rep: a deduplicated request."""

    connection_id: str
    request_ts: float
    seq: int = -1
    trace: TraceContext | None = None


@dataclass(frozen=True)
class FwdRequest:
    """Exporter rep → exporter process: evaluate this request."""

    connection_id: str
    request_ts: float
    seq: int = -1
    trace: TraceContext | None = None


@dataclass(frozen=True)
class ProcResponse:
    """Exporter process → exporter rep: a (possibly updated) response."""

    connection_id: str
    rank: int
    response: MatchResponse
    seq: int = -1
    trace: TraceContext | None = None


@dataclass(frozen=True)
class BuddyMsg:
    """Exporter rep → exporter process: the final answer (buddy-help)."""

    connection_id: str
    answer: FinalAnswer
    seq: int = -1
    trace: TraceContext | None = None


@dataclass(frozen=True)
class AnswerToImpRep:
    """Exporter rep → importer rep: the final answer."""

    connection_id: str
    answer: FinalAnswer
    seq: int = -1
    trace: TraceContext | None = None


@dataclass(frozen=True)
class ImpProcRequest:
    """Importer process → its own rep: this rank wants *request_ts*."""

    connection_id: str
    request_ts: float
    rank: int
    seq: int = -1
    trace: TraceContext | None = None


@dataclass(frozen=True)
class AnswerToProc:
    """Importer rep → importer process: the final answer."""

    connection_id: str
    answer: FinalAnswer
    seq: int = -1
    trace: TraceContext | None = None


@dataclass(frozen=True)
class DataPiece:
    """Exporter process → importer process: one scheduled piece."""

    connection_id: str
    match_ts: float
    src_rank: int
    region: RectRegion
    data: np.ndarray | None
    nbytes: int
    seq: int = -1


#: Modelled wire size of a frame header (batch length + checksum word).
FRAME_HEADER_NBYTES = 16


@dataclass(frozen=True)
class Frame:
    """A batch of control-plane messages coalesced into one wire unit.

    When a runtime runs with ``batch_control`` enabled, the per-tick
    fan-out of a representative (forwarded requests, buddy answers,
    rep↔rep notifications) going to the *same* destination mailbox is
    sent as one frame instead of many small messages.  The frame is one
    physical send: it pays latency once, its bytes serialize once on
    the modelled wire, and the fault layer draws once per frame — drop
    loses the whole batch, duplication replays it (member-level seq
    dedup makes the replay harmless).

    Members are stamped with their own sequence numbers *before*
    framing, so receivers unpack and dedup each member exactly as if
    it had travelled alone.  The frame's own ``seq`` identifies the
    physical unit in traces.

    Only ``("rep", ...)`` / ``("ctl", ...)`` control traffic is framed:
    data-plane mailboxes match on member payload types and expect bare
    :class:`DataPiece` / :class:`AnswerToProc` messages.
    """

    messages: tuple[object, ...]
    nbytes: int
    seq: int = -1


def frame_nbytes(member_bytes_total: int) -> int:
    """Modelled wire size of a frame whose members total *member_bytes_total*."""
    return FRAME_HEADER_NBYTES + member_bytes_total


@dataclass(frozen=True)
class Shutdown:
    """Runtime-internal: stop a service loop (live runtime only).

    Never crosses the modelled network, so it carries no sequence
    number and no wire cost.
    """
