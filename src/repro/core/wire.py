"""Wire messages of the coupling protocol.

Shared by the two runtimes — the DES coupler
(:mod:`repro.core.coupler`) and the live threaded coupler
(:mod:`repro.core.live`) — so both speak exactly the same protocol:

* importer process → importer rep: :class:`ImpProcRequest`
* importer rep → exporter rep:     :class:`ReqToExpRep`
* exporter rep → exporter process: :class:`FwdRequest`
* exporter process → exporter rep: :class:`ProcResponse`
* exporter rep → exporter process: :class:`BuddyMsg`   (buddy-help)
* exporter rep → importer rep:     :class:`AnswerToImpRep`
* importer rep → importer process: :class:`AnswerToProc`
* exporter process → importer process: :class:`DataPiece`
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.region import RectRegion
from repro.match.result import FinalAnswer, MatchResponse

#: Modelled wire size of a control message (headers + a few scalars).
CTL_NBYTES = 64


@dataclass(frozen=True)
class ReqToExpRep:
    """Importer rep → exporter rep: a deduplicated request."""

    connection_id: str
    request_ts: float


@dataclass(frozen=True)
class FwdRequest:
    """Exporter rep → exporter process: evaluate this request."""

    connection_id: str
    request_ts: float


@dataclass(frozen=True)
class ProcResponse:
    """Exporter process → exporter rep: a (possibly updated) response."""

    connection_id: str
    rank: int
    response: MatchResponse


@dataclass(frozen=True)
class BuddyMsg:
    """Exporter rep → exporter process: the final answer (buddy-help)."""

    connection_id: str
    answer: FinalAnswer


@dataclass(frozen=True)
class AnswerToImpRep:
    """Exporter rep → importer rep: the final answer."""

    connection_id: str
    answer: FinalAnswer


@dataclass(frozen=True)
class ImpProcRequest:
    """Importer process → its own rep: this rank wants *request_ts*."""

    connection_id: str
    request_ts: float
    rank: int


@dataclass(frozen=True)
class AnswerToProc:
    """Importer rep → importer process: the final answer."""

    connection_id: str
    answer: FinalAnswer


@dataclass(frozen=True)
class DataPiece:
    """Exporter process → importer process: one scheduled piece."""

    connection_id: str
    match_ts: float
    src_rank: int
    region: RectRegion
    data: np.ndarray | None
    nbytes: int


@dataclass(frozen=True)
class Shutdown:
    """Runtime-internal: stop a service loop (live runtime only)."""
