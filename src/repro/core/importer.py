"""Import-side per-process state.

Importing is much simpler than exporting: a process issues a request
(collectively — every process of the program issues the same sequence),
waits for its rep to deliver the final answer, and on ``MATCH`` waits
for its scheduled data pieces.  The state object tracks ordering and
latency statistics; the blocking itself happens in the runtime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.match.result import FinalAnswer, MatchKind
from repro.util.validation import require


@dataclass
class ImportRecord:
    """Bookkeeping for one import call of one process."""

    request_ts: float
    issued_at: float
    answered_at: float | None = None
    completed_at: float | None = None
    answer: FinalAnswer | None = None
    #: Causal trace id of this import (set when tracing is enabled);
    #: links the record to its happens-before DAG in the causal report.
    trace_id: int | None = None

    @property
    def latency(self) -> float | None:
        """Request-to-completion virtual time, if finished."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.issued_at


@dataclass
class RegionImportState:
    """One process's import state for one imported region."""

    region_name: str
    connection_id: str
    records: list[ImportRecord] = field(default_factory=list)
    _last_request_ts: float = -math.inf

    def start_request(
        self, request_ts: float, now: float, trace_id: int | None = None
    ) -> ImportRecord:
        """Validate ordering and open a new import record."""
        require(
            request_ts > self._last_request_ts,
            f"import requests must have increasing timestamps: "
            f"{request_ts} after {self._last_request_ts}",
        )
        self._last_request_ts = request_ts
        record = ImportRecord(request_ts=request_ts, issued_at=now, trace_id=trace_id)
        self.records.append(record)
        return record

    def on_answer(self, record: ImportRecord, answer: FinalAnswer, now: float) -> None:
        """The final answer arrived for *record*."""
        require(record.answer is None, "record already answered")
        require(
            answer.request_ts == record.request_ts,
            f"answer for @{answer.request_ts} applied to request @{record.request_ts}",
        )
        record.answer = answer
        record.answered_at = now

    def complete(self, record: ImportRecord, now: float) -> None:
        """All data pieces arrived (or NO_MATCH short-circuited)."""
        require(record.answer is not None, "completing an unanswered import")
        record.completed_at = now

    # -- reporting ---------------------------------------------------------
    @property
    def match_count(self) -> int:
        """Completed imports that returned data."""
        return sum(
            1
            for r in self.records
            if r.answer is not None and r.answer.kind is MatchKind.MATCH
        )

    @property
    def no_match_count(self) -> int:
        """Completed imports that returned nothing."""
        return sum(
            1
            for r in self.records
            if r.answer is not None and r.answer.kind is MatchKind.NO_MATCH
        )

    def mean_latency(self) -> float:
        """Mean completed-import latency (0.0 when none completed)."""
        vals = [r.latency for r in self.records if r.latency is not None]
        return sum(vals) / len(vals) if vals else 0.0
