"""Stable high-level API: ``repro.api.run(config, programs, options)``.

See :mod:`repro.api.facade` for the facade and
:mod:`repro.api.options` for the frozen options record.  Everything
here is also re-exported at the package top level (``repro.run`` …).
"""

from repro.api.facade import Program, RunResult, build, run
from repro.api.options import RunOptions

__all__ = ["Program", "RunOptions", "RunResult", "build", "run"]
