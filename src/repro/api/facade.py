"""One-call facade over the two coupled-simulation runtimes.

:func:`run` takes a configuration (text, parsed object, or file path),
a list of :class:`Program` declarations, and a frozen
:class:`~repro.api.options.RunOptions`; it builds the right runtime,
wires programs/regions/connections, drives the run to completion and
returns a :class:`RunResult` handle over the finished simulation.

    import repro

    result = repro.run(
        CONFIG_TEXT,
        [
            repro.Program("E", main=e_main, regions={"d": RegionDef(...)}),
            repro.Program("I", main=i_main, regions={"d": RegionDef(...)}),
        ],
        repro.RunOptions(seed=3),
    )
    print(result.sim_time, result.counters["ctl_messages"])
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.api.options import RunOptions
from repro.core.config import CouplingConfig, load_config
from repro.core.coupler import CoupledSimulation
from repro.core.live import LiveCoupledSimulation
from repro.obs.collect import collect_metrics
from repro.obs.metrics import MetricsSnapshot
from repro.obs.paper import PaperMetrics, compute_paper_metrics
from repro.obs.profile import DEFAULT_INTERVAL, Profile, SamplingProfiler
from repro.obs.spans import TimelineSet, build_timelines
from repro.obs.trace import CausalReport, build_causal_report
from repro.util.tracing import Tracer


@dataclass(frozen=True)
class Program:
    """Declaration of one program to couple.

    Attributes
    ----------
    name:
        Program name; must match the configuration (or pass *nprocs*
        for programs absent from it).
    main:
        Per-process entry point — a generator function on the DES
        runtime, a plain callable on the live runtime; ``None`` for
        passive programs driven externally.
    regions:
        Region name → :class:`~repro.core.coupler.RegionDef` for every
        region a connection endpoint of this program names.
    nprocs:
        Process count override (defaults to the configuration's).
    """

    name: str
    main: Callable[..., Any] | None = None
    regions: Mapping[str, Any] = field(default_factory=dict)
    nprocs: int | None = None


@dataclass
class RunResult:
    """Handle over a finished coupled-simulation run.

    The full runtime object stays reachable via :attr:`simulation` for
    anything not surfaced here.
    """

    simulation: CoupledSimulation | LiveCoupledSimulation
    options: RunOptions
    #: Virtual completion time (DES) or 0.0 (live runs on wall clock).
    sim_time: float
    #: Wire traffic and resilience counters of the run.
    counters: dict[str, int]
    #: Sampling profile of the run (``RunOptions(profile=...)`` only).
    profile: Profile | None = None
    #: Lazily computed observability views (see the properties below).
    _metrics: MetricsSnapshot | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _timeline: TimelineSet | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _causal: CausalReport | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def context(self, program: str, rank: int) -> Any:
        """The per-process context of *program* rank *rank*."""
        return self.simulation.context(program, rank)

    def buffer_stats(self, program: str, rank: int, region: str) -> Any:
        """The Eq. 1–2 buffer ledger of one rank's region."""
        return self.simulation.buffer_stats(program, rank, region)

    @property
    def tracer(self) -> Tracer:
        """The tracer that recorded the run."""
        return self.simulation.tracer

    @property
    def fault_stats(self) -> dict[str, Any] | None:
        """What the fault layer did, when one was installed (DES)."""
        stats = getattr(self.simulation.world.network, "stats", None) if isinstance(
            self.simulation, CoupledSimulation
        ) else None
        return stats.as_dict() if stats is not None else None

    @property
    def metrics(self) -> MetricsSnapshot:
        """The run's metrics, paper quantities included (computed once).

        Collected post-hoc from the runtime's always-on counters (see
        :mod:`repro.obs.collect`), so it works with a
        :class:`~repro.util.tracing.NullTracer` and costs nothing
        during the run.
        """
        if self._metrics is None:
            registry = collect_metrics(self.simulation)
            self._metrics = registry.snapshot(paper=self.paper_metrics)
        return self._metrics

    @property
    def paper_metrics(self) -> PaperMetrics:
        """Eq. 1–2 ``T_ub``, buddy-help savings, lags (computed once)."""
        metrics = self._metrics
        if metrics is not None and metrics.paper is not None:
            return metrics.paper
        return compute_paper_metrics(self.simulation)

    @property
    def timeline(self) -> TimelineSet:
        """Per-rank span timelines over the run (computed once)."""
        if self._timeline is None:
            self._timeline = build_timelines(self.simulation)
        return self._timeline

    @property
    def causal(self) -> CausalReport:
        """The run's causal report: per-import happens-before DAGs,
        critical paths with stage attribution, and buddy-help lead
        times (computed once).

        Requires ``RunOptions(causal_trace=True)``; raises otherwise.
        """
        if self._causal is None:
            self._causal = build_causal_report(self.simulation)
        return self._causal

    def check_property1(self, raise_on_violation: bool = True) -> list[str]:
        """Check Property-1 conformance (needs ``record_operations``)."""
        if not isinstance(self.simulation, CoupledSimulation):
            raise TypeError("check_property1 is only available on the DES runtime")
        return self.simulation.check_property1(raise_on_violation=raise_on_violation)


def _counters(sim: CoupledSimulation | LiveCoupledSimulation) -> dict[str, int]:
    names = (
        "ctl_messages",
        "ctl_bytes",
        "data_messages",
        "data_bytes",
        "frames_sent",
        "framed_messages",
        "retransmissions",
        "dup_discards",
    )
    return {n: int(getattr(sim, n)) for n in names if hasattr(sim, n)}


def _close_sinks(sinks: tuple[Any, ...]) -> None:
    """Close every telemetry sink, best effort."""
    for sink in sinks:
        close = getattr(sink, "close", None)
        if close is not None:
            with contextlib.suppress(Exception):
                close()


def _abort_telemetry(sim: Any, sinks: tuple[Any, ...], exc: BaseException) -> None:
    """Error-path teardown: emit one aborted final snapshot, close sinks.

    The periodic telemetry emitters only write their ``final`` record
    on a clean finish; when a run raises, this flushes a last snapshot
    with ``final: true`` and ``aborted: true`` (plus the error) so the
    ``repro.telemetry/v1`` stream still terminates properly.
    """
    if sinks:
        with contextlib.suppress(Exception):
            from repro.obs.stream import build_snapshot

            record = build_snapshot(sim, final=True)
            record["aborted"] = True
            record["error"] = f"{type(exc).__name__}: {exc}"
            for sink in sinks:
                with contextlib.suppress(Exception):
                    sink.emit(record)
    _close_sinks(sinks)


def build(
    config: CouplingConfig | str | Path,
    programs: list[Program] | tuple[Program, ...],
    options: RunOptions | None = None,
) -> CoupledSimulation | LiveCoupledSimulation:
    """Construct and wire a runtime without starting it.

    :func:`run` is the usual entry point; ``build`` exists for callers
    that need the unstarted simulation (custom drivers, tests).
    """
    opts = options if options is not None else RunOptions()
    cfg = load_config(config) if isinstance(config, Path) else config
    sim: CoupledSimulation | LiveCoupledSimulation
    if opts.runtime == "live":
        sim = LiveCoupledSimulation(
            cfg,
            options=opts,
        )
    else:
        sim = CoupledSimulation(
            cfg,
            options=opts,
        )
    for p in programs:
        sim.add_program(p.name, main=p.main, regions=dict(p.regions), nprocs=p.nprocs)
    return sim


def run(
    config: CouplingConfig | str | Path,
    programs: list[Program] | tuple[Program, ...],
    options: RunOptions | None = None,
    *,
    until: float | None = None,
) -> RunResult:
    """Build, wire and drive a coupled simulation to completion.

    Parameters
    ----------
    config:
        Configuration text (Figure-2 format), a parsed
        :class:`~repro.core.config.CouplingConfig`, or a
        :class:`~pathlib.Path` to a configuration file.
    programs:
        The :class:`Program` declarations to couple.
    options:
        A :class:`~repro.api.options.RunOptions`; defaults to
        ``RunOptions()`` (DES runtime, fast-test preset).
    until:
        Optional virtual-time horizon (DES runtime only).
    """
    opts = options if options is not None else RunOptions()
    sim = build(config, programs, opts)
    sinks = tuple(opts.telemetry_sinks)
    prov = getattr(sim, "_prov", None)
    profiler: SamplingProfiler | None = None
    if opts.profile:
        interval = (
            DEFAULT_INTERVAL if isinstance(opts.profile, bool) else float(opts.profile)
        )
        profiler = SamplingProfiler(interval=interval)
        profiler.start()
    try:
        if isinstance(sim, LiveCoupledSimulation):
            if until is not None:
                raise ValueError("until= applies to the DES runtime only")
            sim.run()
            sim_time = 0.0
        else:
            sim.run(until=until)
            sim_time = sim.sim.now
    except BaseException as exc:
        # A crashing run must still leave its sinks well-formed: one
        # last ``final`` snapshot marked ``aborted`` (so a follower
        # sees the stream end rather than hang on a truncated file),
        # then every sink flushed and closed.  The provenance log gets
        # the same guarantee: whatever was captured is written out with
        # an end record naming the error, so a crash is still auditable
        # (though only clean logs replay).
        if profiler is not None:
            with contextlib.suppress(Exception):
                profiler.stop()
        _abort_telemetry(sim, sinks, exc)
        if prov is not None:
            with contextlib.suppress(Exception):
                prov.abort(exc)
                prov.close()
        raise
    profile = profiler.stop() if profiler is not None else None
    _close_sinks(sinks)
    result = RunResult(
        simulation=sim,
        options=opts,
        sim_time=sim_time,
        counters=_counters(sim),
        profile=profile,
    )
    if prov is not None:
        prov.finalize(result)
        prov.close()
    return result
