"""Frozen run configuration for the :mod:`repro.api` facade.

One immutable :class:`RunOptions` value captures everything that used
to travel as loose constructor keywords into
:class:`~repro.core.coupler.CoupledSimulation` and
:class:`~repro.core.live.LiveCoupledSimulation`.  Both runtimes accept
``options=RunOptions(...)`` directly; the old keywords still work but
emit a single :class:`DeprecationWarning` per construction.

Being frozen, options values are safe to share between runs, stash in
benchmark specs, and derive with :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.exceptions import ConfigError
from repro.costs import FAST_TEST, ClusterPreset
from repro.faults import FaultPlan
from repro.match.backend import MATCH_BACKENDS
from repro.util.tracing import Tracer
from repro.util.validation import require

#: Runtimes :func:`repro.api.run` can drive.
RUNTIMES = ("des", "live")


@dataclass(frozen=True)
class RunOptions:
    """Everything configurable about one coupled-simulation run.

    Attributes
    ----------
    runtime:
        ``"des"`` (deterministic discrete-event runtime, the default)
        or ``"live"`` (OS threads and wall-clock time).
    preset:
        Cost-model bundle for the DES runtime (ignored by ``"live"``).
    buddy_help:
        Enable the paper's buddy-help optimization.
    seed:
        Root RNG seed for compute jitter etc. (DES runtime).
    tracer:
        A :class:`~repro.util.tracing.Tracer` receiving protocol
        events; ``None`` records nothing.
    buffer_capacity_bytes:
        Optional bound on each process's framework buffer.
    buffer_policy:
        ``"error"`` (raise when an export would exceed the capacity)
        or ``"block"`` (backpressure until eviction frees space).
    record_operations:
        Record every export/import into an operation log so Property-1
        conformance can be checked after the run.
    sanitize:
        Online protocol sanitizer mode: ``True``/``"strict"`` raises at
        the first invariant violation, ``"report"`` only accumulates
        findings, ``None`` consults the ``REPRO_SANITIZE`` environment
        variable, ``False`` disables.
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan`; the DES network then
        executes it and the protocol switches to resilient mode.
    fault_injector:
        Live-runtime fault hook (``"live"`` only), typically a
        :class:`repro.faults.injectors.LiveFaultInjector`.
    retransmit_timeout:
        Base request-retransmission timeout; ``None`` derives a bound
        from the network model (DES, when a fault plan is given) or the
        runtime default (live, when an injector is installed).
    max_retransmits:
        Retransmission attempts per request before giving up; ``None``
        uses the runtime default (12 on DES, 8 on live).
    batch_control:
        Coalesce per-tick control-message fan-out into per-destination
        :class:`~repro.core.wire.Frame` batches.  Answer-equivalent but
        not trace-identical to unbatched runs (one wire latency per
        frame); the fault layer then draws once per frame.
    time_scale:
        Live runtime: multiplier on ``ctx.compute`` sleeps.
    default_timeout:
        Live runtime: blocking-receive timeout in wall seconds.
    causal_trace:
        Record a happens-before DAG of every control-plane message
        (request → match → aggregate → answer, buddy notifications,
        retransmissions).  The DAG is available as ``sim.causal`` /
        :attr:`repro.api.RunResult.causal` and exportable as Chrome
        trace flow events.  Off by default: the no-op path costs one
        attribute check per send.
    telemetry_sinks:
        Streaming telemetry sinks (objects with ``emit(record)`` and
        ``close()``, e.g. :class:`repro.obs.stream.JsonlSink` or
        :class:`repro.obs.stream.OpenMetricsSink`).  Empty (default)
        disables streaming entirely.
    telemetry_interval:
        Period between telemetry snapshots — virtual seconds on the
        DES runtime, wall seconds on the live runtime.
    race_monitor:
        Live runtime: a :class:`repro.analysis.races.RaceMonitor`
        receiving shared-state accesses and synchronization events
        (lock acquire/release, message send/receive) from every
        thread of the run, for happens-before race detection.
        ``None`` (default) disables instrumentation entirely.
    match_backend:
        Which match engine the exporter processes use: ``"legacy"``
        (per-request scan, the reference) or ``"sorted"`` (batched
        sort/sweep resolution, see
        :class:`repro.match.SortedMatchEngine`).  Decisions are
        bit-identical between backends; only throughput differs.
        Unknown names raise :class:`~repro.core.exceptions.ConfigError`
        at construction time.
    provenance:
        Path of a ``repro.prov/v1`` provenance log to record the run
        into (``.gz`` suffix gzips it).  Recording captures every wire
        message, DES scheduling decision, match resolution, RNG draw,
        and process operation, making the run bit-exactly replayable
        from the log alone via :func:`repro.obs.replay.replay`.
        Implies :attr:`causal_trace`.  ``None`` (default) disables
        recording entirely.
    profile:
        Attach a :class:`repro.obs.profile.SamplingProfiler` to the
        run: a background thread samples the driving thread's stack
        (no ``sys.setprofile`` hook — the run itself pays nothing per
        call) and attributes samples to the framework's phases.  The
        result is available as :attr:`repro.api.RunResult.profile`.
        ``True`` uses the default ~200 Hz cadence; a positive float
        sets the sampling period in seconds.
    """

    runtime: str = "des"
    preset: ClusterPreset = FAST_TEST
    buddy_help: bool = True
    seed: int = 0
    tracer: Tracer | None = None
    buffer_capacity_bytes: int | None = None
    buffer_policy: str = "error"
    record_operations: bool = False
    sanitize: bool | str | None = None
    fault_plan: FaultPlan | None = None
    fault_injector: Callable[..., Any] | None = None
    retransmit_timeout: float | None = None
    max_retransmits: int | None = None
    batch_control: bool = False
    time_scale: float = 1.0
    default_timeout: float = 30.0
    causal_trace: bool = False
    telemetry_sinks: tuple[Any, ...] = ()
    telemetry_interval: float = 0.25
    race_monitor: Any | None = None
    match_backend: str = "legacy"
    provenance: str | None = None
    profile: bool | float = False

    def __post_init__(self) -> None:
        require(
            self.runtime in RUNTIMES,
            f"runtime must be one of {RUNTIMES}, got {self.runtime!r}",
        )
        if self.match_backend not in MATCH_BACKENDS:
            raise ConfigError(
                f"match_backend must be one of {MATCH_BACKENDS}, "
                f"got {self.match_backend!r}"
            )
        require(
            self.buffer_policy in ("error", "block"),
            "buffer_policy: 'error' or 'block'",
        )
        require(self.telemetry_interval > 0, "telemetry_interval must be > 0")
        if not isinstance(self.profile, bool):
            require(self.profile > 0, "profile interval must be > 0 seconds")
        if self.provenance is not None:
            require(
                isinstance(self.provenance, str) and bool(self.provenance),
                "provenance must be None or a non-empty path string",
            )
        # Tuple-ify eagerly so a list literal works at the call site but
        # the frozen value stays hashable-by-parts and safely shareable.
        if not isinstance(self.telemetry_sinks, tuple):
            object.__setattr__(self, "telemetry_sinks", tuple(self.telemetry_sinks))
