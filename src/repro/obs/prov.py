"""Provenance-grade run recording: the ``repro.prov/v1`` log.

Opt-in via ``RunOptions(provenance="run.prov")``, a
:class:`ProvenanceRecorder` captures *everything* a coupled run does
into one compact, versioned, append-only JSONL+binary log:

* a **header** — enough frozen context (configuration text, JSON-safe
  run options, cost-model preset, fault plan, region declarations) to
  rebuild the run with no scenario code at all;
* every **operation** each process issues against its context
  (``export`` / ``import_begin`` / ``import_wait`` / ``compute`` /
  ``compute_elements``), the ground truth :mod:`repro.obs.replay`
  re-drives through the real runtime;
* every **wire message** on both planes (virtual send time, sequence
  number, src/dst address, payload type, plane, size, trace context);
* every **match-engine resolution** (backend-tagged, with the
  request's timestamp and the deciding export watermark);
* every **DES scheduling decision** that touches the kernel heap and
  every **RNG draw** from both :class:`~repro.util.rng.RngRegistry`
  registries (the coupler's and the network world's) — batch-encoded
  as base64 binary columns so record mode stays within a few percent
  of an uninstrumented run (see the ``prov_record_overhead`` micro).

The final record carries SHA-256 digests of the run's
``repro.report/v1`` and ``repro.causal/v1`` payloads, making every log
self-verifying: a replay is *bit-exact* exactly when it reproduces
those digests (see :func:`repro.obs.replay.verify_replay`).

Paths ending in ``.gz`` are written/read gzip-compressed.
"""

from __future__ import annotations

import base64
import gzip
import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import IO, Any

import numpy as np

__all__ = [
    "PROV_SCHEMA",
    "ProvenanceError",
    "ProvenanceLog",
    "ProvenanceRecorder",
    "build_header",
    "causal_payload",
    "open_text",
    "payload_digest",
    "read_log",
    "report_payload",
    "validate_provenance_log",
]

#: Version tag of the provenance log format.
PROV_SCHEMA = "repro.prov/v1"

#: Operation kinds a process context records (and replay re-drives).
OP_KINDS = frozenset(
    {"export", "import_begin", "import_wait", "compute", "compute_elements"}
)

#: RunOptions fields serialized into the header verbatim (all
#: JSON-safe scalars).  Deliberately excludes the unserializable
#: fields (preset, tracer, fault_plan, fault_injector, telemetry_sinks,
#: race_monitor) and ``provenance`` itself — replays re-derive those.
_OPTION_FIELDS = (
    "runtime",
    "buddy_help",
    "seed",
    "buffer_capacity_bytes",
    "buffer_policy",
    "record_operations",
    "sanitize",
    "retransmit_timeout",
    "max_retransmits",
    "batch_control",
    "time_scale",
    "default_timeout",
    "causal_trace",
    "telemetry_interval",
    "match_backend",
)


class ProvenanceError(Exception):
    """A malformed, truncated, or unreplayable provenance log."""


def open_text(path: str | Path, mode: str) -> IO[str]:
    """Open *path* for text I/O, gzip-compressed when it ends ``.gz``.

    *mode* is a binary-style mode (``"a"``, ``"w"``, ``"r"``); the text
    layer (UTF-8) is added here.  Shared with
    :class:`repro.obs.stream.JsonlSink`.
    """
    p = str(path)
    if p.endswith(".gz"):
        return gzip.open(p, mode + "t", encoding="utf-8")
    return open(p, mode, encoding="utf-8")


def payload_digest(payload: dict[str, Any]) -> str:
    """Canonical SHA-256 of a JSON payload (sorted keys, compact)."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _b64(arr: np.ndarray) -> str:
    return base64.b64encode(arr.tobytes()).decode("ascii")


def _unb64(text: str, dtype: str) -> np.ndarray:
    return np.frombuffer(base64.b64decode(text.encode("ascii")), dtype=dtype)


# -- shared payload builders ----------------------------------------------
# Record and replay must build the compared payloads through the SAME
# code path, else formatting drift would read as nondeterminism.


def report_payload(result: Any) -> dict[str, Any]:
    """The canonical ``repro.report/v1`` payload of *result*.

    Backend-identifying samples are dropped so a log recorded under one
    match backend stays comparable when decisions (not throughput
    internals) are what is being replayed.
    """
    from repro.obs.export import REPORT_SCHEMA

    metrics = result.metrics.as_dict()
    samples = metrics.get("metrics")
    if isinstance(samples, list):
        metrics = dict(metrics)
        metrics["metrics"] = [
            s
            for s in samples
            if not (isinstance(s, dict) and s.get("name") == "match.backend")
        ]
    return {
        "schema": REPORT_SCHEMA,
        "runs": [
            {
                "name": "recorded",
                "sim_time": result.sim_time,
                "counters": dict(result.counters),
                "metrics": metrics,
            }
        ],
    }


def causal_payload(result: Any) -> dict[str, Any]:
    """The canonical ``repro.causal/v1`` payload of *result*."""
    out: dict[str, Any] = result.causal.as_dict()
    return out


# -- header ----------------------------------------------------------------


def _render_config(config: Any) -> str:
    """Re-render a parsed configuration as Figure-2 text.

    Round-trips through :func:`repro.core.config.parse_config`: program
    lines from the :class:`ProgramSpec` fields, a ``#`` separator, then
    ``str(connection)`` per connection line.
    """
    lines = []
    for spec in config.programs.values():
        line = f"{spec.name} {spec.cluster} {spec.executable} {spec.nprocs}"
        if spec.extra:
            line += " " + " ".join(spec.extra)
        lines.append(line)
    lines.append("#")
    lines.extend(str(c) for c in config.connections)
    return "\n".join(lines) + "\n"


def _decomp_to_dict(decomp: Any) -> dict[str, Any]:
    from repro.data.decomposition import BlockCyclicDecomposition, BlockDecomposition

    if isinstance(decomp, BlockDecomposition):
        return {
            "kind": "block",
            "global_shape": list(decomp.global_shape),
            "grid": list(decomp.grid),
        }
    if isinstance(decomp, BlockCyclicDecomposition):
        return {
            "kind": "block_cyclic",
            "global_shape": list(decomp.global_shape),
            "nprocs": decomp.nprocs,
            "block_size": decomp.block_size,
            "axis": decomp.axis,
        }
    raise ProvenanceError(
        f"cannot record decomposition type {type(decomp).__name__}"
    )


def decomp_from_dict(d: dict[str, Any]) -> Any:
    """Inverse of the header's decomposition serialization."""
    from repro.data.decomposition import BlockCyclicDecomposition, BlockDecomposition

    kind = d.get("kind")
    if kind == "block":
        return BlockDecomposition(
            tuple(d["global_shape"]), tuple(d["grid"])
        )
    if kind == "block_cyclic":
        return BlockCyclicDecomposition(
            tuple(d["global_shape"]),
            int(d["nprocs"]),
            int(d["block_size"]),
            axis=int(d["axis"]),
        )
    raise ProvenanceError(f"unknown decomposition kind {kind!r}")


def _region_to_dict(rdef: Any) -> dict[str, Any]:
    section = rdef.section
    return {
        "decomp": _decomp_to_dict(rdef.decomp),
        "dtype": np.dtype(rdef.dtype).name,
        "section": None
        if section is None
        else [list(section.lo), list(section.hi)],
    }


def options_to_dict(options: Any) -> dict[str, Any]:
    """The JSON-safe scalar fields of a :class:`RunOptions`.

    ``telemetry_active`` records whether any telemetry sink was
    attached (the sinks themselves are unserializable): the periodic
    sampler is a real DES process whose timers consume event sequence
    numbers and can extend ``sim_time`` past the last user main, so a
    bit-exact replay must re-create it (with a null sink) whenever the
    recorded run had one.
    """
    d = {name: getattr(options, name) for name in _OPTION_FIELDS}
    d["telemetry_active"] = bool(getattr(options, "telemetry_sinks", ()))
    return d


def options_from_dict(
    d: dict[str, Any],
    *,
    preset: Any = None,
    fault_plan: Any = None,
) -> Any:
    """Rebuild a :class:`RunOptions` from header data.

    Unknown keys are ignored so newer logs stay readable by the fields
    this version knows about.
    """
    from repro.api.options import RunOptions
    from repro.costs import FAST_TEST

    kwargs = {k: d[k] for k in _OPTION_FIELDS if k in d}
    return RunOptions(
        preset=preset if preset is not None else FAST_TEST,
        fault_plan=fault_plan,
        **kwargs,
    )


def preset_from_dict(d: dict[str, Any]) -> Any:
    """Rebuild a :class:`ClusterPreset` from its ``asdict`` form."""
    from repro.costs import ClusterPreset
    from repro.costs.models import (
        ComputeCostModel,
        MemoryCostModel,
        NetworkCostModel,
    )

    return ClusterPreset(
        name=str(d["name"]),
        memory=MemoryCostModel(**d["memory"]),
        network=NetworkCostModel(**d["network"]),
        compute=ComputeCostModel(**d["compute"]),
    )


def fault_plan_from_dict(d: dict[str, Any]) -> Any:
    """Rebuild a :class:`FaultPlan` from its ``describe()`` form."""
    from repro.faults import FaultPlan

    kwargs = dict(d)
    planes = kwargs.get("planes")
    if planes is not None:
        kwargs["planes"] = frozenset(planes)
    return FaultPlan(**kwargs)


def build_header(sim: Any, runtime: str) -> dict[str, Any]:
    """The header record of a run's provenance log.

    Called at the end of runtime finalization, when every program and
    region has been registered.  Captures everything a replay needs to
    rebuild the run from the log alone.
    """
    options = sim.options
    preset = getattr(sim, "preset", None)
    programs: dict[str, Any] = {}
    for name, prog in sim._programs.items():
        programs[name] = {
            "nprocs": prog.nprocs,
            "has_main": prog.main is not None,
            "regions": {
                rname: _region_to_dict(rdef)
                for rname, rdef in prog.regions.items()
            },
        }
    opts = options_to_dict(options)
    # Provenance always forces causal tracing on (the causal payload is
    # part of the log's self-verification), so record the effective
    # value: a replay must run with the same instrumentation.
    opts["causal_trace"] = True
    return {
        "schema": PROV_SCHEMA,
        "t": "header",
        "version": 1,
        "runtime": runtime,
        "seed": options.seed,
        "match_backend": options.match_backend,
        "config": _render_config(sim.config),
        "options": opts,
        "preset": None if preset is None else asdict(preset),
        "fault_plan": None
        if options.fault_plan is None
        else options.fault_plan.describe(),
        "programs": programs,
    }


# -- recorder ---------------------------------------------------------------


class ProvenanceRecorder:
    """Buffered writer of one run's ``repro.prov/v1`` log.

    Hot-path hooks are designed to be as close to free as recording
    allows: wire/match/op events append one small tuple to a Python
    list, the DES scheduling hook *is* ``list.append`` (installed as
    ``sim._sched_hook``), and RNG draws go through one bound-method
    call.  Everything except the header is encoded and written once, at
    :meth:`close` — scheduling decisions and RNG draws as base64 binary
    columns.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = str(path)
        self._fh: IO[str] | None = None
        self._header: dict[str, Any] | None = None
        self._wire: list[
            tuple[float, int, Any, Any, str, str, int, Any]
        ] = []
        self._match: list[tuple[float, str, int, float, str, float, str]] = []
        self._ops: dict[tuple[str, int], list[dict[str, Any]]] = {}
        #: ``(fire_time, priority, seq)`` per heap insertion; the DES
        #: kernel's ``_sched_hook`` is bound to ``self.sched.append``.
        self.sched: list[tuple[float, int, int]] = []
        self._rng: dict[str, tuple[list[str], list[int], list[float]]] = {}
        self._end: dict[str, Any] | None = None
        self.closed = False

    # -- hot-path hooks ----------------------------------------------------
    def on_wire(
        self,
        now: float,
        seq: int,
        src: Any,
        dst: Any,
        msg: str,
        plane: str,
        nbytes: int,
        trace: Any = None,
    ) -> None:
        """One control- or data-plane message send."""
        self._wire.append((now, seq, src, dst, msg, plane, nbytes, trace))

    def on_match(
        self,
        now: float,
        cid: str,
        rank: int,
        request_ts: float,
        kind: str,
        latest_export_ts: float,
        backend: str,
    ) -> None:
        """One match-engine resolution leaving an exporter process."""
        self._match.append(
            (now, cid, rank, request_ts, kind, latest_export_ts, backend)
        )

    def on_op(self, program: str, rank: int, op: dict[str, Any]) -> None:
        """One process-context operation (the replay ground truth)."""
        self._ops.setdefault((program, rank), []).append(op)

    def on_rng(self, stream: str, method: str, value: Any) -> None:
        """One draw from a named RNG stream."""
        methods, codes, values = self._rng.setdefault(stream, ([], [], []))
        try:
            code = methods.index(method)
        except ValueError:
            code = len(methods)
            methods.append(method)
        codes.append(code)
        try:
            values.append(float(value))
        except (TypeError, ValueError):
            values.append(float("nan"))

    # -- lifecycle ---------------------------------------------------------
    def set_header(self, header: dict[str, Any]) -> None:
        """Write the header line immediately (append-only from here)."""
        if self._header is not None:
            return
        self._header = header
        self._fh = open_text(self.path, "w")
        self._fh.write(json.dumps(header, sort_keys=True) + "\n")
        self._fh.flush()

    def finalize(self, result: Any) -> dict[str, Any]:
        """Compute the end record (payload digests) from a clean run."""
        report = report_payload(result)
        end: dict[str, Any] = {
            "t": "end",
            "aborted": False,
            "error": None,
            "sim_time": result.sim_time,
            "counters": dict(result.counters),
            "report_sha256": payload_digest(report),
            "causal_sha256": None,
        }
        try:
            end["causal_sha256"] = payload_digest(causal_payload(result))
        except Exception:  # noqa: BLE001 - live runs have no causal DAG
            end["causal_sha256"] = None
        self._end = end
        return end

    def abort(self, exc: BaseException) -> None:
        """Mark the log as coming from a run that raised."""
        self._end = {
            "t": "end",
            "aborted": True,
            "error": f"{type(exc).__name__}: {exc}",
            "sim_time": None,
            "counters": {},
            "report_sha256": None,
            "causal_sha256": None,
        }

    def close(self) -> None:
        """Encode and append every buffered record; idempotent."""
        if self.closed:
            return
        self.closed = True
        if self._fh is None:
            # Header never written (run died before finalize_setup):
            # still produce a well-formed, clearly-aborted log.
            self._header = {"schema": PROV_SCHEMA, "t": "header", "version": 1}
            self._fh = open_text(self.path, "w")
            self._fh.write(json.dumps(self._header, sort_keys=True) + "\n")
        fh = self._fh
        write = fh.write
        for (program, rank), ops in sorted(self._ops.items()):
            for op in ops:
                row = {"t": "op", "p": program, "r": rank}
                row.update(op)
                write(json.dumps(row, sort_keys=True) + "\n")
        for now, seq, src, dst, msg, plane, nbytes, trace in self._wire:
            write(
                json.dumps(
                    {
                        "t": "wire",
                        "now": now,
                        "seq": seq,
                        "src": list(src) if isinstance(src, tuple) else src,
                        "dst": list(dst) if isinstance(dst, tuple) else dst,
                        "msg": msg,
                        "plane": plane,
                        "nbytes": nbytes,
                        "trace": None
                        if trace is None
                        else [trace.trace_id, trace.span_id],
                    },
                    sort_keys=True,
                )
                + "\n"
            )
        for now, cid, rank, request_ts, kind, latest, backend in self._match:
            write(
                json.dumps(
                    {
                        "t": "match",
                        "now": now,
                        "cid": cid,
                        "rank": rank,
                        "request_ts": request_ts,
                        "kind": kind,
                        "latest": latest,
                        "backend": backend,
                    },
                    sort_keys=True,
                )
                + "\n"
            )
        if self.sched:
            times = np.array([s[0] for s in self.sched], dtype=np.float64)
            prios = np.array([s[1] for s in self.sched], dtype=np.uint8)
            seqs = np.array([s[2] for s in self.sched], dtype=np.uint64)
            write(
                json.dumps(
                    {
                        "t": "sched",
                        "n": len(self.sched),
                        "times": _b64(times),
                        "prios": _b64(prios),
                        "seqs": _b64(seqs),
                    },
                    sort_keys=True,
                )
                + "\n"
            )
        for stream, (methods, codes, values) in sorted(self._rng.items()):
            write(
                json.dumps(
                    {
                        "t": "rng",
                        "stream": stream,
                        "n": len(codes),
                        "methods": methods,
                        "codes": _b64(np.array(codes, dtype=np.uint16)),
                        "values": _b64(np.array(values, dtype=np.float64)),
                    },
                    sort_keys=True,
                )
                + "\n"
            )
        end = self._end or {
            "t": "end",
            "aborted": True,
            "error": "run never finalized",
            "sim_time": None,
            "counters": {},
            "report_sha256": None,
            "causal_sha256": None,
        }
        write(json.dumps(end, sort_keys=True) + "\n")
        fh.close()
        self._fh = None


# -- reader -----------------------------------------------------------------


@dataclass
class RngTrace:
    """Decoded draws of one named RNG stream."""

    stream: str
    methods: tuple[str, ...]
    codes: np.ndarray
    values: np.ndarray

    def __len__(self) -> int:
        return int(self.codes.size)


@dataclass
class ProvenanceLog:
    """A parsed ``repro.prov/v1`` log."""

    path: str
    header: dict[str, Any]
    #: ``(program, rank)`` → ordered operation rows.
    ops: dict[tuple[str, int], list[dict[str, Any]]]
    wire: list[dict[str, Any]]
    matches: list[dict[str, Any]]
    #: ``(times, prios, seqs)`` arrays, or ``None`` when no heap
    #: scheduling happened (or the log predates the batch).
    sched: tuple[np.ndarray, np.ndarray, np.ndarray] | None
    rng: dict[str, RngTrace] = field(default_factory=dict)
    end: dict[str, Any] | None = None

    @property
    def runtime(self) -> str:
        """The runtime that produced the log (``des`` or ``live``)."""
        return str(self.header.get("runtime", "des"))

    @property
    def aborted(self) -> bool:
        """Whether the recorded run raised (or never finished)."""
        return self.end is None or bool(self.end.get("aborted"))

    def ops_for(self, program: str) -> dict[int, list[dict[str, Any]]]:
        """Rank → operation rows of one program."""
        return {
            rank: rows
            for (prog, rank), rows in self.ops.items()
            if prog == program
        }


def read_log(path: str | Path) -> ProvenanceLog:
    """Parse a provenance log file (gzip-aware via the ``.gz`` suffix)."""
    header: dict[str, Any] | None = None
    ops: dict[tuple[str, int], list[dict[str, Any]]] = {}
    wire: list[dict[str, Any]] = []
    matches: list[dict[str, Any]] = []
    sched: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
    rng: dict[str, RngTrace] = {}
    end: dict[str, Any] | None = None
    try:
        fh = open_text(path, "r")
    except OSError as exc:
        raise ProvenanceError(f"cannot open {path}: {exc}") from exc
    with fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ProvenanceError(
                    f"{path}:{lineno}: not JSON: {exc}"
                ) from exc
            if not isinstance(row, dict):
                raise ProvenanceError(f"{path}:{lineno}: not an object")
            t = row.get("t")
            if t == "header":
                if row.get("schema") != PROV_SCHEMA:
                    raise ProvenanceError(
                        f"{path}: schema must be {PROV_SCHEMA!r}, "
                        f"got {row.get('schema')!r}"
                    )
                header = row
            elif t == "op":
                key = (str(row["p"]), int(row["r"]))
                ops.setdefault(key, []).append(row)
            elif t == "wire":
                wire.append(row)
            elif t == "match":
                matches.append(row)
            elif t == "sched":
                sched = (
                    _unb64(row["times"], "float64"),
                    _unb64(row["prios"], "uint8"),
                    _unb64(row["seqs"], "uint64"),
                )
            elif t == "rng":
                rng[str(row["stream"])] = RngTrace(
                    stream=str(row["stream"]),
                    methods=tuple(row["methods"]),
                    codes=_unb64(row["codes"], "uint16"),
                    values=_unb64(row["values"], "float64"),
                )
            elif t == "end":
                end = row
            else:
                raise ProvenanceError(
                    f"{path}:{lineno}: unknown record type {t!r}"
                )
    if header is None:
        raise ProvenanceError(f"{path}: no header record")
    return ProvenanceLog(
        path=str(path),
        header=header,
        ops=ops,
        wire=wire,
        matches=matches,
        sched=sched,
        rng=rng,
        end=end,
    )


def validate_provenance_log(log: ProvenanceLog) -> list[str]:
    """Structural problems with *log*; empty when it conforms."""
    problems: list[str] = []
    header = log.header
    if header.get("schema") != PROV_SCHEMA:
        problems.append(
            f"header schema must be {PROV_SCHEMA!r}, got {header.get('schema')!r}"
        )
    if header.get("runtime") not in ("des", "live"):
        problems.append(f"unknown runtime {header.get('runtime')!r}")
    programs = header.get("programs")
    if not isinstance(programs, dict):
        problems.append("header.programs must be an object")
        programs = {}
    if not isinstance(header.get("config"), str):
        problems.append("header.config must be the configuration text")
    if not isinstance(header.get("options"), dict):
        problems.append("header.options must be an object")
    for (prog, rank), rows in log.ops.items():
        if prog not in programs:
            problems.append(f"op rows for undeclared program {prog!r}")
            continue
        nprocs = int(programs[prog].get("nprocs", 0))
        if not (0 <= rank < nprocs):
            problems.append(f"op rows for out-of-range rank {prog}.{rank}")
        for i, row in enumerate(rows):
            if row.get("op") not in OP_KINDS:
                problems.append(
                    f"ops[{prog}.{rank}][{i}]: unknown op {row.get('op')!r}"
                )
    for i, row in enumerate(log.wire):
        for key in ("now", "seq", "msg", "plane", "nbytes"):
            if key not in row:
                problems.append(f"wire[{i}]: missing {key}")
        if row.get("plane") not in ("ctl", "data", None):
            problems.append(f"wire[{i}]: bad plane {row.get('plane')!r}")
    for i, row in enumerate(log.matches):
        for key in ("now", "cid", "rank", "request_ts", "kind", "backend"):
            if key not in row:
                problems.append(f"match[{i}]: missing {key}")
    if log.sched is not None:
        times, prios, seqs = log.sched
        if not (times.size == prios.size == seqs.size):
            problems.append("sched: column lengths differ")
    if log.end is None:
        problems.append("no end record (truncated log)")
    elif not log.end.get("aborted"):
        if not isinstance(log.end.get("report_sha256"), str):
            problems.append("end.report_sha256 missing on a clean run")
    return problems
