"""Bit-exact replay, time-travel queries, and differential replay.

A ``repro.prov/v1`` log (see :mod:`repro.obs.prov`) carries enough to
reconstruct its run *from the log alone*: the configuration text, the
frozen run options, the cost-model preset, the fault plan, every
region declaration, and the ordered operation stream of every process.
:func:`replay` synthesizes one generator main per program from those
operation rows and re-runs the real DES runtime — determinism (named
RNG streams, a totally ordered kernel, seeded fault draws) does the
rest, and :func:`verify_replay` proves it by comparing SHA-256 digests
of the replayed ``repro.report/v1`` and ``repro.causal/v1`` payloads
against the ones recorded in the log's end record.

On top of plain replay:

* **time travel** — :func:`materialize` replays up to a virtual time
  ``T`` and materializes the buffer ledgers, the PENDING frontier, or
  the match resolutions at that instant;
* **differential replay** — :func:`differential_replay` re-runs the
  log under an edited fault plan or match tolerance and emits a
  structured diff of the two causal DAGs (:func:`diff_causal`):
  exactly which resolutions changed their answer/aggregation case or
  retransmission count, and which buddy-skips appeared or vanished.

Live-runtime logs are audit-only: wall-clock scheduling is not
reproducible, so :func:`replay` refuses them with a clear error.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Callable, Generator

import numpy as np

from repro.obs.prov import (
    ProvenanceError,
    ProvenanceLog,
    PROV_SCHEMA,
    causal_payload,
    decomp_from_dict,
    fault_plan_from_dict,
    options_from_dict,
    payload_digest,
    preset_from_dict,
    read_log,
    report_payload,
)

__all__ = [
    "diff_causal",
    "differential_replay",
    "materialize",
    "replay",
    "verify_replay",
]

#: Time-travel queries :func:`materialize` understands.
QUERIES = ("ledger", "pending", "matches")


def _load(log: ProvenanceLog | str | Path) -> ProvenanceLog:
    if isinstance(log, ProvenanceLog):
        return log
    return read_log(log)


def _check_replayable(log: ProvenanceLog) -> None:
    if log.runtime != "des":
        raise ProvenanceError(
            f"cannot replay a {log.runtime!r}-runtime log: wall-clock "
            "scheduling is not reproducible (live logs are audit-only)"
        )
    if log.aborted:
        detail = "" if log.end is None else f" ({log.end.get('error')})"
        raise ProvenanceError(
            f"log {log.path} records an aborted run{detail}; "
            "only clean runs replay bit-exactly"
        )


def _make_main(
    ops_by_rank: dict[int, list[dict[str, Any]]]
) -> Callable[[Any], Generator[Any, Any, None]]:
    """One generator main re-driving a program's recorded operations."""

    def main(ctx: Any) -> Generator[Any, Any, None]:
        pending: dict[tuple[str, float], Any] = {}
        for op in ops_by_rank.get(ctx.rank, []):
            kind = op["op"]
            if kind == "compute":
                yield from ctx.compute(op["seconds"])
            elif kind == "compute_elements":
                yield from ctx.compute_elements(
                    int(op["elements"]), scale=float(op["scale"])
                )
            elif kind == "export":
                data = None
                dtype = op.get("dtype")
                if dtype is not None:
                    data = np.zeros(
                        ctx.local_region(op["region"]).shape,
                        dtype=np.dtype(dtype),
                    )
                yield from ctx.export(op["region"], op["ts"], data)
            elif kind == "import_begin":
                key = (op["region"], op["ts"])
                pending[key] = ctx.import_begin(op["region"], op["ts"])
            elif kind == "import_wait":
                handle = pending.pop((op["region"], op["ts"]))
                yield from ctx.import_wait(handle)
            else:  # validated at read time; belt and braces
                raise ProvenanceError(f"unknown recorded op {kind!r}")

    return main


def _rebuild_programs(log: ProvenanceLog) -> list[Any]:
    from repro.api.facade import Program
    from repro.core.coupler import RegionDef
    from repro.data.region import RectRegion

    programs: list[Any] = []
    for name, decl in log.header["programs"].items():
        regions: dict[str, Any] = {}
        for rname, rd in decl["regions"].items():
            section = rd.get("section")
            regions[rname] = RegionDef(
                decomp=decomp_from_dict(rd["decomp"]),
                dtype=np.dtype(rd["dtype"]),
                section=None
                if section is None
                else RectRegion(tuple(section[0]), tuple(section[1])),
            )
        ops_by_rank = log.ops_for(name)
        main = (
            _make_main(ops_by_rank)
            if decl.get("has_main") and ops_by_rank is not None
            else None
        )
        programs.append(
            Program(
                name=name,
                main=main,
                regions=regions,
                nprocs=int(decl["nprocs"]),
            )
        )
    return programs


def _rebuild_config(log: ProvenanceLog, tolerance: float | None) -> Any:
    from repro.core.config import parse_config
    from repro.match.policies import MatchPolicy, PolicyKind

    config = parse_config(log.header["config"])
    if tolerance is None:
        return config
    config.connections = [
        conn
        if conn.policy.kind is PolicyKind.EXACT
        else dataclasses.replace(
            conn, policy=MatchPolicy(conn.policy.kind, float(tolerance))
        )
        for conn in config.connections
    ]
    return config


class _NullSink:
    """Discards telemetry; replays the recorded sampler's schedule only."""

    def emit(self, record: dict[str, Any]) -> None:
        pass

    def close(self) -> None:
        pass


def replay(
    log: ProvenanceLog | str | Path,
    *,
    until: float | None = None,
    match_backend: str | None = None,
    fault_plan: Any | None = None,
    tolerance: float | None = None,
) -> Any:
    """Re-run a recorded run from its log alone; returns a ``RunResult``.

    Defaults reproduce the recorded run bit-exactly.  *match_backend*
    replays under a different match engine (decisions must not change);
    *fault_plan* / *tolerance* are the differential-replay edits.
    *until* stops the replay at a virtual time (time-travel queries).
    """
    from repro.api.facade import run

    log = _load(log)
    _check_replayable(log)
    header = log.header
    preset = (
        preset_from_dict(header["preset"])
        if header.get("preset") is not None
        else None
    )
    plan = fault_plan
    if plan is None and header.get("fault_plan") is not None:
        plan = fault_plan_from_dict(header["fault_plan"])
    options = options_from_dict(
        header["options"], preset=preset, fault_plan=plan
    )
    if header["options"].get("telemetry_active"):
        # The recorded run had a telemetry sampler: a real DES process
        # whose periodic timers consume seq numbers and hold the clock
        # until the last sampling tick.  Re-create it against a null
        # sink so the replayed event schedule is identical.
        options = dataclasses.replace(options, telemetry_sinks=(_NullSink(),))
    if match_backend is not None:
        options = dataclasses.replace(options, match_backend=match_backend)
    config = _rebuild_config(log, tolerance)
    programs = _rebuild_programs(log)
    return run(config, programs, options, until=until)


def verify_replay(
    log: ProvenanceLog | str | Path,
    *,
    match_backend: str | None = None,
) -> dict[str, Any]:
    """Replay *log* and check bit-exactness against its recorded digests.

    Same-backend replays must reproduce both payload digests exactly.
    Cross-backend replays (an explicit *match_backend* differing from
    the recorded one) are held to the paper's guarantee instead: every
    resolution's answer kind, aggregation case, and retransmission
    count must match (throughput internals may differ).
    """
    log = _load(log)
    recorded_backend = str(log.header.get("match_backend", "legacy"))
    backend = recorded_backend if match_backend is None else match_backend
    cross = backend != recorded_backend
    result = replay(log, match_backend=backend if cross else None)
    report = report_payload(result)
    causal = causal_payload(result)
    end = log.end or {}
    payload: dict[str, Any] = {
        "schema": PROV_SCHEMA,
        "log": log.path,
        "recorded_backend": recorded_backend,
        "replayed_backend": backend,
        "cross_backend": cross,
        "sim_time": result.sim_time,
        "report_sha256": payload_digest(report),
        "causal_sha256": payload_digest(causal),
        "recorded_report_sha256": end.get("report_sha256"),
        "recorded_causal_sha256": end.get("causal_sha256"),
    }
    if cross:
        payload["report_identical"] = None
        payload["causal_identical"] = None
        payload["decisions_match"] = _decisions(causal) == _decisions_from_end(
            log
        )
        payload["ok"] = bool(payload["decisions_match"])
    else:
        payload["report_identical"] = (
            payload["report_sha256"] == end.get("report_sha256")
        )
        payload["causal_identical"] = (
            payload["causal_sha256"] == end.get("causal_sha256")
        )
        payload["decisions_match"] = None
        payload["ok"] = bool(
            payload["report_identical"] and payload["causal_identical"]
        )
    return payload


def _decisions(causal: dict[str, Any]) -> dict[tuple[Any, ...], tuple[Any, ...]]:
    """``(connection, request, who)`` → the decision triple."""
    out: dict[tuple[Any, ...], tuple[Any, ...]] = {}
    for r in causal.get("resolutions", []):
        key = (r.get("connection"), r.get("request"), r.get("who"))
        out[key] = (r.get("answer_kind"), r.get("case"), r.get("retransmits"))
    return out


def _decisions_from_end(log: ProvenanceLog) -> dict[tuple[Any, ...], tuple[Any, ...]]:
    """The recorded run's decisions, recovered by a same-backend replay.

    The log stores digests, not the full causal payload, so the
    baseline DAG is reconstructed the same way every other derived view
    is: by replaying the log under its own recorded backend.
    """
    baseline = replay(log)
    return _decisions(causal_payload(baseline))


# -- time travel ------------------------------------------------------------


def materialize(
    log: ProvenanceLog | str | Path,
    at: float,
    query: str,
    *,
    match_backend: str | None = None,
) -> dict[str, Any]:
    """Materialize run state at virtual time *at*.

    * ``ledger`` — every buffered entry of every exporter's buffer
      ledger (Eq. 1–2 state): timestamps, sizes, windows, sent flags;
    * ``pending`` — the PENDING frontier: import requests issued but
      not yet resolved at *at*;
    * ``matches`` — the recorded match-engine resolutions with
      ``now <= at`` (straight from the log, no re-run needed).
    """
    log = _load(log)
    if query not in QUERIES:
        raise ProvenanceError(
            f"unknown query {query!r}; expected one of {QUERIES}"
        )
    payload: dict[str, Any] = {
        "schema": PROV_SCHEMA,
        "log": log.path,
        "at": float(at),
        "query": query,
    }
    if query == "matches":
        payload["rows"] = [
            row for row in log.matches if float(row["now"]) <= float(at)
        ]
        return payload
    result = replay(log, until=float(at), match_backend=match_backend)
    rows: list[dict[str, Any]] = []
    sim = result.simulation
    for pname, prog in sorted(sim._programs.items()):
        for ctx in prog.contexts:
            if query == "ledger":
                for region, st in sorted(ctx.export_states.items()):
                    for ts in st.buffer.timestamps():
                        entry = st.buffer.get(ts)
                        rows.append(
                            {
                                "program": pname,
                                "rank": ctx.rank,
                                "region": region,
                                "ts": entry.ts,
                                "nbytes": entry.nbytes,
                                "memcpy_cost": entry.memcpy_cost,
                                "window": entry.window,
                                "sent": entry.sent,
                            }
                        )
            else:  # pending
                for region, ist in sorted(ctx.import_states.items()):
                    for record in ist.records:
                        if record.completed_at is not None:
                            continue
                        rows.append(
                            {
                                "program": pname,
                                "rank": ctx.rank,
                                "region": region,
                                "request_ts": record.request_ts,
                                "issued_at": record.issued_at,
                                "answered": record.answered_at is not None,
                            }
                        )
    payload["rows"] = rows
    return payload


# -- differential replay ----------------------------------------------------


def _res_key(r: dict[str, Any]) -> tuple[Any, ...]:
    return (r.get("connection"), r.get("request"), r.get("who"))


def _skip_key(b: dict[str, Any]) -> tuple[Any, ...]:
    return (b.get("who"), b.get("connection"), b.get("request"), b.get("export_ts"))


def diff_causal(
    before: dict[str, Any], after: dict[str, Any]
) -> dict[str, Any]:
    """A structured diff of two ``repro.causal/v1`` payloads.

    Resolutions are keyed by ``(connection, request_ts, who)`` and
    compared on their decision fields (answer kind, aggregation case,
    retransmission count); buddy-skips are keyed by
    ``(who, connection, request_ts, export_ts)``.  ``identical`` is a
    byte-level payload comparison, so an empty structured diff with
    ``identical: false`` means only latencies/span times moved.
    """
    b_res = {_res_key(r): r for r in before.get("resolutions", [])}
    a_res = {_res_key(r): r for r in after.get("resolutions", [])}
    fields = ("answer_kind", "case", "retransmits")
    changed = []
    for key in sorted(b_res.keys() & a_res.keys(), key=repr):
        b, a = b_res[key], a_res[key]
        delta = {
            f: {"before": b.get(f), "after": a.get(f)}
            for f in fields
            if b.get(f) != a.get(f)
        }
        if delta:
            changed.append(
                {
                    "connection": key[0],
                    "request": key[1],
                    "who": key[2],
                    "changed": delta,
                }
            )
    res_added = [a_res[k] for k in sorted(a_res.keys() - b_res.keys(), key=repr)]
    res_removed = [b_res[k] for k in sorted(b_res.keys() - a_res.keys(), key=repr)]
    b_skips = {_skip_key(s): s for s in before.get("buddy_skips", [])}
    a_skips = {_skip_key(s): s for s in after.get("buddy_skips", [])}
    skips_added = [
        a_skips[k] for k in sorted(a_skips.keys() - b_skips.keys(), key=repr)
    ]
    skips_removed = [
        b_skips[k] for k in sorted(b_skips.keys() - a_skips.keys(), key=repr)
    ]
    empty = not (
        changed or res_added or res_removed or skips_added or skips_removed
    )
    return {
        "schema": PROV_SCHEMA,
        "kind": "causal_diff",
        "identical": payload_digest(before) == payload_digest(after),
        "empty": empty,
        "resolutions": {
            "changed": changed,
            "added": res_added,
            "removed": res_removed,
        },
        "buddy_skips": {"added": skips_added, "removed": skips_removed},
        "spans": {
            "before": len(before.get("spans", [])),
            "after": len(after.get("spans", [])),
        },
    }


def differential_replay(
    log: ProvenanceLog | str | Path,
    *,
    fault_plan: Any | None = None,
    fault_plan_path: str | Path | None = None,
    tolerance: float | None = None,
    match_backend: str | None = None,
) -> dict[str, Any]:
    """Replay twice — recorded vs. edited — and diff the causal DAGs.

    The baseline is the unedited replay of *log* (bit-exact by the
    replay guarantee); the candidate applies an edited fault plan
    (object or JSON file) and/or an edited match tolerance.  The
    returned payload embeds :func:`diff_causal` under ``"diff"``.
    """
    log = _load(log)
    if fault_plan_path is not None:
        if fault_plan is not None:
            raise ProvenanceError("pass fault_plan or fault_plan_path, not both")
        with open(fault_plan_path, encoding="utf-8") as fh:
            fault_plan = fault_plan_from_dict(json.load(fh))
    base = replay(log, match_backend=match_backend)
    edited = replay(
        log,
        match_backend=match_backend,
        fault_plan=fault_plan,
        tolerance=tolerance,
    )
    before = causal_payload(base)
    after = causal_payload(edited)
    edits: dict[str, Any] = {}
    if fault_plan is not None:
        edits["fault_plan"] = fault_plan.describe()
    if tolerance is not None:
        edits["tolerance"] = float(tolerance)
    return {
        "schema": PROV_SCHEMA,
        "kind": "differential_replay",
        "log": log.path,
        "edits": edits,
        "base_sim_time": base.sim_time,
        "edited_sim_time": edited.sim_time,
        "diff": diff_causal(before, after),
    }
