"""Cross-session fleet rollups (schema ``repro.fleet/v1``).

One coupled run exports a ``repro.report/v1`` payload; a server runs
*hundreds* of them.  :class:`FleetRollup` is the aggregation layer in
between: it folds finished sessions — their terminal state, their
report's paper metrics (Eq. 2 ``T_ub``, PENDING-resolution latency,
buddy-help savings) and their telemetry drop counters — into
per-scenario aggregates with p50/p95/p99 quantiles, so the fleet-wide
shape of the paper's headline quantities stays visible while traffic
is flowing.

Design rules:

* **Commutative** — sessions may finish (and be observed) in any
  order; two rollups over the same session set are equal regardless of
  interleaving.  :meth:`FleetRollup.merge` combines rollups from
  different server processes the same way.
* **Error accounting** — every terminal state counts toward the
  session totals and the per-scenario ``error_rate``; only ``done``
  sessions (which carry a report) feed the latency histograms, so one
  crashed session never skews a p95.
* **Restart-safe** — :meth:`FleetRollup.as_dict` serializes the full
  histogram state (Welford aggregates + quantile reservoirs) and
  :meth:`FleetRollup.from_dict` restores it bit-exactly.

The rollup renders to OpenMetrics through the same
:class:`~repro.obs.stream.ExpositionBuilder` dialect the telemetry
sink uses; ``GET /metrics`` on :class:`~repro.serve.SessionServer`
serves exactly that text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.metrics import Histogram, MetricsSnapshot
from repro.obs.stream import ExpositionBuilder

__all__ = ["FLEET_SCHEMA", "ScenarioRollup", "FleetRollup"]

#: Schema tag stamped on every rollup payload.
FLEET_SCHEMA = "repro.fleet/v1"

#: Quantiles exported per latency family, as OpenMetrics label values.
_QUANTILES = (("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99))

#: The terminal states that count as errors for ``error_rate``.
_ERROR_STATES = ("failed", "cancelled")


@dataclass
class ScenarioRollup:
    """Aggregates over every finished session of one scenario."""

    scenario: str
    #: Terminal-state counts, e.g. ``{"done": 9, "failed": 1}``.
    sessions: dict[str, int] = field(default_factory=dict)
    #: Eq. 2 ``T_ub`` totals, one sample per successful session.
    t_ub: Histogram = field(default_factory=Histogram)
    #: Mean PENDING-resolution latency, one sample per successful
    #: session that resolved at least one PENDING answer.
    resolution: Histogram = field(default_factory=Histogram)
    #: Wall-clock session duration (created -> finished), successes only.
    duration: Histogram = field(default_factory=Histogram)
    #: Buddy-help savings summed across successful sessions.
    buddy_saved_total: float = 0.0
    buddy_skips: int = 0
    #: Telemetry volume/backpressure summed across *all* sessions.
    telemetry_records: int = 0
    telemetry_dropped: int = 0

    @property
    def total(self) -> int:
        """Sessions observed in any terminal state."""
        return sum(self.sessions.values())

    @property
    def errors(self) -> int:
        """Sessions that ended failed or cancelled."""
        return sum(self.sessions.get(s, 0) for s in _ERROR_STATES)

    @property
    def error_rate(self) -> float:
        """Errors over total (0.0 while nothing finished)."""
        total = self.total
        return self.errors / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form (full histogram state included)."""
        return {
            "scenario": self.scenario,
            "sessions": dict(sorted(self.sessions.items())),
            "total": self.total,
            "errors": self.errors,
            "error_rate": self.error_rate,
            "t_ub": {"summary": self.t_ub.summary(), "state": self.t_ub.as_state()},
            "resolution_latency": {
                "summary": self.resolution.summary(),
                "state": self.resolution.as_state(),
            },
            "duration_seconds": {
                "summary": self.duration.summary(),
                "state": self.duration.as_state(),
            },
            "buddy_saved_total": self.buddy_saved_total,
            "buddy_skips": self.buddy_skips,
            "telemetry": {
                "records": self.telemetry_records,
                "dropped": self.telemetry_dropped,
            },
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> ScenarioRollup:
        """Rebuild one scenario's rollup from :meth:`as_dict` output."""
        out = cls(scenario=str(payload["scenario"]))
        out.sessions = {
            str(k): int(v) for k, v in dict(payload.get("sessions", {})).items()
        }
        out.t_ub = Histogram.from_state(payload.get("t_ub", {}).get("state", {}))
        out.resolution = Histogram.from_state(
            payload.get("resolution_latency", {}).get("state", {})
        )
        out.duration = Histogram.from_state(
            payload.get("duration_seconds", {}).get("state", {})
        )
        out.buddy_saved_total = float(payload.get("buddy_saved_total", 0.0))
        out.buddy_skips = int(payload.get("buddy_skips", 0))
        telemetry = dict(payload.get("telemetry", {}))
        out.telemetry_records = int(telemetry.get("records", 0))
        out.telemetry_dropped = int(telemetry.get("dropped", 0))
        return out

    def merge(self, other: ScenarioRollup) -> ScenarioRollup:
        """A new rollup combining both (order-independent aggregates)."""
        out = ScenarioRollup(scenario=self.scenario)
        out.sessions = dict(self.sessions)
        for state, n in other.sessions.items():
            out.sessions[state] = out.sessions.get(state, 0) + n
        out.t_ub = self.t_ub.merge(other.t_ub)
        out.resolution = self.resolution.merge(other.resolution)
        out.duration = self.duration.merge(other.duration)
        out.buddy_saved_total = self.buddy_saved_total + other.buddy_saved_total
        out.buddy_skips = self.buddy_skips + other.buddy_skips
        out.telemetry_records = self.telemetry_records + other.telemetry_records
        out.telemetry_dropped = self.telemetry_dropped + other.telemetry_dropped
        return out


def _paper_block(report: dict[str, Any] | None) -> dict[str, Any]:
    """The paper-metrics dict of a ``repro.report/v1`` payload's run."""
    if not report:
        return {}
    runs = report.get("runs") or []
    if not runs:
        return {}
    metrics = runs[0].get("metrics") or {}
    paper = metrics.get("paper")
    return dict(paper) if isinstance(paper, dict) else {}


class FleetRollup:
    """The cross-session aggregate store behind ``GET /metrics``."""

    def __init__(self) -> None:
        self._scenarios: dict[str, ScenarioRollup] = {}

    def __len__(self) -> int:
        return len(self._scenarios)

    def scenario(self, name: str) -> ScenarioRollup:
        """The rollup for *name* (created empty on first use)."""
        rollup = self._scenarios.get(name)
        if rollup is None:
            rollup = ScenarioRollup(scenario=name)
            self._scenarios[name] = rollup
        return rollup

    def scenarios(self) -> list[ScenarioRollup]:
        """Every scenario rollup, sorted by name."""
        return [self._scenarios[k] for k in sorted(self._scenarios)]

    # -- observation -------------------------------------------------------
    def observe_session(
        self,
        *,
        scenario: str,
        state: str,
        report: dict[str, Any] | None = None,
        duration: float | None = None,
        telemetry_records: int = 0,
        telemetry_dropped: int = 0,
    ) -> None:
        """Fold one finished session into its scenario's aggregates.

        *state* must be terminal.  Failed/cancelled sessions count in
        the totals (and hence the error rate) but contribute nothing
        to the latency histograms — they have no trustworthy report.
        """
        rollup = self.scenario(scenario)
        rollup.sessions[state] = rollup.sessions.get(state, 0) + 1
        rollup.telemetry_records += telemetry_records
        rollup.telemetry_dropped += telemetry_dropped
        if state != "done":
            return
        if duration is not None and duration >= 0:
            rollup.duration.observe(duration)
        paper = _paper_block(report)
        if paper:
            rollup.t_ub.observe(float(paper.get("t_ub_total", 0.0)))
            rollup.buddy_saved_total += float(paper.get("buddy_saved_total", 0.0))
            rollup.buddy_skips += int(paper.get("buddy_skips", 0))
            pending = paper.get("pending_resolution") or {}
            if pending.get("count"):
                rollup.resolution.observe(float(pending.get("mean", 0.0)))

    def observe_report(self, payload: dict[str, Any], *, state: str = "done") -> None:
        """Fold a standalone ``repro.report/v1`` payload (offline use).

        Each run entry counts as one session of its recorded scenario.
        """
        for run in payload.get("runs") or []:
            self.observe_session(
                scenario=str(run.get("scenario", "unknown")),
                state=state,
                report={"runs": [run]},
            )

    def observe_metrics(self, scenario: str, snapshot: MetricsSnapshot) -> None:
        """Fold a live :class:`MetricsSnapshot` (one session's worth).

        Covers in-process runs that never produced a report payload:
        the snapshot's first-class paper metrics feed the same
        histograms ``observe_session`` fills from reports.
        """
        rollup = self.scenario(scenario)
        rollup.sessions["done"] = rollup.sessions.get("done", 0) + 1
        paper = snapshot.paper
        if paper is None:
            return
        rollup.t_ub.observe(paper.t_ub_total)
        rollup.buddy_saved_total += paper.buddy_saved_total
        rollup.buddy_skips += paper.buddy_skips
        if paper.pending_resolution.get("count"):
            rollup.resolution.observe(float(paper.pending_resolution.get("mean", 0.0)))

    # -- persistence and merge ---------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """The ``repro.fleet/v1`` payload (restart-safe snapshot)."""
        scenarios = {r.scenario: r.as_dict() for r in self.scenarios()}
        total = sum(r.total for r in self.scenarios())
        errors = sum(r.errors for r in self.scenarios())
        return {
            "schema": FLEET_SCHEMA,
            "scenarios": scenarios,
            "totals": {
                "sessions": total,
                "errors": errors,
                "error_rate": errors / total if total else 0.0,
                "telemetry_dropped": sum(
                    r.telemetry_dropped for r in self.scenarios()
                ),
            },
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> FleetRollup:
        """Restore a rollup from an :meth:`as_dict` payload."""
        schema = payload.get("schema")
        if schema != FLEET_SCHEMA:
            raise ValueError(f"expected schema {FLEET_SCHEMA!r}, got {schema!r}")
        out = cls()
        for name, scen in dict(payload.get("scenarios", {})).items():
            out._scenarios[str(name)] = ScenarioRollup.from_dict(scen)
        return out

    def merge(self, other: FleetRollup) -> FleetRollup:
        """A new rollup combining both stores (e.g. across restarts)."""
        out = FleetRollup()
        for rollup in self.scenarios():
            out._scenarios[rollup.scenario] = rollup
        for rollup in other.scenarios():
            mine = out._scenarios.get(rollup.scenario)
            out._scenarios[rollup.scenario] = (
                rollup if mine is None else mine.merge(rollup)
            )
        return out

    # -- OpenMetrics -------------------------------------------------------
    def add_to_exposition(self, out: ExpositionBuilder) -> None:
        """Append the fleet families to an ``ExpositionBuilder``.

        Quantile series follow the Prometheus summary convention: one
        gauge sample per ``quantile`` label value, plus ``*_count``
        counters so rates stay computable.
        """
        scenarios = self.scenarios()
        out.family("repro_fleet_sessions", "counter",
                   "Finished sessions by scenario and terminal state")
        for r in scenarios:
            for state, n in sorted(r.sessions.items()):
                out.sample("repro_fleet_sessions", "counter",
                           {"scenario": r.scenario, "state": state}, n)
        out.family("repro_fleet_error_rate", "gauge",
                   "Failed+cancelled over finished sessions, per scenario")
        for r in scenarios:
            out.sample("repro_fleet_error_rate", "gauge",
                       {"scenario": r.scenario}, r.error_rate)
        for fam, help_text, pick in (
            ("repro_fleet_t_ub_seconds",
             "Eq. 2 T_ub per successful session", "t_ub"),
            ("repro_fleet_resolution_latency_seconds",
             "Mean PENDING-resolution latency per successful session",
             "resolution"),
            ("repro_fleet_session_duration_seconds",
             "Wall-clock duration of successful sessions", "duration"),
        ):
            out.family(fam, "gauge", f"{help_text} (quantiles)")
            out.family(f"{fam.removesuffix('_seconds')}_samples", "counter",
                       f"{help_text} (sample count)")
            for r in scenarios:
                hist: Histogram = getattr(r, pick)
                for qlabel, q in _QUANTILES:
                    out.sample(fam, "gauge",
                               {"scenario": r.scenario, "quantile": qlabel},
                               hist.quantile(q))
                out.sample(f"{fam.removesuffix('_seconds')}_samples", "counter",
                           {"scenario": r.scenario}, hist.count)
        out.family("repro_fleet_buddy_saved_seconds", "counter",
                   "Buddy-help memcpy savings summed per scenario")
        out.family("repro_fleet_buddy_skips", "counter",
                   "Buddy-enabled skips summed per scenario")
        out.family("repro_fleet_telemetry_records", "counter",
                   "Telemetry records published per scenario")
        out.family("repro_fleet_telemetry_dropped", "counter",
                   "Telemetry records dropped (backpressure) per scenario")
        for r in scenarios:
            labels = {"scenario": r.scenario}
            out.sample("repro_fleet_buddy_saved_seconds", "counter",
                       labels, r.buddy_saved_total)
            out.sample("repro_fleet_buddy_skips", "counter",
                       labels, r.buddy_skips)
            out.sample("repro_fleet_telemetry_records", "counter",
                       labels, r.telemetry_records)
            out.sample("repro_fleet_telemetry_dropped", "counter",
                       labels, r.telemetry_dropped)
