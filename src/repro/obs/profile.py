"""Sampling CPU profiler with phase attribution.

A thread-based wall-clock sampler built on ``sys._current_frames``:
every *interval* seconds a daemon thread snapshots the target thread's
stack, folds it into a collapsed-stack tally and attributes the sample
to one of the framework's known phases by module prefix — *match*
(request/object matching), *rep aggregation*, *redistribution*,
*DES dispatch* and *wire*.  No ``sys.setprofile`` hook is installed,
so the profiled run pays nothing per bytecode or call: overhead is the
sampler thread alone, which the benchmark suite pins at < 5% of plain
dispatch (``profiler_overhead`` in ``BENCH_10.json``).

Attach one to a run with ``RunOptions(profile=True)`` (the facade
starts/stops it and exposes :attr:`RunResult.profile <Profile>`), to a
whole server with ``repro serve --profile`` (each worker profiles its
sessions; phase totals surface on ``GET /metrics``), or drive
:class:`SamplingProfiler` directly around any code block.

Exports: :meth:`Profile.collapsed` (flamegraph.pl collapsed-stack
text), :meth:`Profile.chrome_trace` (Trace Event JSON accepted by
``validate_chrome_trace``) and :meth:`Profile.as_dict` (schema
``repro.profile/v1``).
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field
from types import FrameType
from typing import Any

__all__ = ["PROFILE_SCHEMA", "PHASES", "Profile", "SamplingProfiler", "phase_of"]

#: Schema tag stamped on exported profiles.
PROFILE_SCHEMA = "repro.profile/v1"

#: ``(module prefix, phase)`` — most specific prefix first; the
#: *innermost* matching frame of a stack decides the sample's phase.
_PHASE_PREFIXES: tuple[tuple[str, str], ...] = (
    ("repro.match.aggregate", "rep_aggregation"),
    ("repro.core.rep", "rep_aggregation"),
    ("repro.match", "match"),
    ("repro.data.redistribute", "redistribution"),
    ("repro.data.schedule", "redistribution"),
    ("repro.des", "des_dispatch"),
    ("repro.core.wire", "wire"),
)

#: Every phase a sample can be attributed to.
PHASES: tuple[str, ...] = (
    "match", "rep_aggregation", "redistribution", "des_dispatch", "wire", "other",
)

#: Default sampling period (seconds): ~200 Hz, coarse enough that the
#: sampler thread never contends with the run.
DEFAULT_INTERVAL = 0.005

#: Stack depth kept per sample (frames beyond it are truncated at the
#: root — leaves are what attribution and flamegraphs need).
_MAX_DEPTH = 64


def phase_of(module: str) -> str | None:
    """The phase a module name belongs to, or None for non-phase code."""
    for prefix, phase in _PHASE_PREFIXES:
        if module == prefix or module.startswith(prefix + "."):
            return phase
    return None


def _fold(frame: FrameType) -> tuple[tuple[str, ...], str]:
    """Collapse one stack into (root..leaf frame names, phase)."""
    names: list[str] = []
    phase = "other"
    f: FrameType | None = frame
    depth = 0
    while f is not None and depth < _MAX_DEPTH:
        module = f.f_globals.get("__name__", "?")
        names.append(f"{module}.{f.f_code.co_name}")
        if phase == "other":
            found = phase_of(str(module))
            if found is not None:
                phase = found
        f = f.f_back
        depth += 1
    names.reverse()
    return tuple(names), phase


@dataclass(frozen=True)
class Profile:
    """The result of one profiling session."""

    #: Total samples taken.
    samples: int
    #: Sampling period in seconds.
    interval: float
    #: Wall-clock seconds the sampler ran.
    duration: float
    #: Collapsed stacks: ``root;...;leaf`` -> sample count.
    stacks: dict[str, int] = field(default_factory=dict)
    #: Samples per phase (every sample lands in exactly one phase).
    phases: dict[str, int] = field(default_factory=dict)

    def phase_fraction(self, phase: str) -> float:
        """Fraction of samples attributed to *phase* (0.0 when empty)."""
        return self.phases.get(phase, 0) / self.samples if self.samples else 0.0

    def collapsed(self) -> str:
        """flamegraph.pl collapsed-stack text (one ``stack count`` line)."""
        lines = [
            f"{stack} {count}"
            for stack, count in sorted(self.stacks.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def top(self, n: int = 10) -> list[tuple[str, int]]:
        """The *n* hottest collapsed stacks, most-sampled first."""
        ranked = sorted(self.stacks.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def chrome_trace(self, time_scale: float = 1e6) -> dict[str, Any]:
        """Phase attribution as Chrome ``trace_event`` JSON.

        One synthetic process ("profile") with one thread per phase;
        each phase's sampled time becomes a complete (``ph: "X"``)
        event whose duration is ``samples * interval``, laid head to
        tail so the track reads as a sampled-time breakdown.  Passes
        :func:`repro.obs.export.validate_chrome_trace`.
        """
        events: list[dict[str, Any]] = [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "profile"}},
        ]
        cursor = 0.0
        for tid, phase in enumerate(PHASES, start=1):
            count = self.phases.get(phase, 0)
            events.append(
                {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                 "args": {"name": phase}}
            )
            if not count:
                continue
            dur = count * self.interval
            events.append(
                {
                    "name": f"sampled:{phase}",
                    "cat": "profile",
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "ts": cursor * time_scale,
                    "dur": dur * time_scale,
                    "args": {"samples": count},
                }
            )
            cursor += dur
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def as_dict(self, max_stacks: int = 50) -> dict[str, Any]:
        """JSON-ready form (schema ``repro.profile/v1``).

        *max_stacks* bounds the payload: only the hottest stacks ship
        (wire payloads from serve workers stay small); pass ``0`` for
        all of them.
        """
        stacks = self.top(max_stacks) if max_stacks else sorted(self.stacks.items())
        return {
            "schema": PROFILE_SCHEMA,
            "samples": self.samples,
            "interval": self.interval,
            "duration": self.duration,
            "phases": {p: self.phases.get(p, 0) for p in PHASES},
            "stacks": [{"stack": s, "count": c} for s, c in stacks],
        }


class SamplingProfiler:
    """Samples one thread's stack on a cadence until stopped.

    Usage::

        profiler = SamplingProfiler()
        profiler.start()          # samples the *calling* thread
        ...                       # workload
        profile = profiler.stop()

    ``start``/``stop`` pair exactly once; the sampler thread is a
    daemon, so a crashed workload never hangs interpreter exit.
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL) -> None:
        if interval <= 0:
            raise ValueError("profiler interval must be > 0")
        self.interval = interval
        self._target: int | None = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._stacks: dict[tuple[str, ...], int] = {}
        self._phases: dict[str, int] = {}
        self._samples = 0
        self._started_at = 0.0
        self._duration = 0.0

    def start(self, thread_id: int | None = None) -> None:
        """Begin sampling *thread_id* (default: the calling thread)."""
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._target = thread_id if thread_id is not None else threading.get_ident()
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        assert self._target is not None
        while not self._stop.wait(self.interval):
            frame = sys._current_frames().get(self._target)
            if frame is None:  # target thread exited
                continue
            stack, phase = _fold(frame)
            self._stacks[stack] = self._stacks.get(stack, 0) + 1
            self._phases[phase] = self._phases.get(phase, 0) + 1
            self._samples += 1

    def stop(self) -> Profile:
        """Stop sampling and return the accumulated :class:`Profile`."""
        if self._thread is None:
            raise RuntimeError("profiler was never started")
        self._stop.set()
        self._thread.join()
        self._duration = time.perf_counter() - self._started_at
        self._thread = None
        return Profile(
            samples=self._samples,
            interval=self.interval,
            duration=self._duration,
            stacks={";".join(s): c for s, c in self._stacks.items()},
            phases=dict(self._phases),
        )
