"""Post-run metric collection: walk a finished simulation into a registry.

This is what keeps observability off the hot path: the DES kernel,
vMPI backends, match engine, exporter/importer, reps, buddy-help and
fault layers all keep *plain attribute counters* (one integer add at
the site, no registry lookups, no label hashing).  After the run,
:func:`collect_metrics` reads them into a
:class:`~repro.obs.metrics.MetricsRegistry` under the stable names
documented in ``docs/observability.md``.

Collection is getattr-defensive on purpose: the DES and live runtimes
share most of their shape but not all of it (the live runtime has no
virtual-time kernel, fault-free runs have no fault stats), and a
counter that does not exist is simply not reported.
"""

from __future__ import annotations

from typing import Any

from repro.obs.metrics import MetricsRegistry

#: Aggregate-case keys reported under ``rep.aggregate_cases``.
AGGREGATE_CASES = (
    "all_match",
    "all_no_match",
    "all_pending",
    "pending_match",
    "pending_no_match",
)


def _collect_kernel(sim: Any, reg: MetricsRegistry) -> None:
    kernel = getattr(sim, "sim", sim)
    counters = getattr(kernel, "kernel_counters", None)
    if not callable(counters):
        return
    kc = counters()
    reg.counter("des.events.scheduled", lane="heap").inc(kc["heap_scheduled"])
    reg.counter("des.events.scheduled", lane="fast").inc(kc["fast_lane_scheduled"])
    reg.counter("des.events.dispatched").inc(kc["dispatched"])
    reg.counter("des.events.cancelled").inc(kc["cancelled"])


def _collect_net(sim: Any, reg: MetricsRegistry) -> None:
    planes = (
        ("ctl", "ctl_messages", "ctl_bytes"),
        ("data", "data_messages", "data_bytes"),
    )
    for plane, msg_attr, byte_attr in planes:
        msgs = getattr(sim, msg_attr, None)
        if msgs is None:
            continue
        reg.counter("net.messages", plane=plane).inc(int(msgs))
        reg.counter("net.bytes", plane=plane).inc(int(getattr(sim, byte_attr, 0)))
    if getattr(sim, "frames_sent", None) is not None:
        reg.counter("net.frames.sent").inc(int(sim.frames_sent))
        reg.counter("net.frames.members").inc(int(getattr(sim, "framed_messages", 0)))
    if getattr(sim, "retransmissions", None) is not None:
        reg.counter("resilience.retransmissions").inc(int(sim.retransmissions))
        reg.counter("resilience.dup_discards").inc(int(getattr(sim, "dup_discards", 0)))


def _collect_faults(sim: Any, reg: MetricsRegistry) -> None:
    network = getattr(getattr(sim, "world", None), "network", None)
    stats = getattr(network, "stats", None)
    if stats is None:
        return
    for key in ("eligible", "dropped", "duplicated", "delayed", "reordered"):
        value = getattr(stats, key, None)
        if value is not None:
            reg.counter(f"faults.{key}").inc(int(value))


def _collect_vmpi(prog: Any, reg: MetricsRegistry) -> None:
    name = prog.name
    for comm in getattr(prog, "comms", ()) or ():
        sent = int(getattr(comm, "sent_messages", 0))
        if sent:
            reg.counter("vmpi.messages.sent", program=name).inc(sent)
        received = int(getattr(comm, "received_messages", 0))
        if received:
            reg.counter("vmpi.messages.received", program=name).inc(received)
        for kind in ("p2p", "coll"):
            label = "p2p" if kind == "p2p" else "collective"
            msgs = int(getattr(comm, f"{kind}_messages_sent", 0))
            if msgs:
                reg.counter("vmpi.messages.sent.by_kind", program=name,
                            kind=label).inc(msgs)
            nbytes = int(getattr(comm, f"{kind}_bytes_sent", 0))
            if nbytes:
                reg.counter("vmpi.bytes.sent", program=name, kind=label).inc(nbytes)


def _collect_rep(prog: Any, reg: MetricsRegistry) -> None:
    rep = getattr(prog, "exp_rep", None)
    if rep is not None:
        name = prog.name
        reg.counter("rep.requests", program=name).inc(
            int(getattr(rep, "requests_seen", 0))
        )
        reg.counter("rep.finalized", program=name).inc(
            int(getattr(rep, "finalized_count", 0))
        )
        reg.counter("rep.duplicate_requests", program=name).inc(
            int(getattr(rep, "duplicate_requests", 0))
        )
        reg.counter("rep.cached_answers_served", program=name).inc(
            int(getattr(rep, "cached_answers_served", 0))
        )
        reg.counter("buddy.helps_sent", program=name).inc(
            int(getattr(rep, "buddy_messages_sent", 0))
        )
        counts = getattr(rep, "aggregate_case_counts", None)
        cases = counts() if callable(counts) else getattr(rep, "aggregate_cases", {})
        for case, count in cases.items():
            reg.counter("rep.aggregate_cases", program=name, case=case).inc(int(count))
    imp = getattr(prog, "imp_rep", None)
    if imp is not None:
        reg.counter("rep.forwarded", program=prog.name).inc(
            int(getattr(imp, "forwarded_count", 0))
        )


def _collect_context(ctx: Any, reg: MetricsRegistry) -> None:
    program, rank, who = ctx.program, ctx.rank, ctx.who
    stats = ctx.stats

    reg.gauge("process.compute_time", program=program, rank=rank).set(
        float(getattr(stats, "compute_time", 0.0))
    )
    backpressure = getattr(stats, "backpressure_time", None)
    if backpressure is not None:
        reg.gauge("process.backpressure_time", program=program, rank=rank).set(
            float(backpressure)
        )

    for rec in getattr(stats, "export_records", ()):
        reg.counter(
            "export.decisions", program=program, rank=rank, outcome=str(rec.decision)
        ).inc()

    reg.counter("buddy.answers_received", program=program, rank=rank).inc(
        int(getattr(stats, "buddy_answers_received", 0))
    )
    skips = int(getattr(stats, "buddy_skips", 0))
    if skips:
        reg.counter("buddy.skips", program=program, rank=rank).inc(skips)
        reg.gauge("buddy.saved_time", program=program, rank=rank).set(
            float(getattr(stats, "buddy_saved_time", 0.0))
        )
    leads = getattr(stats, "buddy_lead_times", ())
    if leads:
        lead_hist = reg.histogram("buddy.lead_time", program=program, rank=rank)
        for _export_ts, _request_ts, lead in leads:
            lead_hist.observe(float(lead))

    for region, st in getattr(ctx, "export_states", {}).items():
        if not getattr(st, "is_connected", False):
            continue
        bstats = st.buffer.stats()
        labels = {"program": program, "rank": rank, "region": region}
        reg.counter("buffer.buffered", **labels).inc(bstats.buffered_count)
        reg.counter("buffer.sent", **labels).inc(bstats.sent_count)
        reg.counter("buffer.freed_unsent", **labels).inc(bstats.freed_unsent_count)
        peak = reg.gauge("buffer.peak_bytes", **labels)
        peak.set(float(bstats.peak_bytes))
        reg.gauge("buffer.total_memcpy_time", **labels).set(bstats.total_memcpy_time)
        reg.gauge("buffer.t_ub", **labels).set(bstats.t_ub)
        for cid, cst in getattr(st, "connections", {}).items():
            engine = getattr(cst, "engine", None)
            if engine is None:
                continue
            for outcome, attr in (
                ("match", "match_count"),
                ("no_match", "no_match_count"),
                ("pending", "pending_count"),
            ):
                count = int(getattr(engine, attr, 0))
                if count:
                    reg.counter(
                        "match.evaluations",
                        program=program,
                        rank=rank,
                        connection=cid,
                        outcome=outcome,
                    ).inc(count)

    for region, ist in getattr(ctx, "import_states", {}).items():
        labels = {"program": program, "rank": rank, "region": region}
        match_count = int(getattr(ist, "match_count", 0))
        no_match = int(getattr(ist, "no_match_count", 0))
        if match_count:
            reg.counter("import.completed", outcome="match", **labels).inc(match_count)
        if no_match:
            reg.counter("import.completed", outcome="no_match", **labels).inc(no_match)
        latency = reg.histogram("import.latency", program=program, rank=rank)
        for rec in getattr(ist, "records", ()):
            if rec.completed_at is not None:
                latency.observe(rec.latency)


def collect_metrics(sim: Any, registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Fill *registry* (a fresh one by default) from a finished run.

    *sim* is a :class:`~repro.core.coupler.CoupledSimulation`,
    :class:`~repro.core.live.LiveCoupledSimulation`, or a bare
    :class:`~repro.des.core.Simulator` (kernel counters only).
    """
    reg = registry if registry is not None else MetricsRegistry()
    _collect_kernel(sim, reg)
    _collect_net(sim, reg)
    _collect_faults(sim, reg)
    backend = getattr(sim, "match_backend", None)
    if backend is not None:
        # Which engine produced the match.evaluations counters; the
        # value is 1 and the information lives in the label, so reports
        # from different backends stay diffable.
        reg.gauge("match.backend", backend=str(backend)).set(1.0)
    for prog in getattr(sim, "_programs", {}).values():
        _collect_vmpi(prog, reg)
        _collect_rep(prog, reg)
        for ctx in getattr(prog, "contexts", []):
            _collect_context(ctx, reg)
    return reg
