"""SLO watchdog over fleet rollups (schema ``repro.alerts/v1``).

Declarative guard rails for the paper's quantitative claims: a
:class:`Rule` states a condition a healthy fleet must satisfy —

* ``error_rate < 0.01``
* ``t_ub_p95 < 1.2 * baseline``
* ``demo:resolution_p99 <= 0.5``

— and :func:`evaluate_rules` checks every rule against a
``repro.fleet/v1`` payload (optionally relative to a saved *baseline*
payload, mirroring ``repro report --baseline``).  Violations become
``repro.alerts/v1`` records; :class:`Watchdog` evaluates on a cadence
and emits each alert to ordinary telemetry sinks, so alerts land in
the same JSONL/OpenMetrics files operators already scrape.  The
``repro watch URL`` CLI drives the same evaluation and exits 1 when
any rule trips (0 clean, 2 on usage/connection errors) — the same
contract as ``repro report --baseline``.

Rule grammar::

    [scenario:]metric OP limit
    OP     := < | <= | > | >=
    limit  := NUMBER | NUMBER * baseline | baseline * NUMBER | baseline

Metrics: ``error_rate``, ``sessions_total``, ``errors``,
``buddy_saved_total``, ``buddy_skips``, ``telemetry_dropped``, and
``{t_ub,resolution,duration}_{p50,p95,p99,mean,count}``.  A rule
without a scenario prefix applies to every scenario in the payload.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Iterable

__all__ = [
    "ALERTS_SCHEMA",
    "Rule",
    "Watchdog",
    "evaluate_rules",
    "parse_rule",
    "parse_rules",
]

#: Schema tag stamped on every alert record.
ALERTS_SCHEMA = "repro.alerts/v1"

_OPS: dict[str, Callable[[float, float], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

#: Histogram-metric prefixes -> the payload key they live under.
_HIST_KEYS = {
    "t_ub": "t_ub",
    "resolution": "resolution_latency",
    "duration": "duration_seconds",
}

#: Scalar metrics -> how to pull them out of one scenario's dict.
_SCALARS: dict[str, Callable[[dict[str, Any]], float]] = {
    "error_rate": lambda s: float(s.get("error_rate", 0.0)),
    "sessions_total": lambda s: float(s.get("total", 0)),
    "errors": lambda s: float(s.get("errors", 0)),
    "buddy_saved_total": lambda s: float(s.get("buddy_saved_total", 0.0)),
    "buddy_skips": lambda s: float(s.get("buddy_skips", 0)),
    "telemetry_dropped": lambda s: float(
        dict(s.get("telemetry", {})).get("dropped", 0)
    ),
}

_RULE_RE = re.compile(
    r"^\s*(?:(?P<scenario>[A-Za-z0-9_.-]+)\s*:)?\s*"
    r"(?P<metric>[a-z0-9_]+)\s*"
    r"(?P<op><=|>=|<|>)\s*"
    r"(?P<limit>.+?)\s*$"
)
_LIMIT_RE = re.compile(
    r"^(?:(?P<pre>[0-9.eE+-]+)\s*\*\s*baseline"
    r"|baseline\s*\*\s*(?P<post>[0-9.eE+-]+)"
    r"|(?P<bare>baseline)"
    r"|(?P<value>[0-9.eE+-]+))$"
)


@dataclass(frozen=True)
class Rule:
    """One parsed SLO rule."""

    #: The original rule text (echoed in alerts).
    text: str
    #: Scenario the rule is pinned to, or None for every scenario.
    scenario: str | None
    metric: str
    op: str
    #: Absolute limit (None when baseline-relative).
    threshold: float | None
    #: Multiplier over the baseline's value (None when absolute).
    baseline_factor: float | None

    @property
    def needs_baseline(self) -> bool:
        """Whether this rule can only be evaluated against a baseline."""
        return self.baseline_factor is not None


def parse_rule(text: str) -> Rule:
    """Parse one rule string; raises :class:`ValueError` when malformed."""
    m = _RULE_RE.match(text)
    if m is None:
        raise ValueError(f"unparseable rule {text!r} (want 'metric OP limit')")
    metric = m.group("metric")
    if metric not in _SCALARS and _split_hist_metric(metric) is None:
        raise ValueError(
            f"unknown metric {metric!r} in rule {text!r}; known: "
            f"{sorted(_SCALARS)} and "
            f"{{{','.join(sorted(_HIST_KEYS))}}}_{{p50,p95,p99,mean,count}}"
        )
    lm = _LIMIT_RE.match(m.group("limit"))
    if lm is None:
        raise ValueError(
            f"unparseable limit {m.group('limit')!r} in rule {text!r} "
            "(want a number, 'N * baseline', 'baseline * N' or 'baseline')"
        )
    threshold: float | None = None
    factor: float | None = None
    if lm.group("value") is not None:
        threshold = float(lm.group("value"))
    elif lm.group("bare") is not None:
        factor = 1.0
    else:
        factor = float(lm.group("pre") or lm.group("post"))
    return Rule(
        text=text.strip(),
        scenario=m.group("scenario"),
        metric=metric,
        op=m.group("op"),
        threshold=threshold,
        baseline_factor=factor,
    )


def parse_rules(texts: Iterable[str]) -> list[Rule]:
    """Parse several rule strings (blank lines and ``#`` comments skipped)."""
    rules = []
    for text in texts:
        stripped = text.strip()
        if not stripped or stripped.startswith("#"):
            continue
        rules.append(parse_rule(stripped))
    return rules


def _split_hist_metric(metric: str) -> tuple[str, str] | None:
    """``"t_ub_p95"`` -> ``("t_ub", "p95")`` or None."""
    for prefix, key in _HIST_KEYS.items():
        if metric.startswith(prefix + "_"):
            suffix = metric[len(prefix) + 1 :]
            if suffix in ("p50", "p95", "p99", "mean", "count"):
                return key, suffix
    return None


def metric_value(scenario_payload: dict[str, Any], metric: str) -> float | None:
    """Resolve *metric* inside one scenario's rollup dict (None if absent)."""
    scalar = _SCALARS.get(metric)
    if scalar is not None:
        return scalar(scenario_payload)
    split = _split_hist_metric(metric)
    if split is None:
        return None
    key, suffix = split
    summary = dict(dict(scenario_payload.get(key, {})).get("summary", {}))
    if not summary:
        return None
    return float(summary.get(suffix, 0.0))


def evaluate_rules(
    payload: dict[str, Any],
    rules: Iterable[Rule],
    baseline: dict[str, Any] | None = None,
) -> list[dict[str, Any]]:
    """Check *rules* against a ``repro.fleet/v1`` payload.

    Returns one ``repro.alerts/v1`` record per violation (empty when
    the fleet is healthy).  A baseline-relative rule with no
    *baseline* given raises :class:`ValueError` — silently skipping a
    guard rail would defeat the watchdog.
    """
    scenarios: dict[str, Any] = dict(payload.get("scenarios", {}))
    base_scenarios: dict[str, Any] = dict((baseline or {}).get("scenarios", {}))
    alerts: list[dict[str, Any]] = []
    for rule in rules:
        if rule.needs_baseline and baseline is None:
            raise ValueError(
                f"rule {rule.text!r} is baseline-relative but no baseline was given"
            )
        targets = (
            [rule.scenario] if rule.scenario is not None else sorted(scenarios)
        )
        for name in targets:
            scen = scenarios.get(name)
            if scen is None:
                # A pinned scenario that never ran is itself a finding:
                # the rule cannot be vouched for.
                alerts.append(_alert(rule, name, None, None, None,
                                     reason="scenario absent from rollup"))
                continue
            value = metric_value(scen, rule.metric)
            if value is None:
                alerts.append(_alert(rule, name, None, None, None,
                                     reason=f"metric {rule.metric!r} unavailable"))
                continue
            base_value: float | None = None
            if rule.needs_baseline:
                base_scen = base_scenarios.get(name)
                base_value = (
                    metric_value(base_scen, rule.metric)
                    if base_scen is not None
                    else None
                )
                if base_value is None:
                    alerts.append(_alert(rule, name, value, None, None,
                                         reason="no baseline value for scenario"))
                    continue
                assert rule.baseline_factor is not None
                limit = rule.baseline_factor * base_value
            else:
                assert rule.threshold is not None
                limit = rule.threshold
            if not _OPS[rule.op](value, limit):
                alerts.append(_alert(rule, name, value, limit, base_value))
    return alerts


def _alert(
    rule: Rule,
    scenario: str | None,
    value: float | None,
    limit: float | None,
    baseline_value: float | None,
    reason: str | None = None,
) -> dict[str, Any]:
    message = reason or (
        f"{rule.metric} = {value:g} violates '{rule.metric} {rule.op} "
        f"{limit:g}'" if value is not None and limit is not None else rule.text
    )
    record: dict[str, Any] = {
        "schema": ALERTS_SCHEMA,
        "rule": rule.text,
        "scenario": scenario,
        "metric": rule.metric,
        "op": rule.op,
        "value": value,
        "limit": limit,
        "message": message,
    }
    if baseline_value is not None:
        record["baseline_value"] = baseline_value
    return record


class Watchdog:
    """Evaluates rules against a rollup source on a cadence.

    *fetch* returns the current ``repro.fleet/v1`` payload (e.g.
    ``client.fleet``); every evaluation's violations are emitted to
    the configured telemetry sinks, so alerts ride the exact same
    pipes as ``repro.telemetry/v1`` snapshots.
    """

    def __init__(
        self,
        fetch: Callable[[], dict[str, Any]],
        rules: Iterable[Rule],
        *,
        baseline: dict[str, Any] | None = None,
        sinks: Iterable[Any] = (),
    ) -> None:
        self.fetch = fetch
        self.rules = list(rules)
        self.baseline = baseline
        self.sinks = tuple(sinks)
        #: Alerts emitted over this watchdog's lifetime.
        self.alerts_total = 0
        self.evaluations = 0

    def run_once(self) -> list[dict[str, Any]]:
        """One fetch-and-evaluate pass; returns (and emits) violations."""
        payload = self.fetch()
        alerts = evaluate_rules(payload, self.rules, self.baseline)
        self.evaluations += 1
        self.alerts_total += len(alerts)
        for alert in alerts:
            for sink in self.sinks:
                sink.emit(alert)
        return alerts

    def run(
        self, iterations: int, interval: float, *,
        sleep: Callable[[float], None] | None = None,
    ) -> list[dict[str, Any]]:
        """*iterations* passes, *interval* seconds apart; all violations."""
        import time as _time

        do_sleep = sleep if sleep is not None else _time.sleep
        out: list[dict[str, Any]] = []
        for i in range(iterations):
            out.extend(self.run_once())
            if i + 1 < iterations:
                do_sleep(interval)
        return out
