"""Export formats: Chrome ``trace_event`` JSON and payload validators.

:func:`chrome_trace` converts a :class:`~repro.obs.spans.TimelineSet`
into the Trace Event Format understood by ``chrome://tracing`` and
Perfetto: one *process* per coupled program, one *thread* per rank
(the program's rep gets its own thread), complete events (``ph: "X"``)
for spans, thread-scoped instants (``ph: "i"``) for trace events, and
metadata records naming both.  Virtual seconds are scaled to
microseconds — the viewer's native unit — so a 2.5-second acceptance
region reads as 2.5 s on the ruler.

The validators are deliberately hand-rolled (the repo takes no schema
dependency): they return a list of human-readable problems, empty when
the payload conforms.  CI runs them against real ``repro trace
--chrome`` and ``repro report --json`` output.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.spans import TimelineSet
from repro.obs.trace import CausalReport

#: Version tag stamped into (and required of) ``repro report --json``.
REPORT_SCHEMA = "repro.report/v1"


def _split_who(who: str) -> tuple[str, str]:
    """``"F.p1"`` → ``("F", "p1")``; unqualified names get one process."""
    if "." in who:
        prog, _, thread = who.partition(".")
        return prog, thread
    return who, who


def _thread_sort_key(thread: str) -> tuple[int, int | str]:
    # Ranks first in numeric order, then rep/other threads by name.
    if thread.startswith("p") and thread[1:].isdigit():
        return (0, int(thread[1:]))
    return (1, thread)


def chrome_trace(
    timelines: TimelineSet,
    *,
    time_scale: float = 1e6,
    causal: CausalReport | None = None,
) -> dict[str, Any]:
    """Render *timelines* as a Chrome ``trace_event`` JSON object.

    With *causal* given, every happens-before edge of the causal DAG
    additionally becomes a flow-event pair (``ph: "s"`` at the parent
    span, ``ph: "f"`` with ``bp: "e"`` at the child) and every causal
    span a thread-scoped instant — the viewer then draws arrows along
    each import's resolution chain.
    """
    programs: dict[str, dict[str, int]] = {}
    causal_whos = (
        sorted({s.who for s in causal.spans}) if causal is not None else []
    )
    for who in list(timelines.whos()) + causal_whos:
        prog, thread = _split_who(who)
        programs.setdefault(prog, {})[thread] = 0
    pids = {prog: i + 1 for i, prog in enumerate(sorted(programs))}
    tids: dict[str, dict[str, int]] = {}
    for prog, threads in programs.items():
        ordered = sorted(threads, key=_thread_sort_key)
        tids[prog] = {thread: i + 1 for i, thread in enumerate(ordered)}

    events: list[dict[str, Any]] = []
    for prog in sorted(programs):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pids[prog],
                "tid": 0,
                "args": {"name": prog},
            }
        )
        for thread, tid in sorted(tids[prog].items(), key=lambda kv: kv[1]):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pids[prog],
                    "tid": tid,
                    "args": {"name": thread},
                }
            )

    for who in timelines.whos():
        prog, thread = _split_who(who)
        pid, tid = pids[prog], tids[prog][thread]
        tl = timelines.timelines[who]
        for span in tl.spans:
            events.append(
                {
                    "name": span.name,
                    "cat": "span",
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": span.start * time_scale,
                    "dur": span.duration * time_scale,
                    "args": {str(k): v for k, v in span.args.items()},
                }
            )
        for event in tl.events:
            events.append(
                {
                    "name": event.kind,
                    "cat": "trace",
                    "ph": "i",
                    "s": "t",
                    "pid": pid,
                    "tid": tid,
                    "ts": event.time * time_scale,
                    "args": {str(k): v for k, v in event.detail.items()},
                }
            )

    if causal is not None:
        by_id = {s.span_id: s for s in causal.spans}
        for span in causal.spans:
            prog, thread = _split_who(span.who)
            events.append(
                {
                    "name": span.name,
                    "cat": "causal",
                    "ph": "i",
                    "s": "t",
                    "pid": pids[prog],
                    "tid": tids[prog][thread],
                    "ts": span.time * time_scale,
                    "args": {
                        "span_id": span.span_id,
                        "trace_id": span.trace_id,
                        **{str(k): v for k, v in span.attrs.items()},
                    },
                }
            )
        edge_id = 0
        for parent_id, child_id in causal.edges():
            parent = by_id[parent_id]
            child = by_id[child_id]
            edge_id += 1
            for span, ph in ((parent, "s"), (child, "f")):
                prog, thread = _split_who(span.who)
                ev: dict[str, Any] = {
                    "name": "causal",
                    "cat": "causal",
                    "ph": ph,
                    "id": edge_id,
                    "pid": pids[prog],
                    "tid": tids[prog][thread],
                    "ts": span.time * time_scale,
                }
                if ph == "f":
                    ev["bp"] = "e"
                events.append(ev)

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str | Path,
    timelines: TimelineSet,
    *,
    time_scale: float = 1e6,
    causal: CausalReport | None = None,
) -> Path:
    """Write :func:`chrome_trace` output to *path*; returns the path."""
    out = Path(path)
    out.write_text(
        json.dumps(chrome_trace(timelines, time_scale=time_scale, causal=causal))
        + "\n"
    )
    return out


_PHASES_WITH_DUR = {"X"}
_KNOWN_PHASES = {"X", "i", "M", "B", "E", "C", "s", "t", "f"}
#: Flow phases: binding pairs that must share an ``id``.
_FLOW_PHASES = {"s", "t", "f"}


def validate_chrome_trace(obj: Any) -> list[str]:
    """Problems that would stop ``chrome://tracing`` loading *obj*.

    Flow events (``ph`` in ``s``/``t``/``f``) must carry an ``id``, and
    every flow-finish (``f``) id must have a matching flow-start (``s``).
    """
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    flow_starts: set[Any] = set()
    flow_finishes: list[tuple[str, Any]] = []
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = e.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(e.get("name"), str):
            problems.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(e.get(key), int):
                problems.append(f"{where}: {key} must be an int")
        if ph == "M":
            continue  # metadata carries no timestamp
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number")
        if ph in _PHASES_WITH_DUR:
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: dur must be a non-negative number")
        if ph == "i" and e.get("s") not in (None, "t", "p", "g"):
            problems.append(f"{where}: instant scope must be t, p or g")
        if ph in _FLOW_PHASES:
            fid = e.get("id")
            if not isinstance(fid, (int, str)):
                problems.append(f"{where}: flow event needs an id")
                continue
            if ph == "s":
                flow_starts.add(fid)
            else:
                flow_finishes.append((where, fid))
    for where, fid in flow_finishes:
        if fid not in flow_starts:
            problems.append(f"{where}: flow finish id {fid!r} has no flow start")
    return problems


def _check_metrics_block(block: Any, where: str) -> list[str]:
    problems: list[str] = []
    if not isinstance(block, dict):
        return [f"{where}: metrics must be an object"]
    samples = block.get("metrics")
    if not isinstance(samples, list):
        return [f"{where}: metrics.metrics must be a list"]
    for i, s in enumerate(samples):
        spot = f"{where}.metrics[{i}]"
        if not isinstance(s, dict):
            problems.append(f"{spot}: not an object")
            continue
        if not isinstance(s.get("name"), str):
            problems.append(f"{spot}: missing name")
        if s.get("kind") not in ("counter", "gauge", "histogram", "timer"):
            problems.append(f"{spot}: bad kind {s.get('kind')!r}")
        if not isinstance(s.get("labels"), dict):
            problems.append(f"{spot}: labels must be an object")
        if not isinstance(s.get("value"), (int, float)):
            problems.append(f"{spot}: value must be a number")
    paper = block.get("paper")
    if paper is not None:
        if not isinstance(paper, dict):
            problems.append(f"{where}: paper must be an object")
        else:
            for key in ("t_ub_total", "t_ub_no_help_estimate", "t_ub_saving"):
                if not isinstance(paper.get(key), (int, float)):
                    problems.append(f"{where}: paper.{key} must be a number")
    return problems


def validate_report_payload(obj: Any) -> list[str]:
    """Problems with a ``repro report --json`` payload."""
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    if obj.get("schema") != REPORT_SCHEMA:
        problems.append(f"schema must be {REPORT_SCHEMA!r}, got {obj.get('schema')!r}")
    # Optional (added with the pluggable match backends): which engine
    # produced the runs.  Tolerant — absent in older payloads.
    backend = obj.get("match_backend")
    if backend is not None and not isinstance(backend, str):
        problems.append("match_backend must be a string when present")
    runs = obj.get("runs")
    if not isinstance(runs, list) or not runs:
        return problems + ["runs must be a non-empty list"]
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not isinstance(run, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(run.get("name"), str):
            problems.append(f"{where}: missing name")
        problems.extend(_check_metrics_block(run.get("metrics"), where))
    comparison = obj.get("comparison")
    if comparison is not None:
        if not isinstance(comparison, dict):
            problems.append("comparison must be an object")
        else:
            for key in ("t_ub_with_help", "t_ub_without_help", "t_ub_saving"):
                if not isinstance(comparison.get(key), (int, float)):
                    problems.append(f"comparison.{key} must be a number")
    return problems
