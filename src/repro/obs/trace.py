"""Causal distributed tracing for coupled runs.

The paper's argument is causal: the exporter rep's *first definitive
response* becomes the final answer (Property 1), and the buddy-help
broadcast of that answer lets slower exporter processes skip buffering
(Eq. 1-2).  This module makes those chains first-class.  Every
control-plane wire message carries a compact :class:`TraceContext`
(trace id + the sending span's id); the runtimes record a
:class:`CausalSpan` at each protocol event into a :class:`CausalLog`;
:func:`build_causal_report` reconstructs the per-import happens-before
DAG, walks the critical path of every resolution, and attributes its
latency to protocol stages.

Span vocabulary (one trace per ``(connection, request_ts)``):

===============  ========================================================
``request``      importer process issues ``ImpProcRequest``
``retransmit``   the fault layer re-issues a request (same trace id)
``rep_forward``  importer rep forwards to the exporter rep
``fan_out``      exporter rep fans the request out to one process
``match``        an exporter process answers with its match response
``aggregate``    exporter rep aggregates responses into the final answer
``buddy_notify`` exporter rep sends the buddy-help message to one rank
``buddy_recv``   an exporter process receives the buddy answer
``buddy_skip``   a buffering skip enabled by a buddy answer (lead time)
``answer``       importer rep delivers the final answer to a process
``answered``     the importing process consumes the answer
``complete``     all data pieces arrived; the import returns
===============  ========================================================

Stage attribution classifies each critical-path edge by the event it
*ends at*: the wait before a ``match`` is match wait, the hop into
``aggregate`` is rep aggregation, the hop into ``complete`` is data
transfer, buddy events are buddy help, and everything else is wire
transit.  The first edge is clipped at the importing rank's own request
time, so the per-stage durations telescope exactly to the observed
resolution latency.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.util.validation import require

__all__ = [
    "TraceContext",
    "CausalSpan",
    "CausalLog",
    "BuddySkip",
    "ImportResolution",
    "CausalReport",
    "build_causal_report",
    "STAGE_OF",
]


@dataclass(frozen=True)
class TraceContext:
    """The compact context attached to control-plane wire messages.

    ``trace_id`` names the import being resolved (one per connection +
    request timestamp); ``span_id`` is the id of the span recorded when
    the carrying message was sent, i.e. the receiver's causal parent.
    """

    trace_id: int
    span_id: int

    def as_dict(self) -> dict[str, int]:
        """JSON-ready form."""
        return {"trace_id": self.trace_id, "span_id": self.span_id}


@dataclass(frozen=True)
class CausalSpan:
    """One node of the happens-before DAG."""

    span_id: int
    trace_id: int
    name: str
    who: str
    time: float
    parents: tuple[int, ...] = ()
    attrs: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form."""
        out: dict[str, Any] = {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "name": self.name,
            "who": self.who,
            "time": self.time,
            "parents": list(self.parents),
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


class CausalLog:
    """Append-only recorder of causal spans.

    Span ids are allocated in record order, trace ids in first-use
    order of their ``(connection_id, request_ts)`` key — both are
    deterministic under the DES runtime (same seed, same schedule,
    same ids), which is what the seed-replay tests rely on.  A lock
    makes the log safe for the threaded live runtime.
    """

    def __init__(self) -> None:
        self.spans: list[CausalSpan] = []
        self._trace_keys: dict[tuple[str, float], int] = {}
        self._lock = threading.Lock()

    def trace_for(self, connection_id: str, request_ts: float) -> int:
        """The trace id of the import ``(connection_id, request_ts)``."""
        key = (connection_id, float(request_ts))
        with self._lock:
            tid = self._trace_keys.get(key)
            if tid is None:
                tid = len(self._trace_keys)
                self._trace_keys[key] = tid
            return tid

    def trace_key(self, trace_id: int) -> tuple[str, float] | None:
        """The ``(connection_id, request_ts)`` behind *trace_id*."""
        with self._lock:
            for key, tid in self._trace_keys.items():
                if tid == trace_id:
                    return key
        return None

    def record(
        self,
        trace_id: int,
        name: str,
        who: str,
        time: float,
        parents: Iterable[int] = (),
        **attrs: Any,
    ) -> TraceContext:
        """Append a span; returns the context to stamp onto messages."""
        parent_ids = tuple(dict.fromkeys(int(p) for p in parents))
        with self._lock:
            span_id = len(self.spans)
            self.spans.append(
                CausalSpan(
                    span_id=span_id,
                    trace_id=int(trace_id),
                    name=name,
                    who=who,
                    time=float(time),
                    parents=parent_ids,
                    attrs=dict(attrs),
                )
            )
        return TraceContext(trace_id=int(trace_id), span_id=span_id)

    def __len__(self) -> int:
        return len(self.spans)


#: Critical-path stage of an edge, keyed by the span the edge ends at.
STAGE_OF: Mapping[str, str] = {
    "match": "match_wait",
    "aggregate": "rep_aggregation",
    "complete": "data_transfer",
    "buddy_notify": "buddy_help",
    "buddy_recv": "buddy_help",
    "buddy_skip": "buddy_help",
}

_WIRE_STAGE = "wire_transit"


def _stage_for(span_name: str) -> str:
    return STAGE_OF.get(span_name, _WIRE_STAGE)


@dataclass(frozen=True)
class BuddySkip:
    """One buffering skip enabled by a buddy-help answer."""

    who: str
    connection_id: str
    request_ts: float
    export_ts: float
    #: How far ahead of the local skip decision the buddy answer
    #: arrived — the paper-optimization win for this window.
    lead: float

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form."""
        return {
            "who": self.who,
            "connection": self.connection_id,
            "request": self.request_ts,
            "export_ts": self.export_ts,
            "lead": self.lead,
        }


@dataclass(frozen=True)
class ImportResolution:
    """One rank's resolved import, with its critical path."""

    trace_id: int
    connection_id: str
    request_ts: float
    who: str
    issued_at: float
    resolved_at: float
    latency: float
    #: Span ids along the critical path, end first, root last.
    path: tuple[int, ...]
    #: Span names along the path, root first (readable chain).
    chain: tuple[str, ...]
    #: Stage -> attributed seconds; values sum to :attr:`latency`.
    stages: dict[str, float]
    answer_kind: str | None = None
    case: str | None = None
    retransmits: int = 0

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form."""
        return {
            "trace_id": self.trace_id,
            "connection": self.connection_id,
            "request": self.request_ts,
            "who": self.who,
            "issued_at": self.issued_at,
            "resolved_at": self.resolved_at,
            "latency": self.latency,
            "path": list(self.path),
            "chain": list(self.chain),
            "stages": dict(self.stages),
            "answer_kind": self.answer_kind,
            "case": self.case,
            "retransmits": self.retransmits,
        }


@dataclass(frozen=True)
class CausalReport:
    """The reconstructed happens-before DAG plus its derived views."""

    spans: tuple[CausalSpan, ...]
    resolutions: tuple[ImportResolution, ...]
    buddy_skips: tuple[BuddySkip, ...]

    @property
    def trace_ids(self) -> tuple[int, ...]:
        """Distinct trace ids, ascending."""
        return tuple(sorted({s.trace_id for s in self.spans}))

    def trace_spans(self, trace_id: int) -> tuple[CausalSpan, ...]:
        """All spans of one trace, in record order."""
        return tuple(s for s in self.spans if s.trace_id == trace_id)

    def edges(self) -> tuple[tuple[int, int], ...]:
        """All happens-before edges as ``(parent_id, child_id)``."""
        out: list[tuple[int, int]] = []
        for s in self.spans:
            out.extend((p, s.span_id) for p in s.parents)
        return tuple(out)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form (schema ``repro.causal/v1``)."""
        return {
            "schema": "repro.causal/v1",
            "spans": [s.as_dict() for s in self.spans],
            "resolutions": [r.as_dict() for r in self.resolutions],
            "buddy_skips": [b.as_dict() for b in self.buddy_skips],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize as JSON text."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def render(self) -> str:
        """Human summary: one line per resolution, then buddy leads."""
        lines = [
            f"causal trace: {len(self.spans)} spans, "
            f"{len(self.trace_ids)} imports, "
            f"{len(self.resolutions)} resolutions"
        ]
        for r in self.resolutions:
            stages = ", ".join(
                f"{k}={v:.6f}" for k, v in sorted(r.stages.items())
            )
            lines.append(
                f"  {r.who} {r.connection_id}@{r.request_ts:g}: "
                f"latency={r.latency:.6f} [{' -> '.join(r.chain)}] ({stages})"
            )
        for b in self.buddy_skips:
            lines.append(
                f"  buddy-skip {b.who} {b.connection_id}@{b.request_ts:g}: "
                f"export_ts={b.export_ts:g} lead={b.lead:.6f}"
            )
        return "\n".join(lines)


def _critical_path(
    end: CausalSpan, by_id: dict[int, CausalSpan], clip_at: float
) -> list[CausalSpan]:
    """Walk max-time parents from *end* back to (or past) *clip_at*."""
    path = [end]
    cur = end
    while cur.parents and cur.time > clip_at:
        parent = max(
            (by_id[p] for p in cur.parents if p in by_id),
            key=lambda s: (s.time, s.span_id),
            default=None,
        )
        if parent is None:
            break
        path.append(parent)
        cur = parent
    return path


def _attribute_stages(
    path: list[CausalSpan], issued_at: float
) -> dict[str, float]:
    """Per-stage durations along *path*; clips the first edge at
    *issued_at* so the stage durations sum exactly to the resolution
    latency ``path[0].time - issued_at``."""
    stages: dict[str, float] = {}
    for child, parent in zip(path, path[1:]):
        start = max(parent.time, issued_at)
        dur = child.time - start
        if dur <= 0.0:
            continue
        stage = _stage_for(child.name)
        stages[stage] = stages.get(stage, 0.0) + dur
    # A root later than the issue time (answer already cached when the
    # request was re-asked) leaves a leading wait: count it as wire
    # transit so the telescoped sum still equals the latency.
    if path:
        root = path[-1]
        if root.time > issued_at:
            lead = root.time - issued_at
            stages[_WIRE_STAGE] = stages.get(_WIRE_STAGE, 0.0) + lead
    return stages


def build_causal_report(source: Any) -> CausalReport:
    """Reconstruct the causal DAG from *source*.

    *source* is a :class:`CausalLog` or a finished simulation exposing
    one as ``.causal`` (both runtimes do when ``causal_trace`` is on).
    """
    log = source if isinstance(source, CausalLog) else getattr(source, "causal", None)
    require(isinstance(log, CausalLog), "no causal log: run with causal_trace=True")
    assert isinstance(log, CausalLog)
    spans = tuple(log.spans)
    by_id = {s.span_id: s for s in spans}

    resolutions: list[ImportResolution] = []
    for span in spans:
        if span.name not in ("answered", "complete"):
            continue
        if span.name == "answered":
            # Skip if a 'complete' span continues this resolution: the
            # completion is the authoritative end point.
            if any(
                s.name == "complete" and span.span_id in s.parents for s in spans
            ):
                continue
        # The rank's own request root: earliest 'request' span of this
        # trace recorded by the same process.
        end_who = span.attrs.get("importer", span.who)
        roots = [
            s
            for s in spans
            if s.trace_id == span.trace_id
            and s.name == "request"
            and s.who == end_who
        ]
        if not roots:
            continue
        root = min(roots, key=lambda s: (s.time, s.span_id))
        issued_at = root.time
        path = _critical_path(span, by_id, clip_at=issued_at)
        stages = _attribute_stages(path, issued_at)
        retransmits = sum(
            1
            for s in spans
            if s.trace_id == span.trace_id
            and s.name == "retransmit"
            and s.who == end_who
        )
        agg = next(
            (
                s
                for s in spans
                if s.trace_id == span.trace_id and s.name == "aggregate"
            ),
            None,
        )
        resolutions.append(
            ImportResolution(
                trace_id=span.trace_id,
                connection_id=str(root.attrs.get("connection", "")),
                request_ts=float(root.attrs.get("request", 0.0)),
                who=end_who,
                issued_at=issued_at,
                resolved_at=span.time,
                latency=span.time - issued_at,
                path=tuple(s.span_id for s in path),
                chain=tuple(s.name for s in reversed(path)),
                stages=stages,
                answer_kind=span.attrs.get("kind"),
                case=None if agg is None else agg.attrs.get("case"),
                retransmits=retransmits,
            )
        )

    skips = tuple(
        BuddySkip(
            who=s.who,
            connection_id=str(s.attrs.get("connection", "")),
            request_ts=float(s.attrs.get("request", 0.0)),
            export_ts=float(s.attrs.get("export_ts", 0.0)),
            lead=float(s.attrs.get("lead", 0.0)),
        )
        for s in spans
        if s.name == "buddy_skip"
    )
    resolutions.sort(key=lambda r: (r.trace_id, r.who, r.resolved_at))
    return CausalReport(
        spans=spans, resolutions=tuple(resolutions), buddy_skips=skips
    )
