"""Unified observability: metrics, span timelines, and paper metrics.

Three pillars (see ``docs/observability.md``):

* :mod:`repro.obs.metrics` — labeled ``Counter``/``Gauge``/
  ``Histogram``/``Timer`` instruments in a :class:`MetricsRegistry`,
  frozen into :class:`MetricsSnapshot` for export.
* :mod:`repro.obs.spans` + :mod:`repro.obs.paper` — per-rank
  :class:`Timeline` objects over the trace stream, and the paper's
  Eq. 1–2 quantities (``T_ub``, buddy-help savings, slowest-process
  lag, PENDING-resolution latency) as :class:`PaperMetrics`.
* :mod:`repro.obs.collect` + :mod:`repro.obs.export` — post-run
  collection into a registry, Chrome ``trace_event`` JSON, and the
  ``repro report`` payload validators.
* :mod:`repro.obs.trace` + :mod:`repro.obs.stream` — causal
  (happens-before) tracing of every control-plane message with
  critical-path stage attribution per import, and opt-in streaming
  telemetry sinks (JSONL, OpenMetrics) for live monitoring.
* :mod:`repro.obs.prov` + :mod:`repro.obs.replay` — provenance-grade
  run recording (``repro.prov/v1`` append-only logs, opt-in via
  ``RunOptions.provenance``), bit-exact replay from the log alone,
  time-travel queries over buffer ledgers and PENDING frontiers, and
  differential replay diffing two causal DAGs.
* :mod:`repro.obs.fleet` + :mod:`repro.obs.profile` +
  :mod:`repro.obs.watch` — fleet observability: cross-session rollups
  with p50/p95/p99 quantiles (``repro.fleet/v1``, served on ``GET
  /metrics``), a thread-based sampling profiler with phase
  attribution (``repro.profile/v1``), and a declarative SLO watchdog
  emitting ``repro.alerts/v1`` records (``repro watch``).

The usual entry point is the facade: ``result.metrics`` /
``result.timeline`` / ``result.causal`` on
:class:`repro.api.RunResult`.
"""

from repro.obs.collect import collect_metrics
from repro.obs.export import (
    REPORT_SCHEMA,
    chrome_trace,
    validate_chrome_trace,
    validate_report_payload,
    write_chrome_trace,
)
from repro.obs.fleet import FLEET_SCHEMA, FleetRollup, ScenarioRollup
from repro.obs.profile import PROFILE_SCHEMA, Profile, SamplingProfiler
from repro.obs.stream import (
    ExpositionBuilder,
    JsonlSink,
    OpenMetricsSink,
    TelemetrySink,
    build_snapshot,
    escape_label_value,
    render_openmetrics,
    validate_openmetrics,
)
from repro.obs.watch import (
    ALERTS_SCHEMA,
    Rule,
    Watchdog,
    evaluate_rules,
    parse_rule,
    parse_rules,
)
from repro.obs.trace import (
    CausalLog,
    CausalReport,
    CausalSpan,
    TraceContext,
    build_causal_report,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricSample,
    MetricsRegistry,
    MetricsSnapshot,
    NullMetrics,
    Timer,
)
from repro.obs.paper import PaperMetrics, compute_paper_metrics
from repro.obs.prov import (
    PROV_SCHEMA,
    ProvenanceError,
    ProvenanceLog,
    ProvenanceRecorder,
    read_log,
    validate_provenance_log,
)
from repro.obs.replay import (
    diff_causal,
    differential_replay,
    materialize,
    replay,
    verify_replay,
)
from repro.obs.spans import Span, SpanRecorder, Timeline, TimelineSet, build_timelines

__all__ = [
    "ALERTS_SCHEMA",
    "FLEET_SCHEMA",
    "PROFILE_SCHEMA",
    "PROV_SCHEMA",
    "REPORT_SCHEMA",
    "CausalLog",
    "CausalReport",
    "CausalSpan",
    "Counter",
    "ExpositionBuilder",
    "FleetRollup",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricSample",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullMetrics",
    "OpenMetricsSink",
    "PaperMetrics",
    "Profile",
    "ProvenanceError",
    "ProvenanceLog",
    "ProvenanceRecorder",
    "Rule",
    "SamplingProfiler",
    "ScenarioRollup",
    "Span",
    "SpanRecorder",
    "TelemetrySink",
    "Timeline",
    "TimelineSet",
    "Timer",
    "TraceContext",
    "Watchdog",
    "build_causal_report",
    "build_snapshot",
    "build_timelines",
    "chrome_trace",
    "collect_metrics",
    "compute_paper_metrics",
    "diff_causal",
    "differential_replay",
    "escape_label_value",
    "evaluate_rules",
    "materialize",
    "parse_rule",
    "parse_rules",
    "read_log",
    "render_openmetrics",
    "replay",
    "validate_chrome_trace",
    "validate_openmetrics",
    "validate_provenance_log",
    "validate_report_payload",
    "verify_replay",
    "write_chrome_trace",
]
