"""Run-scoped metrics: counters, gauges, histograms and timers.

The observability layer's first pillar (see ``docs/observability.md``).
A :class:`MetricsRegistry` holds labeled instruments:

* :class:`Counter` — monotonically increasing event count,
* :class:`Gauge` — last-written value with a high-water mark,
* :class:`Histogram` — streaming distribution summary backed by
  :class:`repro.util.stats.OnlineStats` (count/mean/stddev/min/max)
  plus a fixed-size deterministic reservoir for p50/p95/p99 quantile
  estimates — memory stays bounded no matter how many samples arrive,
* :class:`Timer` — a histogram over durations, with a wall-clock
  context manager for live code.

Labels identify *which* program/rank/connection an instrument belongs
to; values are coerced to strings so label sets hash and serialize
stably.  :class:`NullMetrics` is the no-op default: every accessor
returns a shared do-nothing instrument, so instrumented call sites cost
one dynamic dispatch when metrics are off — nothing on the DES hot
path ever consults a registry (kernel and protocol counters are plain
attribute increments collected *after* the run by
:mod:`repro.obs.collect`).

:class:`MetricsSnapshot` is the immutable export form:
:meth:`MetricsSnapshot.to_json` for machine consumption,
:meth:`MetricsSnapshot.render` for a human rollup.
"""

from __future__ import annotations

import json
import math
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.util.stats import OnlineStats
from repro.util.validation import require

from repro.obs.paper import PaperMetrics

#: A label set in canonical (hashable) form.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add *n* (must be >= 0) to the count."""
        require(n >= 0, "counters only increase")
        self.value += n


class Gauge:
    """A point-in-time value with a high-water mark."""

    __slots__ = ("value", "high_water")

    def __init__(self) -> None:
        self.value = 0.0
        self.high_water = -math.inf

    def set(self, value: float) -> None:
        """Record the current value (and raise the high-water mark)."""
        self.value = float(value)
        if value > self.high_water:
            self.high_water = float(value)

    def add(self, delta: float) -> None:
        """Adjust the current value by *delta*."""
        self.set(self.value + delta)


#: Reservoir size for quantile estimation.  512 floats bound the memory
#: of every histogram while keeping p99 usable (±~1% rank error at the
#: tail for arbitrarily long streams).
RESERVOIR_CAPACITY = 512

#: Fixed seed so two runs observing identical sample streams export
#: identical quantiles (replay and golden tests depend on this).
_RESERVOIR_SEED = 0x5EED


class Histogram:
    """A streaming distribution summary with bounded memory.

    Unlike :class:`repro.util.stats.Histogram` (fixed bins over a known
    range), this instrument works for unknown ranges: it keeps Welford
    aggregates plus a fixed-size uniform reservoir (Vitter's Algorithm
    R, deterministic seed) from which :meth:`quantile` interpolates
    p50/p95/p99.  NaN samples are rejected, matching the stats helper's
    contract.
    """

    __slots__ = ("stats", "_reservoir", "_rng")

    def __init__(self) -> None:
        self.stats = OnlineStats()
        self._reservoir: list[float] = []
        self._rng = random.Random(_RESERVOIR_SEED)

    def observe(self, x: float) -> None:
        """Fold one sample into the distribution."""
        if math.isnan(x):
            raise ValueError("histogram samples must not be NaN")
        v = float(x)
        self.stats.add(v)
        if len(self._reservoir) < RESERVOIR_CAPACITY:
            self._reservoir.append(v)
        else:
            j = self._rng.randrange(self.stats.count)
            if j < RESERVOIR_CAPACITY:
                self._reservoir[j] = v

    @property
    def count(self) -> int:
        """Number of samples observed."""
        return self.stats.count

    def quantile(self, q: float) -> float:
        """Estimated *q*-quantile (linear interpolation over the reservoir).

        Exact while the stream fits in the reservoir; a uniform-sample
        estimate beyond that.  Empty distributions report 0.0.
        """
        require(0.0 <= q <= 1.0, "quantile must be within [0, 1]")
        if not self._reservoir:
            return 0.0
        xs = sorted(self._reservoir)
        pos = q * (len(xs) - 1)
        lo = int(pos)
        hi = min(lo + 1, len(xs) - 1)
        frac = pos - lo
        return xs[lo] * (1.0 - frac) + xs[hi] * frac

    def merge(self, other: Histogram) -> Histogram:
        """A new histogram combining both distributions.

        Welford aggregates merge exactly (parallel Welford); the
        reservoirs concatenate and, past capacity, downsample with a
        seed derived from the combined size — deterministic for a given
        pair of inputs, so rollup merges are reproducible.
        """
        out = Histogram()
        out.stats = self.stats.merge(other.stats)
        combined = self._reservoir + other._reservoir
        if len(combined) > RESERVOIR_CAPACITY:
            rng = random.Random(_RESERVOIR_SEED ^ len(combined))
            combined = rng.sample(combined, RESERVOIR_CAPACITY)
        out._reservoir = combined
        return out

    def as_state(self) -> dict[str, Any]:
        """Serializable full state (aggregates + reservoir).

        :meth:`from_state` restores it bit-exactly, which is what makes
        fleet rollup snapshots restart-safe.
        """
        s = self.stats
        return {
            "count": s.count,
            "mean": s.mean,
            "m2": s._m2,
            "min": s.minimum if s.count else 0.0,
            "max": s.maximum if s.count else 0.0,
            "reservoir": list(self._reservoir),
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> Histogram:
        """Rebuild a histogram from :meth:`as_state` output."""
        out = cls()
        n = int(state.get("count", 0))
        if n:
            s = out.stats
            s._n = n
            s._mean = float(state["mean"])
            s._m2 = float(state.get("m2", 0.0))
            s._min = float(state["min"])
            s._max = float(state["max"])
        out._reservoir = [float(x) for x in state.get("reservoir", [])]
        return out

    def summary(self) -> dict[str, float]:
        """Plain-dict aggregate view (empty distributions are all-zero)."""
        s = self.stats
        if s.count == 0:
            return {
                "count": 0, "mean": 0.0, "stddev": 0.0, "min": 0.0, "max": 0.0,
                "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }
        return {
            "count": float(s.count),
            "mean": s.mean,
            "stddev": s.stddev,
            "min": s.minimum,
            "max": s.maximum,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class Timer(Histogram):
    """A histogram over durations, in seconds."""

    __slots__ = ()

    @contextmanager
    def time(self) -> Iterator[None]:
        """Measure a wall-clock block: ``with timer.time(): ...``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - t0)


@dataclass(frozen=True)
class MetricSample:
    """One instrument's exported state."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram" | "timer"
    labels: dict[str, str]
    value: float
    #: Extra per-kind detail: high-water for gauges, the aggregate
    #: summary for histograms/timers.
    detail: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form."""
        out: dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "labels": dict(self.labels),
            "value": self.value,
        }
        if self.detail:
            out["detail"] = dict(self.detail)
        return out


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable export of a registry (plus the first-class paper metrics)."""

    samples: tuple[MetricSample, ...]
    paper: PaperMetrics | None = None

    # -- queries ---------------------------------------------------------
    def get(self, name: str, **labels: Any) -> MetricSample | None:
        """The sample matching *name* and exactly these labels."""
        key = _label_key(labels)
        for s in self.samples:
            if s.name == name and _label_key(dict(s.labels)) == key:
                return s
        return None

    def value(self, name: str, default: float = 0.0, **labels: Any) -> float:
        """Shorthand: the matching sample's value, or *default*."""
        s = self.get(name, **labels)
        return s.value if s is not None else default

    def total(self, name: str, **labels: Any) -> float:
        """Sum of every sample of *name* whose labels include *labels*."""
        want = dict(_label_key(labels))
        out = 0.0
        for s in self.samples:
            if s.name != name:
                continue
            if all(s.labels.get(k) == v for k, v in want.items()):
                out += s.value
        return out

    def names(self) -> list[str]:
        """Sorted distinct metric names."""
        return sorted({s.name for s in self.samples})

    # -- export ----------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form, paper metrics included when present."""
        out: dict[str, Any] = {
            "metrics": [s.as_dict() for s in self.samples],
        }
        if self.paper is not None:
            out["paper"] = self.paper.as_dict()
        return out

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize the snapshot as JSON text."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def render(self) -> str:
        """Human-readable rollup, one line per sample."""
        lines = []
        for s in sorted(self.samples, key=lambda s: (s.name, sorted(s.labels.items()))):
            labels = ",".join(f"{k}={v}" for k, v in sorted(s.labels.items()))
            label_part = f"{{{labels}}}" if labels else ""
            lines.append(f"{s.name}{label_part} = {s.value:g}")
        return "\n".join(lines)


class MetricsRegistry:
    """Get-or-create home of labeled instruments."""

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, str, LabelKey], Any] = {}

    def _get(self, kind: str, factory: type, name: str, labels: dict[str, Any]) -> Any:
        key = (kind, name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = factory()
            self._instruments[key] = inst
        return inst

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter *name* for this label set (created on first use)."""
        inst: Counter = self._get("counter", Counter, name, labels)
        return inst

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge *name* for this label set."""
        inst: Gauge = self._get("gauge", Gauge, name, labels)
        return inst

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The histogram *name* for this label set."""
        inst: Histogram = self._get("histogram", Histogram, name, labels)
        return inst

    def timer(self, name: str, **labels: Any) -> Timer:
        """The timer *name* for this label set."""
        inst: Timer = self._get("timer", Timer, name, labels)
        return inst

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self, paper: PaperMetrics | None = None) -> MetricsSnapshot:
        """Freeze every instrument into a :class:`MetricsSnapshot`."""
        samples: list[MetricSample] = []
        for (kind, name, key), inst in sorted(
            self._instruments.items(), key=lambda kv: kv[0]
        ):
            labels = dict(key)
            if kind == "counter":
                samples.append(
                    MetricSample(name=name, kind=kind, labels=labels,
                                 value=float(inst.value))
                )
            elif kind == "gauge":
                hw = inst.high_water
                detail = {"high_water": hw} if hw > -math.inf else {}
                samples.append(
                    MetricSample(name=name, kind=kind, labels=labels,
                                 value=float(inst.value), detail=detail)
                )
            else:  # histogram / timer
                summary = inst.summary()
                samples.append(
                    MetricSample(name=name, kind=kind, labels=labels,
                                 value=summary["mean"], detail=summary)
                )
        return MetricsSnapshot(samples=tuple(samples), paper=paper)


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, x: float) -> None:
        pass


class _NullTimer(Timer):
    __slots__ = ()

    def observe(self, x: float) -> None:
        pass


class NullMetrics(MetricsRegistry):
    """The do-nothing registry: every accessor returns a shared no-op.

    This is the default wired into instrumented call sites, so a run
    without observability pays one dynamic dispatch per call at most —
    and the framework's own hot paths avoid even that by keeping plain
    attribute counters that :func:`repro.obs.collect.collect_metrics`
    reads after the run.
    """

    _counter = _NullCounter()
    _gauge = _NullGauge()
    _histogram = _NullHistogram()
    _timer = _NullTimer()

    def counter(self, name: str, **labels: Any) -> Counter:
        """The shared no-op counter."""
        return self._counter

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The shared no-op gauge."""
        return self._gauge

    def histogram(self, name: str, **labels: Any) -> Histogram:
        """The shared no-op histogram."""
        return self._histogram

    def timer(self, name: str, **labels: Any) -> Timer:
        """The shared no-op timer."""
        return self._timer

    def snapshot(self, paper: PaperMetrics | None = None) -> MetricsSnapshot:
        """An empty snapshot."""
        return MetricsSnapshot(samples=(), paper=paper)
