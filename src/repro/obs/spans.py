"""Span timelines: per-rank intervals layered over the trace stream.

The observability layer's second pillar.  A :class:`Span` is a named
interval on one thread of activity (``"F.p1"``, ``"F.rep"``); a
:class:`Timeline` is every span and instant event for one such thread;
a :class:`TimelineSet` is the whole run.

Two sources feed timelines:

* **Derived spans** — :func:`build_timelines` reconstructs intervals
  from protocol records that already exist: each
  :class:`~repro.core.coupler.ExportRecord` becomes an
  ``export:<decision>`` span covering its memcpy/skip charge, and each
  answered :class:`~repro.core.importer.ImportRecord` becomes an
  ``import:wait`` span (request issued → answer known) followed by
  ``import:transfer`` (answer known → data complete).  Trace events
  recorded by the run's tracer ride along as instants.
* **User spans** — a :class:`SpanRecorder` passed to
  :func:`build_timelines` lets application ``main`` callbacks mark
  their own phases (``rec.add("solve", ctx.who, t0, t1)``) and see
  them interleaved with the framework's.

Everything here is virtual (simulated) time; the Chrome exporter in
:mod:`repro.obs.export` scales it to microseconds for the viewer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.util.tracing import TraceEvent
from repro.util.validation import require


@dataclass(frozen=True)
class Span:
    """A named interval on one thread of activity."""

    name: str
    who: str
    start: float
    end: float
    #: Free-form annotations (request timestamps, byte counts, ...).
    args: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require(self.end >= self.start, f"span {self.name!r} ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form."""
        out: dict[str, Any] = {
            "name": self.name,
            "who": self.who,
            "start": self.start,
            "end": self.end,
        }
        if self.args:
            out["args"] = dict(self.args)
        return out


@dataclass
class Timeline:
    """All activity for one thread (``who``), time-ordered."""

    who: str
    spans: list[Span] = field(default_factory=list)
    events: list[TraceEvent] = field(default_factory=list)

    def sort(self) -> None:
        self.spans.sort(key=lambda s: (s.start, s.end, s.name))
        self.events.sort(key=lambda e: (e.time, e.kind))

    @property
    def busy_time(self) -> float:
        """Total span time (overlaps counted twice — spans may nest)."""
        return sum(s.duration for s in self.spans)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form."""
        return {
            "who": self.who,
            "spans": [s.as_dict() for s in self.spans],
            "events": [
                {"kind": e.kind, "time": e.time, "detail": dict(e.detail)}
                for e in self.events
            ],
        }


@dataclass
class TimelineSet:
    """Per-thread timelines for a whole run."""

    timelines: dict[str, Timeline] = field(default_factory=dict)

    def timeline(self, who: str) -> Timeline:
        """The (possibly empty, created-on-demand) timeline for *who*."""
        tl = self.timelines.get(who)
        if tl is None:
            tl = Timeline(who=who)
            self.timelines[who] = tl
        return tl

    def whos(self) -> list[str]:
        """Sorted thread names."""
        return sorted(self.timelines)

    def all_spans(self) -> list[Span]:
        """Every span across threads, time-ordered."""
        out = [s for tl in self.timelines.values() for s in tl.spans]
        out.sort(key=lambda s: (s.start, s.who, s.name))
        return out

    def span_count(self) -> int:
        return sum(len(tl.spans) for tl in self.timelines.values())

    def event_count(self) -> int:
        return sum(len(tl.events) for tl in self.timelines.values())

    def sort(self) -> None:
        for tl in self.timelines.values():
            tl.sort()

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form, threads in sorted order."""
        return {who: self.timelines[who].as_dict() for who in self.whos()}


class SpanRecorder:
    """User-facing span capture for application callbacks.

    Either bracket explicitly::

        rec.begin("solve", ctx.who, ctx.sim.now)
        ...
        rec.end("solve", ctx.who, ctx.sim.now)

    or add a finished interval directly with :meth:`add`.  Unbalanced
    ``begin`` calls are reported by :meth:`open_spans`; when merged
    into a run's timelines by :func:`build_timelines` they are flushed
    at the run's end time with an ``unclosed: True`` annotation rather
    than silently dropped (an interrupted phase is still a phase).
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._open: dict[tuple[str, str], list[tuple[float, dict[str, Any]]]] = {}

    def add(self, name: str, who: str, start: float, end: float, **args: Any) -> Span:
        """Record a finished interval."""
        span = Span(name=name, who=who, start=start, end=end, args=dict(args))
        self.spans.append(span)
        return span

    def begin(self, name: str, who: str, time: float, **args: Any) -> None:
        """Open an interval; pair with :meth:`end` (LIFO per name/who)."""
        self._open.setdefault((name, who), []).append((time, dict(args)))

    def end(self, name: str, who: str, time: float, **args: Any) -> Span:
        """Close the most recent open interval for *name*/*who*."""
        stack = self._open.get((name, who))
        require(bool(stack), f"no open span {name!r} for {who!r}")
        assert stack is not None
        start, start_args = stack.pop()
        if not stack:
            del self._open[(name, who)]
        return self.add(name, who, start, time, **{**start_args, **args})

    def open_spans(self) -> list[tuple[str, str]]:
        """(name, who) pairs begun but never ended."""
        return sorted(self._open)

    def flush_open(self, time: float) -> list[Span]:
        """Close every open interval at *time*, marked ``unclosed=True``.

        Called by :func:`build_timelines` at a run's end time so spans
        a crashed or early-exiting ``main`` never closed still appear
        in the timeline (annotated, not guessed at).  Returns the
        flushed spans; afterwards :meth:`open_spans` is empty.
        """
        flushed: list[Span] = []
        for (name, who), stack in sorted(self._open.items()):
            for start, start_args in stack:
                end = max(time, start)
                flushed.append(
                    self.add(name, who, start, end, **{**start_args, "unclosed": True})
                )
        self._open.clear()
        return flushed


def _export_spans(sim: Any) -> Iterable[Span]:
    for prog in getattr(sim, "_programs", {}).values():
        for ctx in getattr(prog, "contexts", []):
            for rec in ctx.stats.export_records:
                # Live-runtime records carry a duration but no start
                # time; only DES export records become spans.
                at = getattr(rec, "at", None)
                if at is None:
                    continue
                yield Span(
                    name=f"export:{rec.decision}",
                    who=ctx.who,
                    start=at,
                    end=at + rec.cost,
                    args={"ts": rec.ts},
                )


def _import_spans(sim: Any) -> Iterable[Span]:
    for prog in getattr(sim, "_programs", {}).values():
        for ctx in getattr(prog, "contexts", []):
            for ist in getattr(ctx, "import_states", {}).values():
                for rec in ist.records:
                    if rec.answered_at is not None:
                        yield Span(
                            name="import:wait",
                            who=ctx.who,
                            start=rec.issued_at,
                            end=rec.answered_at,
                            args={"request": rec.request_ts},
                        )
                    if rec.completed_at is not None:
                        start = (
                            rec.answered_at
                            if rec.answered_at is not None
                            else rec.issued_at
                        )
                        yield Span(
                            name="import:transfer",
                            who=ctx.who,
                            start=start,
                            end=rec.completed_at,
                            args={"request": rec.request_ts},
                        )


def _end_time(sim: Any, recorder: SpanRecorder) -> float:
    """Best-known run end time for flushing unclosed user spans."""
    inner = getattr(sim, "sim", None)
    if inner is not None and hasattr(inner, "now"):
        return float(inner.now)
    clock = getattr(sim, "elapsed", None)
    if callable(clock):
        return float(clock())
    # No runtime clock (bare recorder merge): latest known timestamp.
    times = [s.end for s in recorder.spans]
    times.extend(t for stack in recorder._open.values() for t, _ in stack)
    return max(times, default=0.0)


def build_timelines(
    sim: Any,
    tracer: Any = None,
    recorder: SpanRecorder | None = None,
) -> TimelineSet:
    """Assemble per-thread timelines for a finished simulation.

    Combines derived protocol spans, the tracer's instant events, and
    any user-recorded spans.  *tracer* defaults to the simulation's
    own; pass a different one to overlay a filtered view.
    """
    out = TimelineSet()
    for span in _export_spans(sim):
        out.timeline(span.who).spans.append(span)
    for span in _import_spans(sim):
        out.timeline(span.who).spans.append(span)
    if recorder is not None:
        if recorder.open_spans():
            recorder.flush_open(_end_time(sim, recorder))
        for span in recorder.spans:
            out.timeline(span.who).spans.append(span)
    tracer = tracer if tracer is not None else getattr(sim, "tracer", None)
    for event in getattr(tracer, "events", ()):
        out.timeline(event.who).events.append(event)
    out.sort()
    return out
