"""Streaming telemetry for live coupled runs.

A coupled run configured with ``RunOptions(telemetry_sinks=(...,))``
periodically emits one *snapshot record* (schema
``repro.telemetry/v1``) to every sink: a JSON-able dict with the
current simulation time, per-program progress (latest export
timestamp, pending imports, buddy skips, accumulated ``T_ub``) and
run-wide wire totals.  The final record of a run carries
``final: true``.

Two sink implementations ship in-repo:

* :class:`JsonlSink` appends one JSON line per snapshot — the format
  ``repro monitor`` tails.
* :class:`OpenMetricsSink` rewrites an OpenMetrics text exposition on
  every flush, suitable for a Prometheus file-based scrape.  The
  exposition is checked by :func:`validate_openmetrics` in CI.

Both runtimes call :func:`emit_snapshot` from their periodic flush
hook; streaming is strictly opt-in — with no sinks configured neither
runtime ever imports this module.
"""

from __future__ import annotations

import json
import re
from typing import Any, Iterable, Protocol, runtime_checkable

__all__ = [
    "TelemetrySink",
    "JsonlSink",
    "OpenMetricsSink",
    "ExpositionBuilder",
    "build_snapshot",
    "emit_snapshot",
    "escape_label_value",
    "render_openmetrics",
    "validate_openmetrics",
]

#: Schema tag stamped on every snapshot record.
SCHEMA = "repro.telemetry/v1"


@runtime_checkable
class TelemetrySink(Protocol):
    """Anything that can receive telemetry snapshot records."""

    def emit(self, record: dict[str, Any]) -> None:
        """Receive one snapshot record (schema ``repro.telemetry/v1``)."""

    def close(self) -> None:
        """Flush and release resources (called at most once)."""


# ---------------------------------------------------------------------------
# snapshot construction
# ---------------------------------------------------------------------------
def _sim_now(sim: Any) -> float:
    """Current run time of either runtime (virtual or wall seconds)."""
    inner = getattr(sim, "sim", None)
    if inner is not None and hasattr(inner, "now"):
        return float(inner.now)
    clock = getattr(sim, "elapsed", None)
    if callable(clock):
        return float(clock())
    return 0.0


def build_snapshot(sim: Any, final: bool = False) -> dict[str, Any]:
    """One ``repro.telemetry/v1`` record for a running coupled simulation.

    *sim* is a :class:`~repro.core.coupler.CoupledSimulation` or
    :class:`~repro.core.live.LiveCoupledSimulation` (anything with the
    shared ``_programs`` runtime layout works).
    """
    programs: dict[str, Any] = {}
    tot_pending = 0
    tot_skips = 0
    tot_t_ub = 0.0
    for name, prog in getattr(sim, "_programs", {}).items():
        contexts = getattr(prog, "contexts", [])
        last_export: float | None = None
        exports = 0
        pending = 0
        completed = 0
        skips = 0
        t_ub = 0.0
        compute = 0.0
        for ctx in contexts:
            stats = ctx.stats
            exports += len(stats.export_records)
            if stats.export_records:
                ts = stats.export_records[-1].ts
                last_export = ts if last_export is None else max(last_export, ts)
            skips += stats.buddy_skips
            compute += getattr(stats, "compute_time", 0.0)
            for ist in ctx.import_states.values():
                for rec in ist.records:
                    if rec.completed_at is None:
                        pending += 1
                    else:
                        completed += 1
            for est in ctx.export_states.values():
                t_ub += est.buffer.t_ub()
        programs[name] = {
            "ranks": prog.nprocs,
            "alive": prog.alive,
            "last_export_ts": last_export,
            "exports": exports,
            "pending_imports": pending,
            "imports_completed": completed,
            "buddy_skips": skips,
            "t_ub": t_ub,
            "compute_time": compute,
        }
        tot_pending += pending
        tot_skips += skips
        tot_t_ub += t_ub
    return {
        "schema": SCHEMA,
        "time": _sim_now(sim),
        "final": bool(final),
        "programs": programs,
        "totals": {
            "pending_imports": tot_pending,
            "buddy_skips": tot_skips,
            "t_ub": tot_t_ub,
            "ctl_messages": getattr(sim, "ctl_messages", 0),
            "ctl_bytes": getattr(sim, "ctl_bytes", 0),
            "data_messages": getattr(sim, "data_messages", 0),
            "data_bytes": getattr(sim, "data_bytes", 0),
            "retransmissions": getattr(sim, "retransmissions", 0),
            "dup_discards": getattr(sim, "dup_discards", 0),
        },
    }


def emit_snapshot(
    sim: Any, sinks: Iterable[TelemetrySink], final: bool = False
) -> dict[str, Any]:
    """Build one snapshot and deliver it to every sink."""
    record = build_snapshot(sim, final=final)
    for sink in sinks:
        sink.emit(record)
    return record


# ---------------------------------------------------------------------------
# sinks
# ---------------------------------------------------------------------------
class JsonlSink:
    """Append one JSON line per snapshot to *path*.

    Lines are flushed immediately so ``repro monitor --follow`` can
    tail the file while the run is still going.  A ``.gz`` suffix
    gzip-compresses the stream (append mode concatenates gzip members,
    which every conforming reader — including :mod:`gzip` — decodes as
    one stream).
    """

    def __init__(self, path: str) -> None:
        # Shared with the provenance writer so both honor ``.gz``.
        from repro.obs.prov import open_text

        self.path = path
        self._fh = open_text(path, "a")
        self.records = 0

    def emit(self, record: dict[str, Any]) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        self.records += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class OpenMetricsSink:
    """Rewrite an OpenMetrics text exposition on every snapshot.

    Point a Prometheus file-scrape (or any OpenMetrics consumer) at
    *path*; the latest snapshot fully replaces the previous one, so
    the file always holds one consistent exposition ending in
    ``# EOF``.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.records = 0
        self.last: dict[str, Any] | None = None

    def emit(self, record: dict[str, Any]) -> None:
        text = render_openmetrics(record)
        with open(self.path, "w", encoding="utf-8") as fh:
            fh.write(text)
        self.records += 1
        self.last = record

    def close(self) -> None:  # nothing held open between flushes
        return None


# ---------------------------------------------------------------------------
# OpenMetrics rendering + in-repo validator
# ---------------------------------------------------------------------------
#: ``(family, type, help, totals key or None)`` for run-wide metrics.
_TOTALS_FAMILIES: tuple[tuple[str, str, str, str], ...] = (
    ("repro_pending_imports", "gauge", "Imports issued but not completed", "pending_imports"),
    ("repro_buddy_skips", "counter", "Skips enabled by buddy answers", "buddy_skips"),
    ("repro_t_ub_seconds", "gauge", "Eq. 2 unnecessary buffering time so far", "t_ub"),
    ("repro_ctl_messages", "counter", "Control-plane messages sent", "ctl_messages"),
    ("repro_ctl_bytes", "counter", "Control-plane bytes sent", "ctl_bytes"),
    ("repro_data_messages", "counter", "Data-plane messages sent", "data_messages"),
    ("repro_data_bytes", "counter", "Data-plane bytes sent", "data_bytes"),
    ("repro_retransmissions", "counter", "Importer request retransmissions", "retransmissions"),
    ("repro_dup_discards", "counter", "Duplicate wire messages discarded", "dup_discards"),
)

#: ``(family, type, help, program key)`` for per-program metrics.
_PROGRAM_FAMILIES: tuple[tuple[str, str, str, str], ...] = (
    ("repro_last_export_timestamp", "gauge", "Latest export timestamp per program", "last_export_ts"),
    ("repro_exports", "counter", "Export calls per program", "exports"),
    ("repro_program_pending_imports", "gauge", "Pending imports per program", "pending_imports"),
    ("repro_imports_completed", "counter", "Completed imports per program", "imports_completed"),
    ("repro_program_buddy_skips", "counter", "Buddy-enabled skips per program", "buddy_skips"),
    ("repro_program_t_ub_seconds", "gauge", "Eq. 2 T_ub per program", "t_ub"),
    ("repro_alive_processes", "gauge", "Processes still running per program", "alive"),
)


def _fmt(value: Any) -> str:
    if value is None:
        return "NaN"
    f = float(value)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def escape_label_value(value: str) -> str:
    """Escape a label value per the OpenMetrics text format.

    Backslash, double-quote and newline are the three characters the
    format requires escaping inside quoted label values.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


class ExpositionBuilder:
    """Accumulates OpenMetrics families and samples, then renders text.

    Shared by the telemetry sink renderer and the fleet ``/metrics``
    endpoint so both produce the same dialect: ``# TYPE``/``# HELP``
    per family, escaped label values, counter samples suffixed
    ``_total``, and a final ``# EOF`` line.
    """

    def __init__(self) -> None:
        self._lines: list[str] = []

    def family(self, name: str, mtype: str, help_text: str) -> None:
        """Open a metric family (emits its TYPE and HELP lines)."""
        self._lines.append(f"# TYPE {name} {mtype}")
        self._lines.append(f"# HELP {name} {help_text}")

    def sample(
        self, name: str, mtype: str, labels: dict[str, str], value: Any
    ) -> None:
        """Append one sample line (labels escaped, counters ``_total``)."""
        sname = f"{name}_total" if mtype == "counter" else name
        if labels:
            body = ",".join(
                f'{k}="{escape_label_value(str(v))}"' for k, v in labels.items()
            )
            self._lines.append(f"{sname}{{{body}}} {_fmt(value)}")
        else:
            self._lines.append(f"{sname} {_fmt(value)}")

    def render(self) -> str:
        """The complete exposition, terminated by ``# EOF``."""
        return "\n".join([*self._lines, "# EOF"]) + "\n"


def render_openmetrics(record: dict[str, Any]) -> str:
    """Render one telemetry record as an OpenMetrics text exposition."""
    out = ExpositionBuilder()
    out.family("repro_telemetry_time_seconds", "gauge", "Run time of this snapshot")
    out.sample("repro_telemetry_time_seconds", "gauge", {}, record.get("time", 0.0))
    out.family("repro_run_final", "gauge", "1 when this is the run's last snapshot")
    out.sample("repro_run_final", "gauge", {}, 1 if record.get("final") else 0)

    totals = record.get("totals", {})
    for name, mtype, help_text, key in _TOTALS_FAMILIES:
        out.family(name, mtype, help_text)
        out.sample(name, mtype, {}, totals.get(key, 0))

    programs = record.get("programs", {})
    for name, mtype, help_text, key in _PROGRAM_FAMILIES:
        out.family(name, mtype, help_text)
        for pname, pdata in programs.items():
            out.sample(name, mtype, {"program": str(pname)}, pdata.get(key))

    return out.render()


_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_NAME_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")
_TYPES = ("gauge", "counter", "info", "unknown")

#: Legal escape sequences inside a quoted label value.
_ESCAPES = {"\\": "\\", '"': '"', "n": "\n"}


def _parse_sample(line: str) -> tuple[str, list[tuple[str, str]], str]:
    """Parse one sample line into ``(name, labels, value)``.

    A character-scanning parser rather than a regex: quoted label
    values may legally contain ``,``, ``}`` and escaped quotes, which
    no single regex over the label block can honor.  Raises
    :class:`ValueError` with a human-readable reason on malformed
    input.
    """
    m = _NAME_RE.match(line)
    if m is None or m.start() != 0:
        raise ValueError("sample must start with a metric name")
    name = m.group(0)
    i = m.end()
    labels: list[tuple[str, str]] = []
    if i < len(line) and line[i] == "{":
        i += 1
        while True:
            if i >= len(line):
                raise ValueError("unterminated label block")
            if line[i] == "}":
                i += 1
                break
            lm = _LABEL_NAME_RE.match(line, i)
            if lm is None:
                raise ValueError(f"bad label name at column {i + 1}")
            lname = lm.group(0)
            i = lm.end()
            if not line.startswith('="', i):
                raise ValueError(f"label {lname!r} must be followed by ='\"'")
            i += 2
            buf: list[str] = []
            while True:
                if i >= len(line):
                    raise ValueError(f"unterminated value for label {lname!r}")
                c = line[i]
                if c == "\\":
                    if i + 1 >= len(line) or line[i + 1] not in _ESCAPES:
                        raise ValueError(
                            f"invalid escape in label {lname!r} at column {i + 1}"
                        )
                    buf.append(_ESCAPES[line[i + 1]])
                    i += 2
                elif c == '"':
                    i += 1
                    break
                else:
                    buf.append(c)
                    i += 1
            labels.append((lname, "".join(buf)))
            if i < len(line) and line[i] == ",":
                i += 1
            elif i < len(line) and line[i] == "}":
                i += 1
                break
            else:
                raise ValueError(f"expected ',' or '}}' after label {lname!r}")
    if i >= len(line) or line[i] != " ":
        raise ValueError("expected a space before the sample value")
    rest = line[i + 1 :].split(" ")
    if len(rest) not in (1, 2) or not rest[0]:
        raise ValueError("expected 'value' or 'value timestamp'")
    return name, labels, rest[0]


def validate_openmetrics(text: str) -> list[str]:
    """Check *text* against the OpenMetrics text-format rules we rely on.

    Returns a list of human-readable problems (empty when valid).
    Enforced: ``# EOF`` terminator on the last line, ``# TYPE`` before
    any sample of a family, known metric types, legal metric/label
    names, correctly escaped label values (``\\\\``, ``\\"``, ``\\n``
    only), parseable float values, and the counter ``_total`` sample
    suffix (gauges must use the bare family name).
    """
    problems: list[str] = []
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        problems.append("exposition must end with a '# EOF' line")
    types: dict[str, str] = {}
    for i, line in enumerate(lines[:-1] if lines and lines[-1] == "# EOF" else lines):
        where = f"line {i + 1}"
        if not line:
            problems.append(f"{where}: empty line inside exposition")
            continue
        if line == "# EOF":
            problems.append(f"{where}: '# EOF' before the last line")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not _NAME_RE.fullmatch(parts[2]):
                problems.append(f"{where}: malformed TYPE line {line!r}")
                continue
            fam, mtype = parts[2], parts[3]
            if mtype not in _TYPES:
                problems.append(f"{where}: unknown metric type {mtype!r}")
            if fam in types:
                problems.append(f"{where}: duplicate TYPE for family {fam!r}")
            types[fam] = mtype
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 4 or not _NAME_RE.fullmatch(parts[2]):
                problems.append(f"{where}: malformed HELP line {line!r}")
            continue
        if line.startswith("#"):
            problems.append(f"{where}: unexpected comment {line!r}")
            continue
        try:
            name, labels, value = _parse_sample(line)
        except ValueError as exc:
            problems.append(f"{where}: unparseable sample {line!r} ({exc})")
            continue
        seen_label_names = [k for k, _ in labels]
        if len(set(seen_label_names)) != len(seen_label_names):
            problems.append(f"{where}: duplicate label name in {line!r}")
        try:
            float(value)
        except ValueError:
            problems.append(f"{where}: non-numeric value {value!r}")
        family = name[: -len("_total")] if name.endswith("_total") else name
        if family in types and types[family] == "counter":
            if not name.endswith("_total"):
                problems.append(
                    f"{where}: counter sample {name!r} must end in '_total'"
                )
        elif name in types:
            if types[name] == "counter":
                problems.append(
                    f"{where}: counter sample {name!r} must end in '_total'"
                )
        elif family not in types and name not in types:
            problems.append(f"{where}: sample {name!r} has no preceding TYPE")
    return problems
