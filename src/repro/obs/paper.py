"""First-class paper metrics: Eq. 1–2 ``T_ub``, buddy savings, lags.

The quantities the paper argues with (see ``docs/paper_mapping.md``):

* **T_i / T_ub** (Eq. 1–2): the in-region unnecessary buffering time —
  memcpy time spent buffering objects inside a request's acceptable
  region that were *not* the final match.  The
  :class:`~repro.core.buffers.BufferManager` accrues these exactly;
  this module rolls them up per rank and per program.
* **Buddy-help savings**: the memcpy time a process *avoided* because
  a skip was enabled by buddy-help knowledge (an answer its own export
  stream had not yet reached).  ``t_ub_no_help_estimate`` is the
  counterfactual: what the run's buffering waste would have been had
  every buddy-enabled skip been a buffered-then-freed candidate
  instead (the Figure-8 churn) — ``T_ub + buddy_saved_time``.
* **Slowest-process lag**: per program, the spread between the
  most-loaded and least-loaded rank's compute time (the paper's
  ``p_s`` is the rank with the largest lag).
* **PENDING-resolution latency**: virtual time from a request reaching
  a process that answered PENDING to the rep finalizing that request —
  how long the slow path stays open.  Computed from trace events when
  a tracer recorded the run, else estimated from importer-side answer
  latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.util import tracing
from repro.util.stats import OnlineStats
from repro.util.tracing import Tracer


@dataclass(frozen=True)
class PaperMetrics:
    """The paper's headline quantities for one finished run."""

    #: Eq. 2 per exporting rank: ``"F.p1" -> seconds``.
    t_ub_by_rank: dict[str, float]
    #: Eq. 2 summed over every exporting rank.
    t_ub_total: float
    #: Eq. 1 ledger merged over ranks: window index -> ``T_i``.
    t_by_window: dict[int, float]
    #: Memcpy time skipped thanks to buddy-help, per rank and total.
    buddy_saved_by_rank: dict[str, float]
    buddy_saved_total: float
    #: Counterfactual no-help waste: ``t_ub_total + buddy_saved_total``.
    t_ub_no_help_estimate: float
    #: Buddy-help traffic: answers disseminated / received / skips enabled.
    buddy_helps_sent: int
    buddy_answers_received: int
    buddy_skips: int
    #: Per program: slowest minus fastest rank compute time.
    slowest_lag_by_program: dict[str, float]
    #: PENDING-resolution latency summary (virtual seconds).
    pending_resolution: dict[str, float] = field(default_factory=dict)
    #: Where the latency came from: "trace" or "import_records".
    pending_resolution_source: str = "none"

    @property
    def t_ub_saving(self) -> float:
        """What buddy-help saved vs. the no-help counterfactual."""
        return self.t_ub_no_help_estimate - self.t_ub_total

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready form."""
        return {
            "t_ub_by_rank": dict(sorted(self.t_ub_by_rank.items())),
            "t_ub_total": self.t_ub_total,
            "t_by_window": {str(k): v for k, v in sorted(self.t_by_window.items())},
            "buddy_saved_by_rank": dict(sorted(self.buddy_saved_by_rank.items())),
            "buddy_saved_total": self.buddy_saved_total,
            "t_ub_no_help_estimate": self.t_ub_no_help_estimate,
            "t_ub_saving": self.t_ub_saving,
            "buddy_helps_sent": self.buddy_helps_sent,
            "buddy_answers_received": self.buddy_answers_received,
            "buddy_skips": self.buddy_skips,
            "slowest_lag_by_program": dict(sorted(self.slowest_lag_by_program.items())),
            "pending_resolution": dict(self.pending_resolution),
            "pending_resolution_source": self.pending_resolution_source,
        }

    def render(self) -> str:
        """Paper-notation text summary."""
        lines = [
            f"T_ub (Eq. 2)               = {self.t_ub_total:.6g} s",
            f"T_ub without buddy-help    = {self.t_ub_no_help_estimate:.6g} s (estimate)",
            f"buddy-help saving          = {self.t_ub_saving:.6g} s",
            f"buddy-help messages        = {self.buddy_helps_sent} sent, "
            f"{self.buddy_answers_received} received, {self.buddy_skips} skips enabled",
        ]
        for who, t in sorted(self.t_ub_by_rank.items()):
            if t or self.buddy_saved_by_rank.get(who):
                saved = self.buddy_saved_by_rank.get(who, 0.0)
                lines.append(f"  T_i[{who}] = {t:.6g} s (saved {saved:.6g} s)")
        for prog, lag in sorted(self.slowest_lag_by_program.items()):
            lines.append(f"slowest-process lag [{prog}] = {lag:.6g} s")
        if self.pending_resolution.get("count"):
            pr = self.pending_resolution
            lines.append(
                f"PENDING resolution         = {pr['mean']:.6g} s mean over "
                f"{int(pr['count'])} requests (max {pr['max']:.6g} s, "
                f"source: {self.pending_resolution_source})"
            )
        return "\n".join(lines)


def _pending_latency_from_trace(tracer: Tracer) -> OnlineStats:
    """PENDING open-time per request, from the recorded event stream.

    A request counts when at least one process replied ``PENDING`` to
    it; its latency runs from the first ``request_recv`` to the
    ``rep_finalize`` carrying the final answer.
    """
    first_recv: dict[tuple[str | None, float], float] = {}
    went_pending: set[tuple[str | None, float]] = set()
    out = OnlineStats()
    for e in tracer.events:
        req = e.detail.get("request")
        if req is None:
            continue
        cid = e.detail.get("cid")
        key = (cid, float(req))
        if e.kind == tracing.REQUEST_RECV:
            first_recv.setdefault(key, e.time)
        elif e.kind == tracing.REQUEST_REPLY:
            if str(e.detail.get("answer", "")).endswith("PENDING"):
                went_pending.add(key)
        elif e.kind == tracing.REP_FINALIZE:
            # rep_finalize events carry no cid; match any connection.
            for k in list(went_pending):
                if k[1] == float(req) and k in first_recv:
                    out.add(e.time - first_recv.pop(k))
                    went_pending.discard(k)
    return out


def _pending_latency_from_imports(sim: Any) -> OnlineStats:
    """Fallback: importer-side request→answer latency."""
    out = OnlineStats()
    for prog in getattr(sim, "_programs", {}).values():
        for ctx in getattr(prog, "contexts", []):
            for ist in getattr(ctx, "import_states", {}).values():
                for rec in ist.records:
                    if rec.answered_at is not None:
                        out.add(rec.answered_at - rec.issued_at)
    return out


def compute_paper_metrics(sim: Any, tracer: Tracer | None = None) -> PaperMetrics:
    """Roll the paper's quantities up from a finished simulation.

    *sim* is a :class:`~repro.core.coupler.CoupledSimulation` or
    :class:`~repro.core.live.LiveCoupledSimulation` after ``run()``;
    *tracer* defaults to the simulation's own tracer.  The Eq. 1–2 and
    buddy-saving numbers come from always-on protocol counters, so
    they are exact even for runs traced with a
    :class:`~repro.util.tracing.NullTracer`.
    """
    tracer = tracer if tracer is not None else getattr(sim, "tracer", Tracer())
    t_ub_by_rank: dict[str, float] = {}
    t_by_window: dict[int, float] = {}
    buddy_saved: dict[str, float] = {}
    buddy_answers = 0
    buddy_skips = 0
    helps_sent = 0
    lag: dict[str, float] = {}

    for prog in getattr(sim, "_programs", {}).values():
        rep = getattr(prog, "exp_rep", None)
        if rep is not None:
            helps_sent += int(getattr(rep, "buddy_messages_sent", 0))
        compute_times: list[float] = []
        for ctx in getattr(prog, "contexts", []):
            who = ctx.who
            stats = ctx.stats
            compute_times.append(float(getattr(stats, "compute_time", 0.0)))
            buddy_answers += int(getattr(stats, "buddy_answers_received", 0))
            skips = int(getattr(stats, "buddy_skips", 0))
            saved = float(getattr(stats, "buddy_saved_time", 0.0))
            buddy_skips += skips
            if skips or saved:
                buddy_saved[who] = buddy_saved.get(who, 0.0) + saved
            for st in getattr(ctx, "export_states", {}).values():
                if not st.is_connected:
                    continue
                bstats = st.buffer.stats()
                t_ub_by_rank[who] = t_ub_by_rank.get(who, 0.0) + bstats.t_ub
                for w, t in bstats.t_by_window.items():
                    t_by_window[w] = t_by_window.get(w, 0.0) + t
        if compute_times:
            lag[prog.name] = max(compute_times) - min(compute_times)

    t_ub_total = sum(t_ub_by_rank.values())
    saved_total = sum(buddy_saved.values())

    latency = _pending_latency_from_trace(tracer)
    source = "trace"
    if latency.count == 0:
        latency = _pending_latency_from_imports(sim)
        source = "import_records" if latency.count else "none"
    pending = (
        {
            "count": float(latency.count),
            "mean": latency.mean,
            "max": latency.maximum,
        }
        if latency.count
        else {}
    )

    return PaperMetrics(
        t_ub_by_rank=t_ub_by_rank,
        t_ub_total=t_ub_total,
        t_by_window=t_by_window,
        buddy_saved_by_rank=buddy_saved,
        buddy_saved_total=saved_total,
        t_ub_no_help_estimate=t_ub_total + saved_total,
        buddy_helps_sent=helps_sent,
        buddy_answers_received=buddy_answers,
        buddy_skips=buddy_skips,
        slowest_lag_by_program=lag,
        pending_resolution=pending,
        pending_resolution_source=source,
    )
