"""N-dimensional rectangular index regions.

A :class:`RectRegion` is a half-open box ``[lo, hi)`` in a global index
space.  Regions are the unit of description for everything the coupling
framework moves: a program registers exported/imported regions, and the
MxN schedule is computed by intersecting the exporter's and importer's
per-rank regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator, Sequence

from repro.util.validation import require, require_type


@dataclass(frozen=True)
class RectRegion:
    """A half-open axis-aligned box ``[lo, hi)``.

    Empty regions (any ``hi[d] <= lo[d]``) are valid and behave as the
    absorbing element of intersection.

    Examples
    --------
    >>> a = RectRegion((0, 0), (4, 4))
    >>> b = RectRegion((2, 1), (6, 3))
    >>> a.intersect(b)
    RectRegion(lo=(2, 1), hi=(4, 3))
    >>> a.intersect(b).size
    4
    """

    lo: tuple[int, ...]
    hi: tuple[int, ...]

    def __post_init__(self) -> None:
        require_type(self.lo, tuple, "lo")
        require_type(self.hi, tuple, "hi")
        require(len(self.lo) == len(self.hi), "lo and hi must have equal rank")
        require(len(self.lo) > 0, "regions must have at least one dimension")
        for v in (*self.lo, *self.hi):
            require(isinstance(v, (int,)), f"region bounds must be ints, got {v!r}")

    # -- construction ----------------------------------------------------
    @staticmethod
    def from_shape(shape: Sequence[int]) -> "RectRegion":
        """The region covering a whole array of *shape* (origin 0)."""
        return RectRegion(tuple(0 for _ in shape), tuple(int(s) for s in shape))

    @staticmethod
    def empty(ndim: int) -> "RectRegion":
        """A canonical empty region of the given rank."""
        return RectRegion(tuple(0 for _ in range(ndim)), tuple(0 for _ in range(ndim)))

    # -- basic geometry --------------------------------------------------
    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.lo)

    @property
    def shape(self) -> tuple[int, ...]:
        """Extent along each axis (all zeros if empty)."""
        return tuple(max(0, h - l) for l, h in zip(self.lo, self.hi))

    @property
    def size(self) -> int:
        """Number of index points contained."""
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def is_empty(self) -> bool:
        """True when the region contains no points."""
        return any(h <= l for l, h in zip(self.lo, self.hi))

    def contains_point(self, point: Sequence[int]) -> bool:
        """Whether the index *point* lies inside the region."""
        require(len(point) == self.ndim, "point rank mismatch")
        return all(l <= p < h for p, l, h in zip(point, self.lo, self.hi))

    def contains(self, other: "RectRegion") -> bool:
        """Whether *other* is entirely inside this region.

        The empty region is contained in everything.
        """
        if other.is_empty:
            return True
        if self.is_empty:
            return False
        return all(
            sl <= ol and oh <= sh
            for sl, sh, ol, oh in zip(self.lo, self.hi, other.lo, other.hi)
        )

    # -- algebra -----------------------------------------------------------
    def intersect(self, other: "RectRegion") -> "RectRegion":
        """The overlap of two regions (possibly empty)."""
        require(other.ndim == self.ndim, "rank mismatch in intersect")
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        if any(h <= l for l, h in zip(lo, hi)):
            return RectRegion.empty(self.ndim)
        return RectRegion(lo, hi)

    def overlaps(self, other: "RectRegion") -> bool:
        """Whether the two regions share at least one point."""
        return not self.intersect(other).is_empty

    def shift(self, offset: Sequence[int]) -> "RectRegion":
        """Translate the region by *offset*."""
        require(len(offset) == self.ndim, "offset rank mismatch")
        return RectRegion(
            tuple(l + o for l, o in zip(self.lo, offset)),
            tuple(h + o for h, o in zip(self.hi, offset)),
        )

    def expand(self, margin: int) -> "RectRegion":
        """Grow every face outward by *margin* (used for halo regions)."""
        require(margin >= 0, "margin must be >= 0")
        return RectRegion(
            tuple(l - margin for l in self.lo),
            tuple(h + margin for h in self.hi),
        )

    def clip(self, bounds: "RectRegion") -> "RectRegion":
        """Intersect with *bounds* (alias with intent: stay in the array)."""
        return self.intersect(bounds)

    def split(self, axis: int, at: int) -> tuple["RectRegion", "RectRegion"]:
        """Cut into two along *axis* at global coordinate *at*.

        Both halves may be empty if *at* falls outside the region.
        """
        require(0 <= axis < self.ndim, "axis out of range")
        at = max(self.lo[axis], min(at, self.hi[axis]))
        left_hi = list(self.hi)
        left_hi[axis] = at
        right_lo = list(self.lo)
        right_lo[axis] = at
        return (
            RectRegion(self.lo, tuple(left_hi)),
            RectRegion(tuple(right_lo), self.hi),
        )

    def subtract(self, other: "RectRegion") -> list["RectRegion"]:
        """Region difference ``self \\ other`` as disjoint boxes.

        Standard axis-sweep decomposition: at most ``2 * ndim`` pieces.
        """
        inter = self.intersect(other)
        if inter.is_empty:
            return [] if self.is_empty else [self]
        pieces: list[RectRegion] = []
        remaining = self
        for axis in range(self.ndim):
            below, rest = remaining.split(axis, inter.lo[axis])
            if not below.is_empty:
                pieces.append(below)
            middle, above = rest.split(axis, inter.hi[axis])
            if not above.is_empty:
                pieces.append(above)
            remaining = middle
        return pieces

    # -- numpy interop ------------------------------------------------------
    def to_slices(self, origin: Sequence[int] | None = None) -> tuple[slice, ...]:
        """Slices selecting this region out of an array starting at *origin*.

        With ``origin=None`` the array is assumed to start at the global
        origin (all zeros).  Typical use: ``local[region.to_slices(block.lo)]``
        where ``block`` is the rank's owned region.
        """
        if origin is None:
            origin = tuple(0 for _ in range(self.ndim))
        require(len(origin) == self.ndim, "origin rank mismatch")
        return tuple(
            slice(l - o, h - o) for l, h, o in zip(self.lo, self.hi, origin)
        )

    def iter_points(self) -> Iterator[tuple[int, ...]]:
        """Iterate all contained index points (small regions/tests only)."""
        if self.is_empty:
            return iter(())
        return product(*(range(l, h) for l, h in zip(self.lo, self.hi)))

    def __str__(self) -> str:
        spans = ", ".join(f"{l}:{h}" for l, h in zip(self.lo, self.hi))
        return f"[{spans}]"
