"""MxN communication schedules.

Given an exporter-side decomposition over M ranks and an importer-side
decomposition over N ranks, the schedule lists, for every (source rank,
destination rank) pair, the rectangular pieces that must travel between
them so that a *transfer region* of the global index space arrives at
the importer with its own distribution.  This is the pairwise-
intersection algorithm of Meta-Chaos/InterComm (the paper's substrate):
``piece = src_block ∩ dst_block ∩ transfer_region``.

Schedules depend only on the two decompositions, so the framework
computes them once per connection at initialization and reuses them for
every matched transfer — the paper's framework does the same, which is
why only the *buffering* (memcpy) cost appears in its export-time
measurements.  On top of that, two levels of caching keep the data
plane off the Python slow path:

* :meth:`CommSchedule.build_cached` memoizes whole schedules by
  ``(src decomposition, dst decomposition, transfer region)`` — both
  decomposition flavours are frozen dataclasses, so the key is exact;
* :meth:`CommSchedule.execution_plan` memoizes, per (source origins,
  destination origins) pair, the precomputed numpy basic-slice tuples
  of every piece, so executors move blocks with direct ``dst[sl] =
  src[sl]`` assignments instead of re-deriving index arithmetic (and
  re-validating containment) on every transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.data.decomposition import BlockCyclicDecomposition, BlockDecomposition
from repro.data.region import RectRegion
from repro.util.validation import require

AnyDecomposition = BlockDecomposition | BlockCyclicDecomposition

#: Memoized schedules keyed by (src decomp, dst decomp, transfer region).
_SCHEDULE_CACHE: dict[
    tuple[AnyDecomposition, AnyDecomposition, RectRegion | None], "CommSchedule"
] = {}


def _rank_regions(decomp: AnyDecomposition, rank: int) -> list[RectRegion]:
    """Owned boxes of *rank* under either decomposition flavour."""
    if isinstance(decomp, BlockDecomposition):
        return [decomp.local_region(rank)]
    return decomp.local_regions(rank)


def _nprocs(decomp: AnyDecomposition) -> int:
    return decomp.nprocs


@dataclass(frozen=True)
class TransferItem:
    """One contiguous piece of an MxN transfer.

    Attributes
    ----------
    src_rank, dst_rank:
        Exporter-side and importer-side ranks.
    region:
        The global sub-box that travels between them.
    """

    src_rank: int
    dst_rank: int
    region: RectRegion

    @property
    def size(self) -> int:
        """Number of elements in this piece."""
        return self.region.size


@dataclass(frozen=True)
class PlannedTransfer:
    """One schedule item with its slice tuples precomputed.

    ``src_slices`` selects the piece out of the source rank's local
    block; ``dst_slices`` selects its destination inside the receiving
    rank's local block.  Executors apply ``dst[dst_slices] =
    src[src_slices]`` — a single vectorized numpy block move with no
    per-transfer index arithmetic.
    """

    src_rank: int
    dst_rank: int
    region: RectRegion
    src_slices: tuple[slice, ...]
    dst_slices: tuple[slice, ...]
    size: int


@dataclass(frozen=True)
class CommSchedule:
    """The full set of :class:`TransferItem` pieces for one connection.

    Build with :meth:`build`; then each side asks for its own share
    (:meth:`sends_for` / :meth:`recvs_for`) — the object is symmetric
    and can be computed independently by both programs, which is how
    the paper's framework avoids any central coordinator for data
    movement.
    """

    transfer_region: RectRegion
    items: tuple[TransferItem, ...]
    src_nprocs: int
    dst_nprocs: int
    _by_src: dict[int, tuple[TransferItem, ...]] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )
    _by_dst: dict[int, tuple[TransferItem, ...]] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )
    #: Memoized execution plans keyed by (src origins, dst origins).
    _plans: dict[tuple, tuple["PlannedTransfer", ...]] = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        by_src: dict[int, list[TransferItem]] = {}
        by_dst: dict[int, list[TransferItem]] = {}
        for item in self.items:
            by_src.setdefault(item.src_rank, []).append(item)
            by_dst.setdefault(item.dst_rank, []).append(item)
        object.__setattr__(
            self, "_by_src", {r: tuple(v) for r, v in by_src.items()}
        )
        object.__setattr__(
            self, "_by_dst", {r: tuple(v) for r, v in by_dst.items()}
        )

    @staticmethod
    def build(
        src: AnyDecomposition,
        dst: AnyDecomposition,
        transfer_region: RectRegion | None = None,
    ) -> "CommSchedule":
        """Compute the schedule by pairwise region intersection.

        ``transfer_region=None`` transfers the whole global space, which
        must then be identical on both sides.
        """
        if transfer_region is None:
            transfer_region = src.bounding_region()
        require(
            transfer_region.ndim == src.bounding_region().ndim == dst.bounding_region().ndim,
            "dimensionality mismatch between decompositions and region",
        )
        items: list[TransferItem] = []
        # Precompute importer boxes once; exporter loop intersects into them.
        dst_boxes = [
            (d, [b.intersect(transfer_region) for b in _rank_regions(dst, d)])
            for d in range(_nprocs(dst))
        ]
        for s in range(_nprocs(src)):
            for s_box in _rank_regions(src, s):
                s_eff = s_box.intersect(transfer_region)
                if s_eff.is_empty:
                    continue
                for d, boxes in dst_boxes:
                    for d_box in boxes:
                        piece = s_eff.intersect(d_box)
                        if not piece.is_empty:
                            items.append(
                                TransferItem(src_rank=s, dst_rank=d, region=piece)
                            )
        return CommSchedule(
            transfer_region=transfer_region,
            items=tuple(items),
            src_nprocs=_nprocs(src),
            dst_nprocs=_nprocs(dst),
        )

    @staticmethod
    def build_cached(
        src: AnyDecomposition,
        dst: AnyDecomposition,
        transfer_region: RectRegion | None = None,
    ) -> "CommSchedule":
        """Memoized :meth:`build`.

        Schedules are pure functions of ``(src, dst, transfer_region)``
        and both decomposition flavours are frozen (hashable), so
        identical connections — common when many runs or connections
        couple the same grids — share one schedule object and its
        cached per-rank views and execution plans.
        """
        key = (src, dst, transfer_region)
        cached = _SCHEDULE_CACHE.get(key)
        if cached is None:
            cached = CommSchedule.build(src, dst, transfer_region)
            _SCHEDULE_CACHE[key] = cached
        return cached

    # -- execution plans -----------------------------------------------------
    def execution_plan(
        self,
        src_origins: Sequence[Sequence[int]],
        dst_origins: Sequence[Sequence[int]],
    ) -> tuple[PlannedTransfer, ...]:
        """All items with slices resolved against per-rank block origins.

        *src_origins* / *dst_origins* give each rank's local-block
        ``lo`` corner (e.g. ``decomp.local_region(r).lo``).  The result
        is memoized on the schedule: repeated transfers of the same
        connection pay zero slice arithmetic.
        """
        key = (
            tuple(tuple(o) for o in src_origins),
            tuple(tuple(o) for o in dst_origins),
        )
        plan = self._plans.get(key)
        if plan is None:
            plan = tuple(
                PlannedTransfer(
                    src_rank=item.src_rank,
                    dst_rank=item.dst_rank,
                    region=item.region,
                    src_slices=item.region.to_slices(origin=key[0][item.src_rank]),
                    dst_slices=item.region.to_slices(origin=key[1][item.dst_rank]),
                    size=item.region.size,
                )
                for item in self.items
            )
            self._plans[key] = plan
        return plan

    # -- per-rank views ------------------------------------------------------
    def sends_for(self, src_rank: int) -> tuple[TransferItem, ...]:
        """Pieces that exporter rank *src_rank* must send."""
        return self._by_src.get(src_rank, ())

    def recvs_for(self, dst_rank: int) -> tuple[TransferItem, ...]:
        """Pieces that importer rank *dst_rank* will receive."""
        return self._by_dst.get(dst_rank, ())

    # -- aggregate properties ------------------------------------------------
    @property
    def total_elements(self) -> int:
        """Sum of piece sizes (== transfer-region size when complete)."""
        return sum(item.size for item in self.items)

    def message_count(self) -> int:
        """Number of point-to-point messages the schedule induces."""
        return len(self.items)

    def is_complete(self) -> bool:
        """Whether the pieces exactly tile the transfer region.

        True when (a) total element count matches and (b) pieces are
        pairwise disjoint — together these imply an exact tiling.
        """
        if self.total_elements != self.transfer_region.size:
            return False
        items = list(self.items)
        for i in range(len(items)):
            for j in range(i + 1, len(items)):
                if items[i].region.overlaps(items[j].region):
                    return False
        return True

    def bytes_by_pair(self, itemsize: int) -> dict[tuple[int, int], int]:
        """Traffic matrix: bytes moved per (src, dst) pair."""
        out: dict[tuple[int, int], int] = {}
        for item in self.items:
            key = (item.src_rank, item.dst_rank)
            out[key] = out.get(key, 0) + item.size * itemsize
        return out
