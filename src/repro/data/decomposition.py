"""Partitioning a global index space over the processes of a program.

The paper's micro-benchmark distributes a 1024x1024 array "evenly among
the participating processes"; :class:`BlockDecomposition` implements
that (block partition over an n-dimensional process grid, remainder
spread over the leading ranks), and :class:`BlockCyclicDecomposition`
provides the cyclic variant common in data-parallel libraries so that
MxN schedules between *different* distribution styles are exercised.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.data.region import RectRegion
from repro.util.validation import require, require_positive


def choose_process_grid(nprocs: int, ndim: int) -> tuple[int, ...]:
    """A near-square *ndim*-dimensional grid with ``prod == nprocs``.

    Greedy largest-factor assignment, e.g. ``(4, 2)`` for 8 ranks in
    2-D, matching the usual MPI ``Dims_create`` behaviour closely
    enough for the benchmarks.
    """
    require_positive(nprocs, "nprocs")
    require_positive(ndim, "ndim")
    dims = [1] * ndim
    remaining = nprocs
    # Repeatedly strip the largest prime factor and give it to the
    # currently smallest grid dimension.
    factors: list[int] = []
    n = remaining
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    for factor in sorted(factors, reverse=True):
        smallest = min(range(ndim), key=lambda i: dims[i])
        dims[smallest] *= factor
    return tuple(sorted(dims, reverse=True))


def _block_spans(extent: int, nblocks: int) -> list[tuple[int, int]]:
    """Split ``range(extent)`` into *nblocks* nearly equal spans.

    The first ``extent % nblocks`` blocks get one extra element, the
    standard MPI-style block distribution.  Blocks may be empty when
    ``nblocks > extent``.
    """
    base, extra = divmod(extent, nblocks)
    spans = []
    start = 0
    for b in range(nblocks):
        size = base + (1 if b < extra else 0)
        spans.append((start, start + size))
        start += size
    return spans


@dataclass(frozen=True)
class BlockDecomposition:
    """Block partition of *global_shape* over a process grid.

    Parameters
    ----------
    global_shape:
        Extent of the global index space.
    grid:
        Process-grid shape; ``prod(grid)`` is the process count.  Rank
        *r* maps to grid coordinates in row-major order.

    Examples
    --------
    >>> d = BlockDecomposition((8, 8), (2, 2))
    >>> d.local_region(0)
    RectRegion(lo=(0, 0), hi=(4, 4))
    >>> d.owner_of((5, 2))
    2
    """

    global_shape: tuple[int, ...]
    grid: tuple[int, ...]
    _spans: tuple[tuple[tuple[int, int], ...], ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        require(len(self.global_shape) == len(self.grid), "shape/grid rank mismatch")
        for s in self.global_shape:
            require(s >= 0, "global_shape entries must be >= 0")
        for g in self.grid:
            require_positive(g, "grid entries")
        spans = tuple(
            tuple(_block_spans(extent, nblocks))
            for extent, nblocks in zip(self.global_shape, self.grid)
        )
        object.__setattr__(self, "_spans", spans)

    # -- ranks and coordinates -------------------------------------------
    @property
    def nprocs(self) -> int:
        """Total number of ranks in the decomposition."""
        n = 1
        for g in self.grid:
            n *= g
        return n

    @property
    def ndim(self) -> int:
        """Number of index-space dimensions."""
        return len(self.global_shape)

    def rank_to_coords(self, rank: int) -> tuple[int, ...]:
        """Row-major grid coordinates of *rank*."""
        require(0 <= rank < self.nprocs, f"rank {rank} out of range")
        coords = []
        for g in reversed(self.grid):
            coords.append(rank % g)
            rank //= g
        return tuple(reversed(coords))

    def coords_to_rank(self, coords: Sequence[int]) -> int:
        """Inverse of :meth:`rank_to_coords`."""
        require(len(coords) == len(self.grid), "coords rank mismatch")
        rank = 0
        for c, g in zip(coords, self.grid):
            require(0 <= c < g, f"grid coordinate {c} out of range")
            rank = rank * g + c
        return rank

    # -- regions -----------------------------------------------------------
    def local_region(self, rank: int) -> RectRegion:
        """The global sub-box owned by *rank* (possibly empty)."""
        coords = self.rank_to_coords(rank)
        lo = []
        hi = []
        for d, c in enumerate(coords):
            start, stop = self._spans[d][c]
            lo.append(start)
            hi.append(stop)
        return RectRegion(tuple(lo), tuple(hi))

    def all_regions(self) -> list[RectRegion]:
        """Owned regions of every rank, by rank order."""
        return [self.local_region(r) for r in range(self.nprocs)]

    def owner_of(self, point: Sequence[int]) -> int:
        """The rank owning global index *point*."""
        require(len(point) == self.ndim, "point rank mismatch")
        coords = []
        for d, p in enumerate(point):
            require(
                0 <= p < self.global_shape[d],
                f"point {tuple(point)} outside global shape {self.global_shape}",
            )
            # Binary search would be O(log g); grids are tiny so scan.
            for c, (start, stop) in enumerate(self._spans[d]):
                if start <= p < stop:
                    coords.append(c)
                    break
        return self.coords_to_rank(coords)

    def bounding_region(self) -> RectRegion:
        """The full global region."""
        return RectRegion.from_shape(self.global_shape)

    def ranks_overlapping(self, region: RectRegion) -> list[int]:
        """Ranks whose owned block intersects *region*."""
        return [
            r for r in range(self.nprocs) if self.local_region(r).overlaps(region)
        ]


@dataclass(frozen=True)
class BlockCyclicDecomposition:
    """1-D block-cyclic partition along one axis of *global_shape*.

    Blocks of ``block_size`` along *axis* are dealt to ranks round-robin.
    A rank therefore owns a *set* of disjoint boxes, returned by
    :meth:`local_regions`.  (Block-cyclic owners are not contiguous, so
    there is no single ``local_region``.)
    """

    global_shape: tuple[int, ...]
    nprocs: int
    block_size: int
    axis: int = 0

    def __post_init__(self) -> None:
        require_positive(self.nprocs, "nprocs")
        require_positive(self.block_size, "block_size")
        require(0 <= self.axis < len(self.global_shape), "axis out of range")

    @property
    def ndim(self) -> int:
        """Number of index-space dimensions."""
        return len(self.global_shape)

    def local_regions(self, rank: int) -> list[RectRegion]:
        """The disjoint boxes owned by *rank*, in ascending order."""
        require(0 <= rank < self.nprocs, f"rank {rank} out of range")
        extent = self.global_shape[self.axis]
        out = []
        start = rank * self.block_size
        stride = self.nprocs * self.block_size
        while start < extent:
            stop = min(start + self.block_size, extent)
            lo = [0] * self.ndim
            hi = list(self.global_shape)
            lo[self.axis] = start
            hi[self.axis] = stop
            out.append(RectRegion(tuple(lo), tuple(hi)))
            start += stride
        return out

    def all_regions(self) -> list[list[RectRegion]]:
        """Owned boxes of every rank, by rank order."""
        return [self.local_regions(r) for r in range(self.nprocs)]

    def owner_of(self, point: Sequence[int]) -> int:
        """The rank owning global index *point*."""
        require(len(point) == self.ndim, "point rank mismatch")
        p = point[self.axis]
        require(
            0 <= p < self.global_shape[self.axis],
            f"point {tuple(point)} outside global shape {self.global_shape}",
        )
        return (p // self.block_size) % self.nprocs

    def bounding_region(self) -> RectRegion:
        """The full global region."""
        return RectRegion.from_shape(self.global_shape)
