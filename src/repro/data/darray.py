"""Distributed arrays: a decomposition plus per-rank local blocks.

In an SPMD program each rank holds one :class:`DistributedArray` whose
``local`` block is the rank's share of the global array.  The class
does no communication itself; halo exchange and redistribution are
built on top (``repro.apps.halo`` and ``repro.data.redistribute``).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.data.decomposition import BlockDecomposition
from repro.data.region import RectRegion
from repro.util.validation import require, require_type


class DistributedArray:
    """One rank's view of a block-distributed global array.

    Parameters
    ----------
    decomp:
        The global block decomposition.
    rank:
        This process's rank in the decomposition.
    dtype:
        Element dtype of the array.
    fill:
        Initial value of the local block.
    halo:
        Ghost-cell width around the local block (0 disables).  With a
        halo, :attr:`local` is the *interior* view; :attr:`padded`
        exposes the full allocation including ghost cells.
    """

    def __init__(
        self,
        decomp: BlockDecomposition,
        rank: int,
        dtype: Any = np.float64,
        fill: float = 0.0,
        halo: int = 0,
    ) -> None:
        require_type(decomp, BlockDecomposition, "decomp")
        require(0 <= rank < decomp.nprocs, f"rank {rank} out of range")
        require(halo >= 0, "halo must be >= 0")
        self.decomp = decomp
        self.rank = rank
        self.halo = halo
        self.region = decomp.local_region(rank)
        shape = tuple(s + 2 * halo for s in self.region.shape)
        self._storage = np.full(shape, fill, dtype=dtype)

    # -- views -------------------------------------------------------------
    @property
    def padded(self) -> np.ndarray:
        """The full local allocation including ghost cells."""
        return self._storage

    @property
    def local(self) -> np.ndarray:
        """The interior (owned) block, excluding ghost cells.

        This is a *view*: writing to it updates the storage in place
        (views-not-copies, per the performance guides).
        """
        if self.halo == 0:
            return self._storage
        sel = tuple(slice(self.halo, -self.halo) for _ in self.region.shape)
        return self._storage[sel]

    @property
    def dtype(self) -> np.dtype:
        """Element dtype."""
        return self._storage.dtype

    @property
    def nbytes(self) -> int:
        """Bytes held by the interior block."""
        return int(self.local.nbytes)

    # -- global addressing ---------------------------------------------------
    def view_global(self, region: RectRegion) -> np.ndarray:
        """View of the part of *region* owned by this rank.

        *region* must be fully contained in this rank's block; use
        ``region.intersect(self.region)`` first when unsure.
        """
        require(
            self.region.contains(region),
            f"rank {self.rank} owns {self.region}, not {region}",
        )
        if region.is_empty:
            return self.local[tuple(slice(0, 0) for _ in range(region.ndim))]
        return self.local[region.to_slices(origin=self.region.lo)]

    def read_global(self, region: RectRegion) -> np.ndarray:
        """Copy of the owned part of *region* (contiguous)."""
        return np.ascontiguousarray(self.view_global(region))

    def write_global(self, region: RectRegion, values: np.ndarray) -> None:
        """Write *values* into the owned *region* (shapes must agree)."""
        target = self.view_global(region)
        values = np.asarray(values, dtype=self.dtype)
        require(
            target.shape == values.shape,
            f"shape mismatch writing {region}: {values.shape} != {target.shape}",
        )
        target[...] = values

    def fill_from(self, fn: Any) -> None:
        """Fill the local block from ``fn(*global_index_grids)``.

        *fn* receives one ``ndarray`` of global coordinates per axis
        (meshgrid style, vectorized) and returns the block's values —
        the idiomatic NumPy way to initialize a distributed field.
        """
        if self.region.is_empty:
            return
        axes = [
            np.arange(l, h, dtype=np.float64)
            for l, h in zip(self.region.lo, self.region.hi)
        ]
        grids = np.meshgrid(*axes, indexing="ij")
        self.local[...] = fn(*grids)

    # -- test/debug helpers ----------------------------------------------------
    @staticmethod
    def assemble(blocks: Sequence["DistributedArray"]) -> np.ndarray:
        """Glue per-rank blocks into the full global array (test helper).

        All blocks must come from the same decomposition, one per rank.
        """
        require(len(blocks) > 0, "need at least one block")
        decomp = blocks[0].decomp
        require(
            all(b.decomp == decomp for b in blocks),
            "blocks come from different decompositions",
        )
        require(
            sorted(b.rank for b in blocks) == list(range(decomp.nprocs)),
            "need exactly one block per rank",
        )
        out = np.zeros(decomp.global_shape, dtype=blocks[0].dtype)
        for b in blocks:
            if not b.region.is_empty:
                out[b.region.to_slices()] = b.local
        return out
