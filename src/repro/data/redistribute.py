"""Executing MxN communication schedules.

Three execution styles:

* :func:`redistribute_pure` — in-memory, no runtime: used by tests and
  by the coupling framework when exporter buffers are already resident
  at the destination process of the simulation host.
* :func:`redistribute_threaded` — over ``vmpi`` thread communicators
  (an intercommunicator is emulated with a flat address list).
* DES execution lives in the coupling core, where transfer cost is
  charged to the virtual clock together with buffering cost.

The block extract/insert helpers are shared by all three.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.darray import DistributedArray
from repro.data.region import RectRegion
from repro.data.schedule import CommSchedule
from repro.util.validation import require


def extract_block(array: DistributedArray, region: RectRegion) -> np.ndarray:
    """Contiguous copy of *region* out of a rank's distributed block.

    The copy is deliberate: it models the pack/memcpy the paper charges
    for, and decouples the wire payload from the live array.
    """
    return array.read_global(region)


def insert_block(
    array: DistributedArray, region: RectRegion, values: np.ndarray
) -> None:
    """Write a received piece into a rank's distributed block."""
    array.write_global(region, values)


def redistribute_pure(
    schedule: CommSchedule,
    src_blocks: Sequence[DistributedArray],
    dst_blocks: Sequence[DistributedArray],
) -> int:
    """Execute *schedule* directly between in-memory blocks.

    Returns the number of elements moved.  Reference semantics: every
    backend-specific executor must produce the same destination
    contents (asserted by the integration tests).

    The hot path is zero-copy: slice tuples come precomputed from the
    schedule's memoized :meth:`~repro.data.schedule.CommSchedule.execution_plan`
    and each piece moves as one direct ``dst[sl] = src[sl]`` block
    assignment — no intermediate contiguous copy, no per-piece
    containment re-validation.  When a source and destination block may
    alias (redistributing an array onto itself), the affected piece
    falls back to the copy-then-insert reference path.
    """
    require(len(src_blocks) == schedule.src_nprocs, "wrong number of source blocks")
    require(len(dst_blocks) == schedule.dst_nprocs, "wrong number of destination blocks")
    plan = schedule.execution_plan(
        [b.region.lo for b in src_blocks],
        [b.region.lo for b in dst_blocks],
    )
    src_locals = [b.local for b in src_blocks]
    dst_locals = [b.local for b in dst_blocks]
    moved = 0
    for t in plan:
        src = src_locals[t.src_rank]
        dst = dst_locals[t.dst_rank]
        if np.may_share_memory(src, dst):
            dst[t.dst_slices] = np.ascontiguousarray(src[t.src_slices])
        else:
            dst[t.dst_slices] = src[t.src_slices]
        moved += t.size
    return moved


def pack_sends(
    schedule: CommSchedule,
    src_rank: int,
    array: DistributedArray,
) -> list[tuple[int, RectRegion, np.ndarray]]:
    """Pack every outgoing piece of *src_rank* as ``(dst, region, data)``."""
    return [
        (item.dst_rank, item.region, extract_block(array, item.region))
        for item in schedule.sends_for(src_rank)
    ]


def unpack_recvs(
    schedule: CommSchedule,
    dst_rank: int,
    array: DistributedArray,
    pieces: Sequence[tuple[RectRegion, np.ndarray]],
) -> int:
    """Insert received ``(region, data)`` pieces into *dst_rank*'s block.

    Returns elements written.  Validates that exactly the scheduled
    pieces arrived — a schedule/transport mismatch is a protocol bug
    and must not pass silently.
    """
    expected = {item.region for item in schedule.recvs_for(dst_rank)}
    got = {region for region, _ in pieces}
    require(
        got == expected,
        f"rank {dst_rank} received pieces {sorted(map(str, got))}, "
        f"expected {sorted(map(str, expected))}",
    )
    written = 0
    for region, data in pieces:
        insert_block(array, region, data)
        written += region.size
    return written


def redistribute_threaded(
    schedule: CommSchedule,
    comm: "object",
    role: str,
    array: DistributedArray,
    peer_base_tag: int = 7000,
) -> int:
    """Execute *schedule* over a :class:`~repro.vmpi.ThreadCommunicator`.

    The two programs must share one communicator whose ranks are laid
    out as ``[src_0..src_{M-1}, dst_0..dst_{N-1}]`` (a merged
    intercommunicator).  *role* is ``"src"`` or ``"dst"``; *array* is
    this rank's block on its own side.

    Returns elements sent (src role) or received (dst role).
    """
    require(role in ("src", "dst"), "role must be 'src' or 'dst'")
    if role == "src":
        src_rank = comm.rank  # type: ignore[attr-defined]
        moved = 0
        for dst, region, data in pack_sends(schedule, src_rank, array):
            comm.send((region, data), dest=schedule.src_nprocs + dst, tag=peer_base_tag)  # type: ignore[attr-defined]
            moved += region.size
        return moved
    dst_rank = comm.rank - schedule.src_nprocs  # type: ignore[attr-defined]
    expected = schedule.recvs_for(dst_rank)
    pieces = []
    for _ in expected:
        msg = comm.recv(tag=peer_base_tag)  # type: ignore[attr-defined]
        pieces.append(msg.payload)
    return unpack_recvs(schedule, dst_rank, array, pieces)
