"""Distributed data descriptors and MxN redistribution.

This package is the reproduction's stand-in for the InterComm /
Meta-Chaos data-movement substrate the paper builds on: it describes
how a global index space is partitioned across the processes of a
parallel program and computes the *communication schedule* — which
(source rank, destination rank) pairs exchange which rectangular
pieces — for transferring a region between two differently-decomposed
programs (the "MxN problem" of the CCA working group cited by the
paper).

Layers:

* :mod:`repro.data.region` -- n-dimensional rectangular index regions
  with intersection/containment algebra.
* :mod:`repro.data.decomposition` -- block and block-cyclic partitions
  of a global shape over a process grid.
* :mod:`repro.data.darray` -- a distributed array: a decomposition plus
  per-rank local NumPy blocks.
* :mod:`repro.data.schedule` -- MxN communication schedules from
  pairwise region intersection.
* :mod:`repro.data.redistribute` -- executing a schedule (pure
  in-memory form plus a form running over ``vmpi`` communicators).
"""

from repro.data.region import RectRegion
from repro.data.decomposition import (
    BlockDecomposition,
    BlockCyclicDecomposition,
    choose_process_grid,
)
from repro.data.darray import DistributedArray
from repro.data.schedule import CommSchedule, TransferItem
from repro.data.redistribute import (
    extract_block,
    insert_block,
    redistribute_pure,
)

__all__ = [
    "RectRegion",
    "BlockDecomposition",
    "BlockCyclicDecomposition",
    "choose_process_grid",
    "DistributedArray",
    "CommSchedule",
    "TransferItem",
    "extract_block",
    "insert_block",
    "redistribute_pure",
]
