"""Shared findings model for the three verification passes.

Every check — static coupling-graph analysis, AST lint, and the online
sanitizer — reports through the same vocabulary: a :class:`Finding`
carries a severity, a stable rule code, a *locus* (file/line for static
passes, program/rank for the online pass), a human explanation, and a
citation of the paper section whose rule it enforces.  A
:class:`Report` collects findings and renders them as text or JSON so
both humans and CI tooling consume one format.

Rule-code namespaces:

* ``G1xx`` — coupling-graph checks (:mod:`repro.analysis.graph`);
* ``P1xx`` — Property-1 AST lint (:mod:`repro.analysis.astlint`);
* ``S3xx`` — online protocol sanitizer (:mod:`repro.analysis.sanitizer`).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

#: JSON schema version stamped into rendered reports.
SCHEMA_VERSION = 1

#: Short form of the source used in citations.
PAPER = "Wu & Sussman, IPDPS 2007"


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings describe configurations or programs the protocol
    cannot execute correctly; ``WARNING`` findings are legal but almost
    certainly unintended (e.g. a tolerance that can never produce a
    MATCH); ``INFO`` findings are observations (e.g. a connection whose
    buddy-help can never fire — correct, just pointless).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Ordering key: higher is worse."""
        return {"error": 2, "warning": 1, "info": 0}[self.value]

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One verified observation of one pass.

    Attributes
    ----------
    rule:
        Stable rule code (``G101``, ``P102``, ``S301``, ...).
    severity:
        See :class:`Severity`.
    message:
        Human explanation, grounded in the protocol.
    paper:
        The paper section whose rule this finding enforces, e.g.
        ``"§4 (Property 1)"``.
    file, line:
        Source locus for the static passes (``None`` for online
        findings).
    program, rank:
        Runtime locus for the sanitizer (``None`` for static findings).
    connection:
        The connection id involved, when one is.
    """

    rule: str
    severity: Severity
    message: str
    paper: str
    file: str | None = None
    line: int | None = None
    program: str | None = None
    rank: int | None = None
    connection: str | None = None

    def locus(self) -> str:
        """Human-readable position: file:line or program/rank."""
        parts: list[str] = []
        if self.file is not None:
            parts.append(self.file if self.line is None else f"{self.file}:{self.line}")
        if self.program is not None:
            who = self.program if self.rank is None else f"{self.program}.p{self.rank}"
            parts.append(who)
        if self.connection is not None:
            parts.append(f"[{self.connection}]")
        return " ".join(parts) if parts else "<global>"

    def render(self) -> str:
        """One text line: ``locus: severity RULE message (citation)``."""
        return (
            f"{self.locus()}: {self.severity} {self.rule} {self.message} "
            f"[{PAPER} {self.paper}]"
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form of this finding."""
        return {
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "paper": self.paper,
            "citation": f"{PAPER} {self.paper}",
            "file": self.file,
            "line": self.line,
            "program": self.program,
            "rank": self.rank,
            "connection": self.connection,
        }


@dataclass
class Report:
    """An ordered collection of findings from one or more passes."""

    findings: list[Finding] = field(default_factory=list)
    #: Number of files/configs examined (for the "clean" summary line).
    examined: int = 0

    def add(self, finding: Finding) -> Finding:
        """Append one finding and return it."""
        self.findings.append(finding)
        return finding

    def extend(self, other: Report | Iterable[Finding]) -> None:
        """Merge another report (or bare findings) into this one."""
        if isinstance(other, Report):
            self.findings.extend(other.findings)
            self.examined += other.examined
        else:
            self.findings.extend(other)

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def by_rule(self, rule: str) -> list[Finding]:
        """Findings with the given rule code."""
        return [f for f in self.findings if f.rule == rule]

    def worst(self) -> Severity | None:
        """The highest severity present (``None`` when clean)."""
        if not self.findings:
            return None
        return max((f.severity for f in self.findings), key=lambda s: s.rank)

    def has_errors(self) -> bool:
        """Whether any finding is an :data:`Severity.ERROR`."""
        return any(f.severity is Severity.ERROR for f in self.findings)

    def counts(self) -> dict[str, int]:
        """Findings per severity name."""
        out = {str(s): 0 for s in Severity}
        for f in self.findings:
            out[str(f.severity)] += 1
        return out

    # -- renderers ---------------------------------------------------------
    def render_text(self) -> str:
        """Multi-line text report, worst findings first."""
        if not self.findings:
            return f"OK: no findings ({self.examined} target(s) examined)"
        ordered = sorted(
            self.findings, key=lambda f: (-f.severity.rank, f.rule, f.locus())
        )
        lines = [f.render() for f in ordered]
        c = self.counts()
        lines.append(
            f"{len(self.findings)} finding(s): "
            f"{c['error']} error(s), {c['warning']} warning(s), {c['info']} info"
        )
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """Plain-JSON form of the whole report."""
        return {
            "schema": SCHEMA_VERSION,
            "examined": self.examined,
            "summary": self.counts(),
            "findings": [f.to_dict() for f in self.findings],
        }

    def render_json(self, indent: int | None = 1) -> str:
        """The JSON report as a string."""
        return json.dumps(self.to_dict(), indent=indent)
