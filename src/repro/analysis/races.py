"""Vector-clock happens-before race detection for the live runtime.

The threaded live runtime (:mod:`repro.core.live`) shares three kinds
of protocol state between its application, agent and rep threads: the
buffer ledger, the rep's answer cache, and the per-region match
engine.  When a :class:`RaceMonitor` is attached
(``RunOptions(race_monitor=...)``), the runtime reports every touch of
those sites together with its synchronization events — lock
acquire/release and wire-message send/receive (keyed by the same
sequence numbers that stamp the PR-5 trace-annotated messages) — and
the monitor maintains one vector clock per thread:

* ``acquire(k)`` joins the acquiring thread's clock with the clock
  stored at lock *k*'s last release;
* ``release(k)`` stores a snapshot of the releasing thread's clock and
  ticks it;
* ``send(m)`` / ``recv(m)`` transfer a snapshot through message *m*,
  ordering cross-thread hand-offs that never share a lock.

Two accesses to the same site *race* when neither clock snapshot
happens-before the other and at least one access is a write.  Races
are reported once per (rule, site) as ERROR findings in the shared
:mod:`repro.analysis.report` model, R-coded by the kind of state:

=========  =========================================================
``R201``   unsynchronized access to a buffer ledger
``R202``   unsynchronized access to a rep answer cache
``R203``   unsynchronized access to a match engine
=========  =========================================================

The detector is sound for the monitored sites (no false negatives on
observed schedules) and precise (lock and message edges mean properly
synchronized runs — the stock runtime — produce zero findings).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.analysis.report import Finding, Report, Severity

__all__ = [
    "RACE_RULE_PAPER",
    "RaceMonitor",
    "RaceRecord",
    "ledger_site",
    "match_site",
    "rep_cache_site",
]

#: Paper citation per R-rule (used in findings).
RACE_RULE_PAPER = {
    "R201": "§4.1 (buffer management)",
    "R202": "§3.1 (rep answer cache)",
    "R203": "§4 (match engine)",
}

#: Site kind (first tuple element) -> rule code.
_SITE_RULES = {"ledger": "R201", "rep_cache": "R202", "match": "R203"}

Site = tuple[str, ...]


def ledger_site(who: str, region: str) -> Site:
    """The buffer-ledger site of process *who*'s *region*."""
    return ("ledger", who, region)


def match_site(who: str, region: str) -> Site:
    """The match-engine site of process *who*'s *region*."""
    return ("match", who, region)


def rep_cache_site(rep_who: str) -> Site:
    """The answer-cache site of rep *rep_who* (e.g. ``"F.rep"``)."""
    return ("rep_cache", rep_who)


@dataclass(frozen=True)
class RaceRecord:
    """One unordered conflicting access pair."""

    site: Site
    first_thread: str
    first_where: str
    first_kind: str
    second_thread: str
    second_where: str
    second_kind: str

    @property
    def rule(self) -> str:
        """The R-rule code of this record's site kind."""
        return _SITE_RULES.get(self.site[0], "R203")


@dataclass
class _Access:
    thread: int
    clock: dict[int, int]
    kind: str
    where: str


class RaceMonitor:
    """Happens-before detector shared by every thread of a live run.

    All methods are thread-safe; the internal lock serializes event
    processing in the order the instrumented code observed it (hooks
    run while the instrumented lock is still held, so lock events
    reach the monitor in their true serialization order).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # Keyed by the Thread *object*, not get_ident(): the OS reuses
        # idents once a thread exits, which would silently merge a new
        # thread's clock with a dead one's (a false happens-before
        # edge).  Holding the object strongly keeps the key unique.
        self._index: dict[threading.Thread, int] = {}
        self._names: dict[int, str] = {}
        self._clocks: dict[int, dict[int, int]] = {}
        self._released: dict[Any, dict[int, int]] = {}
        self._messages: dict[Any, dict[int, int]] = {}
        self._sites: dict[Site, dict[tuple[int, str], _Access]] = {}
        self.records: list[RaceRecord] = []
        self.accesses = 0

    # -- clock plumbing (caller must hold self._lock) -----------------------
    def _me(self) -> int:
        thread = threading.current_thread()
        idx = self._index.get(thread)
        if idx is None:
            idx = len(self._index)
            self._index[thread] = idx
            self._names[idx] = thread.name
            self._clocks[idx] = {idx: 1}
        return idx

    def _join(self, idx: int, other: dict[int, int]) -> None:
        clock = self._clocks[idx]
        for t, c in other.items():
            if clock.get(t, 0) < c:
                clock[t] = c

    def _tick(self, idx: int) -> None:
        self._clocks[idx][idx] += 1

    # -- synchronization events ---------------------------------------------
    def acquire(self, lock_key: Any) -> None:
        """The calling thread acquired lock *lock_key*."""
        with self._lock:
            idx = self._me()
            released = self._released.get(lock_key)
            if released is not None:
                self._join(idx, released)

    def release(self, lock_key: Any) -> None:
        """The calling thread is about to release lock *lock_key*."""
        with self._lock:
            idx = self._me()
            self._released[lock_key] = dict(self._clocks[idx])
            self._tick(idx)

    def send(self, msg_key: Any) -> None:
        """The calling thread sent the message keyed *msg_key*."""
        with self._lock:
            idx = self._me()
            self._messages[msg_key] = dict(self._clocks[idx])
            self._tick(idx)

    def recv(self, msg_key: Any) -> None:
        """The calling thread received the message keyed *msg_key*.

        The send snapshot is kept (not popped): retransmissions reuse
        the original sequence number, and a missing edge would turn
        into a false positive, not a missed race.
        """
        with self._lock:
            idx = self._me()
            sent = self._messages.get(msg_key)
            if sent is not None:
                self._join(idx, sent)

    # -- accesses ------------------------------------------------------------
    def access(self, site: Site, kind: str = "write", where: str = "") -> None:
        """The calling thread touched *site* (``kind`` read or write)."""
        with self._lock:
            idx = self._me()
            clock = self._clocks[idx]
            self.accesses += 1
            history = self._sites.setdefault(site, {})
            for (other, other_kind), prev in history.items():
                if other == idx:
                    continue
                if kind == "read" and other_kind == "read":
                    continue
                # prev happens-before the current access iff our clock
                # has caught up with the accessor's epoch.
                if prev.clock[other] <= clock.get(other, 0):
                    continue
                self.records.append(
                    RaceRecord(
                        site=site,
                        first_thread=self._names[other],
                        first_where=prev.where,
                        first_kind=other_kind,
                        second_thread=self._names[idx],
                        second_where=where,
                        second_kind=kind,
                    )
                )
            history[(idx, kind)] = _Access(
                thread=idx, clock=dict(clock), kind=kind, where=where
            )
            self._tick(idx)

    # -- reporting -----------------------------------------------------------
    def report(self) -> Report:
        """Findings for every raced site (one per rule + site)."""
        out = Report()
        seen: set[tuple[str, Site]] = set()
        with self._lock:
            records = list(self.records)
            out.examined = self.accesses
        for rec in records:
            key = (rec.rule, rec.site)
            if key in seen:
                continue
            seen.add(key)
            program, rank = _locus(rec.site)
            out.add(
                Finding(
                    rule=rec.rule,
                    severity=Severity.ERROR,
                    message=(
                        f"unordered conflicting access to {rec.site[0]} "
                        f"{'/'.join(rec.site[1:])}: "
                        f"{rec.first_kind} by {rec.first_thread} "
                        f"({rec.first_where or 'unknown'}) vs "
                        f"{rec.second_kind} by {rec.second_thread} "
                        f"({rec.second_where or 'unknown'}) "
                        "with no happens-before edge"
                    ),
                    paper=RACE_RULE_PAPER[rec.rule],
                    program=program,
                    rank=rank,
                )
            )
        return out


def _locus(site: Site) -> tuple[str | None, int | None]:
    """Extract ``(program, rank)`` from a site's ``who`` element."""
    if len(site) < 2:
        return None, None
    who = site[1]
    prog, _, proc = who.partition(".")
    if proc.startswith("p") and proc[1:].isdigit():
        return prog, int(proc[1:])
    return prog or None, None
