"""AST lint for Property-1 hazards in user coupling programs.

Property 1 (paper Section 4) requires every process of a program to
issue the *same* collective export/import sequence with the *same*
timestamps.  The five-legal-cases aggregation rule and the buddy-help
optimization are sound only under that discipline — and its violations
are exactly the bugs that surface as confusing
``CollectiveViolationError`` crashes deep inside a run.  This module
finds the *static shadow* of those violations in the program source,
before anything executes:

* **P101** — an ``export`` / ``import_`` / ``import_begin`` call inside
  a branch whose condition depends on the process rank: some ranks
  issue the operation, others do not;
* **P102** — a collective call inside a loop whose trip count depends
  on per-rank data: ranks issue different numbers of operations;
* **P103** — a timestamp expression that mixes the rank into the
  value: ranks issue the same operations with different timestamps;
* **P104** — a rank-conditioned early exit (``return`` / ``break`` /
  ``continue``) in a scope that issues collectives: some ranks cut the
  sequence short.

Rank-dependence is tracked with a light intra-function taint analysis:
any read of a name or attribute called ``rank`` is rank-dependent, and
so is any variable assigned from a rank-dependent expression
(``slow = 2.0 if ctx.rank == 3 else 1.0`` taints ``slow``).  Attribute
reads are a taint barrier — ``solver.time`` stays clean even when
``solver`` was constructed from the rank.  Rank-
dependent *computation* (load imbalance, per-rank data contents, rank-
guarded printing) is perfectly legal — only the collective call
structure and timestamps are checked, mirroring what the runtime's
five-legal-cases rule can and cannot tolerate.

Each rule is one small class; adding a rule means adding one class to
:data:`DEFAULT_RULES`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar, Iterable, Sequence

from repro.analysis.report import Finding, Report, Severity

#: Methods treated as collective coupling operations.
COLLECTIVE_METHODS = frozenset({"export", "import_", "import_begin"})

#: Attribute / bare names whose read is rank-dependent.
RANK_NAMES = frozenset({"rank"})


# ---------------------------------------------------------------------------
# taint
# ---------------------------------------------------------------------------

def _mentions_rank(node: ast.AST, tainted: frozenset[str]) -> bool:
    """Whether *node* reads the rank or a rank-tainted variable.

    Attribute access is a taint *barrier* unless the attribute itself
    is named ``rank``: every SPMD program hands the rank to its solver
    constructor (``HeatSolver2D(decomp, ctx.rank)``), yet reads like
    ``solver.time`` are rank-independent — flagging them would make
    the lint useless on correct programs.  Reading a tainted variable
    *directly* still taints.
    """
    if isinstance(node, ast.Attribute):
        return node.attr in RANK_NAMES
    if isinstance(node, ast.Name):
        return node.id in RANK_NAMES or node.id in tainted
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        return False  # nested scopes are linted separately
    return any(_mentions_rank(c, tainted) for c in ast.iter_child_nodes(node))


def _assigned_names(target: ast.expr) -> list[str]:
    """Plain names bound by an assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Starred):
        return _assigned_names(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_assigned_names(elt))
        return out
    return []  # subscripts/attributes do not bind a local name


def _expand_assignment(
    target: ast.expr, value: ast.expr
) -> list[tuple[list[str], ast.expr]]:
    """Pair assignment targets with the sub-expressions feeding them.

    Tuple unpacking is matched element-wise when both sides have the
    same fixed shape: ``a, b = ctx.rank, 0`` taints only ``a`` and
    keeps ``b`` clean.  Any shape mismatch — a starred target, a
    non-literal right-hand side, differing lengths — falls back to
    binding every unpacked name (starred ones included) to the whole
    value, which errs toward reporting and loses no taint.
    """
    if (
        isinstance(target, (ast.Tuple, ast.List))
        and isinstance(value, (ast.Tuple, ast.List))
        and len(target.elts) == len(value.elts)
        and not any(isinstance(e, ast.Starred) for e in target.elts)
        and not any(isinstance(e, ast.Starred) for e in value.elts)
    ):
        out: list[tuple[list[str], ast.expr]] = []
        for t, v in zip(target.elts, value.elts):
            out.extend(_expand_assignment(t, v))
        return out
    names = _assigned_names(target)
    return [(names, value)] if names else []


def _compute_taint(body: Sequence[ast.stmt]) -> frozenset[str]:
    """Fixpoint of rank taint over a scope's assignments.

    Flow-insensitive on purpose: a variable ever assigned from a
    rank-dependent expression is treated as rank-dependent everywhere
    in the scope.  That errs toward reporting (the collective sequence
    must be rank-independent on *every* path), and keeps the analysis
    trivially sound for the generator-style mains the framework runs.
    """
    assignments: list[tuple[list[str], ast.expr]] = []

    class Collect(ast.NodeVisitor):
        def visit_Assign(self, node: ast.Assign) -> None:
            for target in node.targets:
                assignments.extend(_expand_assignment(target, node.value))
            self.generic_visit(node)

        def visit_AugAssign(self, node: ast.AugAssign) -> None:
            names = _assigned_names(node.target)
            if names:
                assignments.append((names, node.value))
                # x += expr also keeps x's own taint; model via self-read.
                assignments.append((names, node.target))
            self.generic_visit(node)

        def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
            if node.value is not None:
                assignments.extend(_expand_assignment(node.target, node.value))
            self.generic_visit(node)

        def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
            assignments.append(([node.target.id], node.value))
            self.generic_visit(node)

        # For-loop targets are deliberately NOT tainted by the iterable:
        # ``for k in range(ctx.rank + 5)`` gives every rank the same
        # ``k`` sequence prefix (only the trip count differs, which is
        # P102's job); tainting ``k`` would double-report every
        # timestamp derived from it.

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            pass  # nested scopes are linted separately

        def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
            pass

        def visit_Lambda(self, node: ast.Lambda) -> None:
            pass

    collector = Collect()
    for stmt in body:
        collector.visit(stmt)

    tainted: set[str] = set()
    changed = True
    while changed:
        changed = False
        for names, value in assignments:
            if _mentions_rank(value, frozenset(tainted)):
                for name in names:
                    if name not in tainted:
                        tainted.add(name)
                        changed = True
    return frozenset(tainted)


# ---------------------------------------------------------------------------
# scope model shared by the rules
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CollectiveCall:
    """One export/import call site with its enclosing control context."""

    node: ast.Call
    method: str
    ts_arg: ast.expr | None
    #: Line numbers of enclosing if/while/ternary tests that are
    #: rank-dependent (innermost last).
    rank_branches: tuple[int, ...]
    #: Line numbers of enclosing loops whose trip count is
    #: rank-dependent (innermost last).
    rank_loops: tuple[int, ...]

    @property
    def line(self) -> int:
        return self.node.lineno


@dataclass(frozen=True)
class RankExit:
    """A rank-conditioned ``return``/``break``/``continue``."""

    kind: str
    line: int
    branch_line: int
    #: Whether the scope the exit cuts short issues collective calls.
    scope_has_collectives: bool


@dataclass
class ScopeState:
    """Everything the rules may inspect about one linted scope."""

    name: str
    tainted: frozenset[str]
    calls: list[CollectiveCall] = field(default_factory=list)
    exits: list[RankExit] = field(default_factory=list)


# ---------------------------------------------------------------------------
# rules — one class each
# ---------------------------------------------------------------------------

class LintRule:
    """Base class: a rule inspects a fully-collected :class:`ScopeState`."""

    code: ClassVar[str]
    severity: ClassVar[Severity] = Severity.ERROR
    paper: ClassVar[str] = "§4 (Property 1)"

    def check(self, scope: ScopeState, file: str | None) -> Iterable[Finding]:
        raise NotImplementedError

    def _finding(self, message: str, file: str | None, line: int) -> Finding:
        return Finding(
            rule=self.code,
            severity=self.severity,
            message=message,
            paper=self.paper,
            file=file,
            line=line,
        )


class RankConditionalCollective(LintRule):
    """P101: collective call under a rank-dependent branch."""

    code = "P101"

    def check(self, scope: ScopeState, file: str | None) -> Iterable[Finding]:
        for call in scope.calls:
            if call.rank_branches:
                yield self._finding(
                    f"collective {call.method}() is issued inside a branch "
                    f"conditioned on the process rank (test at line "
                    f"{call.rank_branches[-1]}); ranks taking different "
                    "branches issue different operation sequences, which "
                    "breaks the five-legal-cases aggregation",
                    file,
                    call.line,
                )


class RankDependentTripCount(LintRule):
    """P102: collective call in a loop whose trip count is per-rank."""

    code = "P102"

    def check(self, scope: ScopeState, file: str | None) -> Iterable[Finding]:
        for call in scope.calls:
            if call.rank_loops and not call.rank_branches:
                yield self._finding(
                    f"collective {call.method}() sits in a loop whose trip "
                    f"count depends on the process rank (loop at line "
                    f"{call.rank_loops[-1]}); ranks would issue different "
                    "numbers of operations",
                    file,
                    call.line,
                )


class RankTaintedTimestamp(LintRule):
    """P103: timestamp argument mixes the rank into the value."""

    code = "P103"

    def check(self, scope: ScopeState, file: str | None) -> Iterable[Finding]:
        for call in scope.calls:
            if call.ts_arg is not None and _mentions_rank(
                call.ts_arg, scope.tainted
            ):
                yield self._finding(
                    f"the timestamp passed to {call.method}() depends on the "
                    "process rank; every process must transfer the same "
                    "timestamps in the same order (per-rank data *contents* "
                    "are fine — timestamps are not)",
                    file,
                    call.line,
                )


class RankDependentEarlyExit(LintRule):
    """P104: rank-conditioned early exit from a collective-issuing scope."""

    code = "P104"

    def check(self, scope: ScopeState, file: str | None) -> Iterable[Finding]:
        for ex in scope.exits:
            if ex.scope_has_collectives:
                yield self._finding(
                    f"rank-conditioned {ex.kind!r} (branch at line "
                    f"{ex.branch_line}) cuts short a scope that issues "
                    "collective operations; slower-rank prefixes are legal, "
                    "but a rank-*dependent* cut-off diverges the sequences",
                    file,
                    ex.line,
                )


DEFAULT_RULES: tuple[LintRule, ...] = (
    RankConditionalCollective(),
    RankDependentTripCount(),
    RankTaintedTimestamp(),
    RankDependentEarlyExit(),
)


# ---------------------------------------------------------------------------
# the visitor framework
# ---------------------------------------------------------------------------

class _ScopeVisitor(ast.NodeVisitor):
    """Walks one function (or the module top level) collecting state."""

    def __init__(self, scope: ScopeState) -> None:
        self.scope = scope
        self._branch_stack: list[int] = []
        self._loop_stack: list[int] = []
        #: One flag per *currently open* loop: does it issue collectives?
        self._loop_flags: list[bool] = []
        #: break/continue exits pending their loop's final flag, keyed
        #: by the loop's depth in ``_loop_flags`` at record time.
        self._pending_loop_exits: list[tuple[int, RankExit]] = []
        #: return exits pending the function's final flag.
        self._pending_returns: list[RankExit] = []
        self._function_has_collectives = False

    # -- control context ---------------------------------------------------
    def _tainted_test(self, test: ast.expr) -> bool:
        return _mentions_rank(test, self.scope.tainted)

    def visit_If(self, node: ast.If) -> None:
        tainted = self._tainted_test(node.test)
        if tainted:
            self._branch_stack.append(node.lineno)
        for stmt in node.body + node.orelse:
            self.visit(stmt)
        if tainted:
            self._branch_stack.pop()

    def visit_IfExp(self, node: ast.IfExp) -> None:
        tainted = self._tainted_test(node.test)
        self.visit(node.test)
        if tainted:
            self._branch_stack.append(node.lineno)
        self.visit(node.body)
        self.visit(node.orelse)
        if tainted:
            self._branch_stack.pop()

    def visit_While(self, node: ast.While) -> None:
        tainted = self._tainted_test(node.test)
        if tainted:
            self._loop_stack.append(node.lineno)
        self._enter_loop()
        for stmt in node.body + node.orelse:
            self.visit(stmt)
        self._leave_loop()
        if tainted:
            self._loop_stack.pop()

    def visit_For(self, node: ast.For) -> None:
        tainted = _mentions_rank(node.iter, self.scope.tainted)
        self.visit(node.iter)
        if tainted:
            self._loop_stack.append(node.lineno)
        self._enter_loop()
        for stmt in node.body + node.orelse:
            self.visit(stmt)
        self._leave_loop()
        if tainted:
            self._loop_stack.pop()

    def _enter_loop(self) -> None:
        self._loop_flags.append(False)

    def _leave_loop(self) -> None:
        # The loop's collective flag is now final: resolve the break/
        # continue exits recorded at this depth (a break *before* a
        # collective later in the same loop body still counts).
        depth = len(self._loop_flags) - 1
        flag = self._loop_flags.pop()
        remaining: list[tuple[int, RankExit]] = []
        for d, ex in self._pending_loop_exits:
            if d == depth:
                self.scope.exits.append(
                    RankExit(
                        kind=ex.kind,
                        line=ex.line,
                        branch_line=ex.branch_line,
                        scope_has_collectives=flag,
                    )
                )
            else:
                remaining.append((d, ex))
        self._pending_loop_exits = remaining

    # -- exits -------------------------------------------------------------
    def _make_exit(self, kind: str, node: ast.stmt) -> RankExit | None:
        if not self._branch_stack:
            return None
        return RankExit(
            kind=kind,
            line=node.lineno,
            branch_line=self._branch_stack[-1],
            scope_has_collectives=False,  # resolved later
        )

    def visit_Return(self, node: ast.Return) -> None:
        ex = self._make_exit("return", node)
        if ex is not None:
            self._pending_returns.append(ex)
        self.generic_visit(node)

    def visit_Break(self, node: ast.Break) -> None:
        ex = self._make_exit("break", node)
        if ex is not None and self._loop_flags:
            self._pending_loop_exits.append((len(self._loop_flags) - 1, ex))

    def visit_Continue(self, node: ast.Continue) -> None:
        ex = self._make_exit("continue", node)
        if ex is not None and self._loop_flags:
            self._pending_loop_exits.append((len(self._loop_flags) - 1, ex))

    # -- collective calls --------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        method = self._collective_method(node)
        if method is not None:
            self.scope.calls.append(
                CollectiveCall(
                    node=node,
                    method=method,
                    ts_arg=self._ts_arg(node, method),
                    rank_branches=tuple(self._branch_stack),
                    rank_loops=tuple(self._loop_stack),
                )
            )
            self._function_has_collectives = True
            for i in range(len(self._loop_flags)):
                self._loop_flags[i] = True
        self.generic_visit(node)

    @staticmethod
    def _collective_method(node: ast.Call) -> str | None:
        fn = node.func
        if isinstance(fn, ast.Attribute) and fn.attr in COLLECTIVE_METHODS:
            return fn.attr
        if isinstance(fn, ast.Name) and fn.id in COLLECTIVE_METHODS:
            return fn.id
        return None

    @staticmethod
    def _ts_arg(node: ast.Call, method: str) -> ast.expr | None:
        # Signature of all three: (region, ts, ...).
        for kw in node.keywords:
            if kw.arg == "ts":
                return kw.value
        if len(node.args) >= 2:
            return node.args[1]
        return None

    # -- nested scopes are linted independently ---------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    # -- finalize ----------------------------------------------------------
    def finalize(self) -> None:
        """Resolve ``return`` exits against the whole-function picture.

        A ``return`` cuts the entire remaining sequence short, so it
        matters iff the function issues collectives anywhere; ``break``
        and ``continue`` were already resolved against their own loop
        when that loop closed.
        """
        for ex in self._pending_returns:
            self.scope.exits.append(
                RankExit(
                    kind=ex.kind,
                    line=ex.line,
                    branch_line=ex.branch_line,
                    scope_has_collectives=self._function_has_collectives,
                )
            )
        self._pending_returns = []


def _iter_scopes(tree: ast.Module) -> Iterable[tuple[str, Sequence[ast.stmt]]]:
    """The module top level plus every (async) function, at any depth."""
    yield "<module>", tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node.body


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def lint_source(
    source: str,
    filename: str | None = None,
    rules: Sequence[LintRule] = DEFAULT_RULES,
) -> Report:
    """Lint one Python source text; returns the merged findings."""
    report = Report(examined=1)
    try:
        tree = ast.parse(source, filename=filename or "<string>")
    except SyntaxError as exc:
        report.add(
            Finding(
                rule="P100",
                severity=Severity.ERROR,
                message=f"source does not parse: {exc.msg}",
                paper="§4 (Property 1)",
                file=filename,
                line=exc.lineno,
            )
        )
        return report
    for name, body in _iter_scopes(tree):
        scope = ScopeState(name=name, tainted=_compute_taint(body))
        visitor = _ScopeVisitor(scope)
        for stmt in body:
            visitor.visit(stmt)
        visitor.finalize()
        for rule in rules:
            for finding in rule.check(scope, filename):
                report.add(finding)
    return report


def lint_file(path: str | Path, rules: Sequence[LintRule] = DEFAULT_RULES) -> Report:
    """Lint one Python file."""
    p = Path(path)
    return lint_source(p.read_text(encoding="utf-8"), filename=str(p), rules=rules)


def lint_path(path: str | Path, rules: Sequence[LintRule] = DEFAULT_RULES) -> Report:
    """Lint a Python file, or every ``*.py`` under a directory."""
    p = Path(path)
    if p.is_dir():
        report = Report()
        for file in sorted(p.rglob("*.py")):
            if any(part.startswith(".") for part in file.parts):
                continue
            report.extend(lint_file(file, rules=rules))
        return report
    return lint_file(p, rules=rules)
