"""Collective-semantics verification (static and online).

The paper's buddy-help optimization is sound only because of
Property 1 — every process of a program issues the same collective
export/import sequence — and because the rep's aggregate of per-process
responses stays within the five legal cases (Section 4).  The runtime
detects violations *reactively*; this package proves (or refutes)
collective discipline *proactively*, in three coordinated passes:

* :mod:`repro.analysis.graph` — static analysis of a coupling
  configuration without running it (dangling endpoints, tolerance /
  cadence incompatibilities, import-request deadlock cycles, dead
  buddy-help connections);
* :mod:`repro.analysis.astlint` — an ``ast``-based lint of user
  coupling programs for *rank-dependent* collective operations, the
  static shadow of Property 1;
* :mod:`repro.analysis.sanitizer` — an opt-in online interposer on rep
  state transitions and the trace stream that turns silent protocol
  corruption into immediate, located failures.

All three passes share the findings model of
:mod:`repro.analysis.report` (severity, rule code, locus, paper-section
citation) with text and JSON renderers, and are exposed on the command
line as ``repro lint``.
"""

from repro.analysis.report import Finding, Report, Severity
from repro.analysis.graph import analyze_config, analyze_config_text
from repro.analysis.astlint import lint_path, lint_source
from repro.analysis.sanitizer import ProtocolSanitizer, SanitizerError

__all__ = [
    "Finding",
    "Report",
    "Severity",
    "analyze_config",
    "analyze_config_text",
    "lint_path",
    "lint_source",
    "ProtocolSanitizer",
    "SanitizerError",
]
