"""Collective-semantics verification (static and online).

The paper's buddy-help optimization is sound only because of
Property 1 — every process of a program issues the same collective
export/import sequence — and because the rep's aggregate of per-process
responses stays within the five legal cases (Section 4).  The runtime
detects violations *reactively*; this package proves (or refutes)
collective discipline *proactively*, in three coordinated passes:

* :mod:`repro.analysis.graph` — static analysis of a coupling
  configuration without running it (dangling endpoints, tolerance /
  cadence incompatibilities, import-request deadlock cycles, dead
  buddy-help connections);
* :mod:`repro.analysis.astlint` — an ``ast``-based lint of user
  coupling programs for *rank-dependent* collective operations, the
  static shadow of Property 1;
* :mod:`repro.analysis.sanitizer` — an opt-in online interposer on rep
  state transitions and the trace stream that turns silent protocol
  corruption into immediate, located failures.

Beyond those source-level passes, the *verification* layer reasons
about executions (exposed as ``repro verify``):

* :mod:`repro.analysis.model` — an explicit-state model checker that
  exhaustively explores every bounded message interleaving and fault
  action of a two-program world through the real protocol
  implementations (rules ``M2xx``), with replayable counterexample
  schedules;
* :mod:`repro.analysis.races` — a vector-clock happens-before race
  detector for the threaded live runtime's shared state (rules
  ``R2xx``), attached via ``RunOptions(race_monitor=...)``.

All passes share the findings model of
:mod:`repro.analysis.report` (severity, rule code, locus, paper-section
citation) with text and JSON renderers, and are exposed on the command
line as ``repro lint`` and ``repro verify``.
"""

from repro.analysis.report import Finding, Report, Severity
from repro.analysis.graph import analyze_config, analyze_config_text
from repro.analysis.astlint import lint_path, lint_source
from repro.analysis.sanitizer import ProtocolSanitizer, SanitizerError
from repro.analysis.model import (
    ModelConfig,
    check,
    check_suite,
    mutation_config,
    replay_schedule,
)
from repro.analysis.races import RaceMonitor, RaceRecord

__all__ = [
    "Finding",
    "Report",
    "Severity",
    "analyze_config",
    "analyze_config_text",
    "lint_path",
    "lint_source",
    "ProtocolSanitizer",
    "SanitizerError",
    "ModelConfig",
    "check",
    "check_suite",
    "mutation_config",
    "replay_schedule",
    "RaceMonitor",
    "RaceRecord",
]
