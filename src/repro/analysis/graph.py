"""Static analysis of a coupling configuration (no execution).

The paper's configuration file (Figure 2) is a complete, declarative
description of the coupled system: programs, process counts, and the
export/import connections with their match policies.  That makes a
surprising amount of protocol soundness *statically checkable* — before
any process runs:

* **G101 dangling endpoints** — connections naming unknown programs, or
  analysis directives naming regions no connection touches;
* **G102 schedule incompatibility** — given declared export/import
  timestamp cadences, a policy tolerance that can never (or not always)
  put an export inside the request's acceptable region, so the
  connection resolves to NO_MATCH forever;
* **G103 import-request cycles** — programs whose blocking imports wait
  on each other in a cycle, which can deadlock the DES;
* **G104 dead buddy-help** — connections whose exporting program runs a
  single process, so the mixed PENDING+definitive aggregate cases that
  trigger buddy-help can never occur;
* **G105/G106/G107/G108** — duplicate connections, self-coupling,
  exported regions nobody imports (the legal zero-overhead path), and
  regions imported over more than one connection (unsupported).

Timestamp cadences are declared with ``#@`` directives inside the
configuration file (ordinary comments to the runtime parser)::

    #@ export P0.r1 period=0.5 start=0.5
    #@ import P1.r1 period=2.0 start=2.0 count=10

meaning P0 exports r1 at t = 0.5, 1.0, 1.5, ... and P1 requests it at
t = 2.0, 4.0, ... (ten requests).  Cadences are optional; checks that
need them are skipped when they are absent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.analysis.report import Finding, Report, Severity
from repro.core.config import CouplingConfig, parse_config
from repro.core.exceptions import ConfigError
from repro.match.policies import MatchPolicy

#: Relative slack for float grid arithmetic.
_EPS = 1e-9

#: How many import requests the schedule check examines per connection.
_MAX_REQUESTS_CHECKED = 64


@dataclass(frozen=True)
class CadenceSpec:
    """A declared periodic timestamp schedule ``start + k * period``."""

    start: float
    period: float
    count: int | None = None

    def timestamps(self, limit: int) -> list[float]:
        """The first ``min(count, limit)`` grid points."""
        n = limit if self.count is None else min(self.count, limit)
        return [self.start + k * self.period for k in range(n)]


@dataclass
class Cadences:
    """Declared export/import schedules, keyed by ``(program, region)``."""

    exports: dict[tuple[str, str], CadenceSpec]
    imports: dict[tuple[str, str], CadenceSpec]

    @staticmethod
    def empty() -> "Cadences":
        return Cadences(exports={}, imports={})


def parse_directives(text: str, path: str | None, report: Report) -> Cadences:
    """Extract ``#@`` analysis directives from configuration *text*.

    Malformed directives become ``G100`` error findings rather than
    exceptions, so one bad line does not hide the rest of the analysis.
    """
    cadences = Cadences.empty()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line.startswith("#@"):
            continue
        tokens = line[2:].split()
        try:
            role, endpoint, spec = _parse_directive(tokens)
        except ValueError as exc:
            report.add(
                Finding(
                    rule="G100",
                    severity=Severity.ERROR,
                    message=f"malformed analysis directive {line!r}: {exc}",
                    paper="§3 (coupling configuration)",
                    file=path,
                    line=lineno,
                )
            )
            continue
        table = cadences.exports if role == "export" else cadences.imports
        if endpoint in table:
            report.add(
                Finding(
                    rule="G100",
                    severity=Severity.ERROR,
                    message=(
                        f"duplicate {role} cadence for "
                        f"{endpoint[0]}.{endpoint[1]}"
                    ),
                    paper="§3 (coupling configuration)",
                    file=path,
                    line=lineno,
                )
            )
            continue
        table[endpoint] = spec
    return cadences


def _parse_directive(
    tokens: list[str],
) -> tuple[str, tuple[str, str], CadenceSpec]:
    if len(tokens) < 3:
        raise ValueError("expected: (export|import) PROG.REGION period=X [start=Y] [count=N]")
    role = tokens[0].lower()
    if role not in ("export", "import"):
        raise ValueError(f"unknown role {tokens[0]!r} (expected export or import)")
    program, sep, region = tokens[1].partition(".")
    if not sep or not program or not region:
        raise ValueError(f"bad endpoint {tokens[1]!r}: expected PROGRAM.REGION")
    period: float | None = None
    start = 0.0
    start_given = False
    count: int | None = None
    for tok in tokens[2:]:
        key, eq, value = tok.partition("=")
        if not eq:
            raise ValueError(f"bad key=value token {tok!r}")
        try:
            if key == "period":
                period = float(value)
            elif key == "start":
                start = float(value)
                start_given = True
            elif key == "count":
                count = int(value)
            else:
                raise ValueError(f"unknown key {key!r}")
        except ValueError as exc:
            raise ValueError(str(exc)) from None
    if period is None or period <= 0:
        raise ValueError("period must be given and positive")
    if count is not None and count <= 0:
        raise ValueError("count must be positive")
    if not start_given:
        start = period
    return role, (program, region), CadenceSpec(start=start, period=period, count=count)


# ---------------------------------------------------------------------------
# the pass
# ---------------------------------------------------------------------------

def analyze_config_text(text: str, path: str | Path | None = None) -> Report:
    """Statically analyze raw configuration *text* (plus directives)."""
    loc = str(path) if path is not None else None
    report = Report(examined=1)
    try:
        config = parse_config(text)
    except ConfigError as exc:
        report.add(
            Finding(
                rule="G101",
                severity=Severity.ERROR,
                message=f"configuration does not parse: {exc}",
                paper="§3 (coupling configuration)",
                file=loc,
            )
        )
        return report
    cadences = parse_directives(text, loc, report)
    report.extend(analyze_config(config, cadences=cadences, path=loc))
    return report


def analyze_config(
    config: CouplingConfig,
    cadences: Cadences | None = None,
    path: str | Path | None = None,
) -> Report:
    """Statically analyze a parsed :class:`CouplingConfig`."""
    loc = str(path) if path is not None else None
    report = Report(examined=0 if loc is None else 1)
    cadences = cadences if cadences is not None else Cadences.empty()
    _check_endpoints(config, cadences, loc, report)
    _check_schedules(config, cadences, loc, report)
    _check_cycles(config, loc, report)
    _check_buddy_liveness(config, loc, report)
    return report


# -- G101 / G105 / G106 / G107 / G108 ---------------------------------------

def _check_endpoints(
    config: CouplingConfig, cadences: Cadences, loc: str | None, report: Report
) -> None:
    seen: set[tuple[str, str]] = set()
    imported: dict[tuple[str, str], int] = {}
    for conn in config.connections:
        for side, ep in (("exporter", conn.exporter), ("importer", conn.importer)):
            if ep.program not in config.programs:
                report.add(
                    Finding(
                        rule="G101",
                        severity=Severity.ERROR,
                        message=(
                            f"{side} endpoint {ep} names unknown program "
                            f"{ep.program!r}; the framework would reject this "
                            "coupling at initialization"
                        ),
                        paper="§3 (early detection of incorrect couplings)",
                        file=loc,
                        connection=conn.connection_id,
                    )
                )
        pair = (str(conn.exporter), str(conn.importer))
        if pair in seen:
            report.add(
                Finding(
                    rule="G105",
                    severity=Severity.ERROR,
                    message=f"duplicate connection {conn.connection_id}",
                    paper="§3 (coupling configuration)",
                    file=loc,
                    connection=conn.connection_id,
                )
            )
        seen.add(pair)
        if conn.exporter.program == conn.importer.program:
            report.add(
                Finding(
                    rule="G106",
                    severity=Severity.ERROR,
                    message=(
                        f"connection {conn.connection_id} couples program "
                        f"{conn.exporter.program!r} to itself"
                    ),
                    paper="§3 (coupling configuration)",
                    file=loc,
                    connection=conn.connection_id,
                )
            )
        key = (conn.importer.program, conn.importer.region)
        imported[key] = imported.get(key, 0) + 1

    for (prog, region), n in sorted(imported.items()):
        if n > 1:
            report.add(
                Finding(
                    rule="G108",
                    severity=Severity.ERROR,
                    message=(
                        f"region {prog}.{region} is imported over {n} "
                        "connections; at most one exporter per imported "
                        "region is supported"
                    ),
                    paper="§3 (coupling configuration)",
                    file=loc,
                    program=prog,
                )
            )

    # Directive endpoints must exist in the coupling graph; a cadence
    # for a region no connection touches is a dangling region name
    # (usually a typo — the classic silent misconfiguration).
    referenced = {
        (ep.program, ep.region)
        for conn in config.connections
        for ep in (conn.exporter, conn.importer)
    }
    for role, table in (("export", cadences.exports), ("import", cadences.imports)):
        for (prog, region), _spec in sorted(table.items()):
            if (prog, region) not in referenced:
                report.add(
                    Finding(
                        rule="G101",
                        severity=Severity.WARNING,
                        message=(
                            f"{role} cadence declared for {prog}.{region}, but "
                            "no connection references that region — dangling "
                            "region name (typo?)"
                        ),
                        paper="§3 (coupling configuration)",
                        file=loc,
                        program=prog,
                    )
                )

    # Exported regions nobody imports are legal (zero-overhead no-ops)
    # but worth an observation when explicitly declared via a cadence.
    for (prog, region), _spec in sorted(cadences.exports.items()):
        if (prog, region) in referenced and not config.connections_exporting(
            prog, region
        ):
            report.add(
                Finding(
                    rule="G107",
                    severity=Severity.INFO,
                    message=(
                        f"region {prog}.{region} is exported but never "
                        "imported; its exports take the zero-overhead path"
                    ),
                    paper="§3 (unconnected exported regions)",
                    file=loc,
                    program=prog,
                )
            )


# -- G102: schedule/tolerance incompatibility --------------------------------

def _grid_hit(
    low: float, high: float, grid: CadenceSpec
) -> bool:
    """Whether any grid point ``start + k*period`` (k >= 0) lies in
    ``[low, high]``, respecting the grid's optional count bound."""
    slack = _EPS * max(1.0, abs(high), grid.period)
    k_min = math.ceil((low - grid.start - slack) / grid.period)
    k_max = math.floor((high - grid.start + slack) / grid.period)
    k_min = max(k_min, 0)
    if grid.count is not None:
        k_max = min(k_max, grid.count - 1)
    return k_max >= k_min


def _check_schedules(
    config: CouplingConfig, cadences: Cadences, loc: str | None, report: Report
) -> None:
    for conn in config.connections:
        exp_key = (conn.exporter.program, conn.exporter.region)
        imp_key = (conn.importer.program, conn.importer.region)
        exp_cad = cadences.exports.get(exp_key)
        imp_cad = cadences.imports.get(imp_key)
        if exp_cad is None or imp_cad is None:
            continue  # nothing declared: the check does not apply
        policy: MatchPolicy = conn.policy
        requests = imp_cad.timestamps(_MAX_REQUESTS_CHECKED)
        misses = [
            t for t in requests if not _grid_hit(*policy.region(t), exp_cad)
        ]
        if not misses:
            continue
        if len(misses) == len(requests):
            severity = Severity.ERROR
            what = (
                f"no request of the declared import schedule can ever MATCH: "
                f"policy {policy} puts every acceptable region between export "
                f"grid points (export period {exp_cad.period:g}, start "
                f"{exp_cad.start:g})"
            )
        else:
            severity = Severity.WARNING
            shown = ", ".join(f"@{t:g}" for t in misses[:4])
            more = "" if len(misses) <= 4 else f" (+{len(misses) - 4} more)"
            what = (
                f"{len(misses)}/{len(requests)} declared requests can never "
                f"MATCH under policy {policy} given the export cadence "
                f"(period {exp_cad.period:g}): first misses {shown}{more}; "
                "they resolve to NO_MATCH forever"
            )
        report.add(
            Finding(
                rule="G102",
                severity=severity,
                message=what
                + " — widen the tolerance or align the schedules",
                paper="§5 (REGL approximate match, acceptable region)",
                file=loc,
                connection=conn.connection_id,
            )
        )


# -- G103: import-request cycles ---------------------------------------------

def _check_cycles(config: CouplingConfig, loc: str | None, report: Report) -> None:
    # Edge importer -> exporter: the importer's blocking import waits on
    # data only the exporter produces.
    edges: dict[str, set[str]] = {}
    for conn in config.connections:
        edges.setdefault(conn.importer.program, set()).add(conn.exporter.program)
    for cycle in _find_cycles(edges):
        chain = " -> ".join(cycle + [cycle[0]])
        report.add(
            Finding(
                rule="G103",
                severity=Severity.WARNING,
                message=(
                    f"import-request cycle {chain}: if each program issues a "
                    "blocking import before its corresponding export, every "
                    "process waits on data that is never produced and the "
                    "discrete-event simulation deadlocks; phase the "
                    "export/import order explicitly or use non-blocking "
                    "imports (import_begin/import_wait)"
                ),
                paper="§3 (loosely coupled export/import model)",
                file=loc,
            )
        )


def _find_cycles(edges: dict[str, set[str]]) -> list[list[str]]:
    """Elementary-cycle detection, one representative cycle per SCC.

    Tarjan's strongly-connected components, iteratively; SCCs with more
    than one node contain at least one cycle (self-coupling is rejected
    earlier, so single-node SCCs are acyclic).
    """
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    sccs: list[list[str]] = []

    def strongconnect(root: str) -> None:
        work: list[tuple[str, Iterator[str]]] = [
            (root, iter(sorted(edges.get(root, ()))))
        ]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, it = work[-1]
            advanced = False
            for succ in it:
                if succ not in index:
                    index[succ] = low[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges.get(succ, ())))))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                scc: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                if len(scc) > 1:
                    sccs.append(sorted(scc))

    nodes = sorted(set(edges) | {m for vs in edges.values() for m in vs})
    for node in nodes:
        if node not in index:
            strongconnect(node)
    return sccs


# -- G104: buddy-help can never fire -----------------------------------------

def _check_buddy_liveness(
    config: CouplingConfig, loc: str | None, report: Report
) -> None:
    for conn in config.connections:
        spec = config.programs.get(conn.exporter.program)
        if spec is None:
            continue  # already a G101 error
        if spec.nprocs == 1:
            report.add(
                Finding(
                    rule="G104",
                    severity=Severity.INFO,
                    message=(
                        f"exporting program {spec.name!r} runs a single "
                        "process, so the mixed PENDING+MATCH / "
                        "PENDING+NO_MATCH aggregate cases cannot occur and "
                        "buddy-help can never fire on this connection — the "
                        "optimization is dead weight here"
                    ),
                    paper="§4 (five legal cases; buddy-help)",
                    file=loc,
                    connection=conn.connection_id,
                )
            )
