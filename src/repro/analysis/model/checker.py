"""Exhaustive exploration of the control-plane model (M2xx rules).

The checker enumerates every reachable state of a
:class:`~repro.analysis.model.machine.ModelMachine` under all message
interleavings and fault actions within the configured budgets, and
checks five invariants:

=========  ==============================================================
``M201``   no deadlock: a quiescent state with an unresolved import and
           no fault injected is a protocol bug
``M202``   no retransmission livelock: retransmissions must actually
           recover — budget exhaustion with the import still unresolved
           means every re-drive returned to an equivalent stuck state
``M203``   rep aggregation always lands in one of the five legal cases:
           any :class:`ProtocolError` / :class:`PropertyViolationError`
           raised by the real state machines is an illegal transition
``M204``   buffer-ledger occupancy never exceeds the Eq. 1-2 window
           bound (checked structurally on every reached state)
``M205``   every PENDING import eventually resolves (quiescence with a
           PENDING import after faults the protocol claims to absorb)
=========  ==============================================================

States are canonicalized (:meth:`ModelMachine.encode`) and hashed with
BLAKE2b-128 so the visited set stores 16-byte digests, not object
graphs.  The search is a depth-first walk with **sleep sets**
(Godefroid): after exploring action *a* from a state, every previously
explored action independent of *a* is put to sleep in *a*'s successor —
permutations of commuting actions are walked once instead of ``n!``
times.  Sleep sets alone never prune *states* (every reachable state is
still visited, so the distinct-state count and the invariant coverage
stay exact); they only prune redundant transitions.  Independence is
footprint disjointness (:meth:`ModelMachine.footprint`), and revisiting
a state with a strictly smaller sleep set re-expands it with the
intersection, preserving completeness under state caching.

Each violation is reported once per rule as an ERROR
:class:`~repro.analysis.report.Finding`, paired with a deterministic
counterexample schedule (the action path from the initial state) that
:mod:`repro.analysis.model.replay` re-executes through the real DES
runtime as a ``repro.causal/v1`` DAG.
"""

from __future__ import annotations

import hashlib
import io
import pickle
import time
from dataclasses import dataclass, field, replace
from typing import Any

from repro.analysis.model.machine import (
    VIOLATION_ERRORS,
    ModelConfig,
    ModelMachine,
    _Working,
    clone_working,
)
from repro.analysis.report import Finding, Report, Severity

__all__ = [
    "SCHEMA",
    "CheckResult",
    "SuiteResult",
    "check",
    "check_suite",
    "directed_worlds",
    "RULE_PAPER",
]

#: JSON schema stamped into verify payloads and counterexample schedules.
SCHEMA = "repro.verify/v1"

#: Paper citation per M-rule (used in findings).
RULE_PAPER = {
    "M201": "§3.1 (seven-message protocol)",
    "M202": "§3.1 (request re-drive)",
    "M203": "§4 (five legal cases)",
    "M204": "§4.1, Eq. 1-2",
    "M205": "§4 (Property 1)",
}

Action = tuple[Any, ...]


@dataclass
class CheckResult:
    """Outcome of one exhaustive model check."""

    config: ModelConfig
    report: Report
    #: One schedule per reported finding, index-aligned with
    #: ``report.findings``; each replays via ``model.replay``.
    counterexamples: list[dict[str, Any]]
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when exploration finished with zero findings."""
        return not self.report.findings

    def to_payload(self) -> dict[str, Any]:
        """The ``repro.verify/v1`` JSON payload for this check."""
        return {
            "schema": SCHEMA,
            "mode": "model",
            "config": self.config.describe(),
            "stats": dict(self.stats),
            "report": self.report.to_dict(),
            "counterexamples": list(self.counterexamples),
        }


def _digest(canon: tuple[Any, ...]) -> bytes:
    """16-byte stable digest of a canonical state.

    The pickler runs with the memo disabled (``fast`` mode): default
    pickling emits back-references for *shared* sub-objects, so two
    equal canonical states could serialize differently depending on
    object identity (e.g. a wire-level ``dup`` puts the same message
    tuple in a channel twice, while the decoded twin holds two distinct
    equal tuples).  Canonical states are acyclic nested tuples, so
    disabling the memo is safe and makes the digest a function of
    *value* only.
    """
    buf = io.BytesIO()
    pickler = pickle.Pickler(buf, protocol=4)
    pickler.fast = True  # value-deterministic: no identity-based memo refs
    pickler.dump(canon)
    return hashlib.blake2b(buf.getvalue(), digest_size=16).digest()


@dataclass
class _Frame:
    """One DFS stack entry (children are generated lazily).

    Frames keep their materialized working state so expanding a child is
    one :func:`clone_working` call instead of a full canonical decode —
    the decode/encode pair dominated exploration time otherwise.
    """

    w: _Working
    digest: bytes
    actions: list[Action]
    sleep: frozenset[Action]
    idx: int = 0
    done: list[Action] = field(default_factory=list)


class _Explorer:
    def __init__(
        self,
        config: ModelConfig,
        max_states: int,
        por: bool,
        max_schedule_actions: int,
    ) -> None:
        self.machine = ModelMachine(config)
        self.config = config
        self.max_states = max_states
        self.por = por
        self.max_schedule_actions = max_schedule_actions
        self.visited: dict[bytes, frozenset[Action]] = {}
        self.parent: dict[bytes, tuple[bytes, Action]] = {}
        self.report = Report()
        self.counterexamples: list[dict[str, Any]] = []
        self.rule_hits: dict[str, int] = {}
        self.transitions = 0
        self.sleep_skips = 0
        self.revisits = 0
        self.terminals = 0
        self.max_depth = 0
        self.complete = True
        self._footprints: dict[Action, frozenset[Any]] = {}

    # -- helpers ------------------------------------------------------------
    def _footprint(self, a: Action) -> frozenset[Any]:
        fp = self._footprints.get(a)
        if fp is None:
            fp = self.machine.footprint(a)
            self._footprints[a] = fp
        return fp

    def _independent(self, a: Action, b: Action) -> bool:
        return not (self._footprint(a) & self._footprint(b))

    def _path_to(self, digest: bytes, extra: Action | None) -> list[Action]:
        actions: list[Action] = [] if extra is None else [extra]
        cur = digest
        while cur in self.parent:
            cur, act = self.parent[cur]
            actions.append(act)
        actions.reverse()
        return actions

    def _record(
        self, rule: str, message: str, digest: bytes, extra: Action | None
    ) -> None:
        self.rule_hits[rule] = self.rule_hits.get(rule, 0) + 1
        if self.rule_hits[rule] > 1:
            return  # one counterexample per rule; later hits only counted
        self.report.add(
            Finding(
                rule=rule,
                severity=Severity.ERROR,
                message=message,
                paper=RULE_PAPER[rule],
                connection=self.machine.cid,
            )
        )
        actions = self._path_to(digest, extra)
        self.counterexamples.append(
            {
                "schema": SCHEMA,
                "kind": "counterexample",
                "rule": rule,
                "message": message,
                "config": self.config.describe(),
                "actions": [list(a) for a in actions],
            }
        )

    def _inspect(
        self, w: _Working, actions: list[Action], digest: bytes
    ) -> None:
        """Invariant checks on a newly reached state."""
        occupancy = self.machine.check_occupancy(w)
        if occupancy is not None:
            self._record("M204", occupancy, digest, None)
        if not actions:
            self.terminals += 1
            terminal = self.machine.classify_terminal(w)
            if terminal is not None:
                self._record(terminal[0], terminal[1], digest, None)

    # -- main loop ----------------------------------------------------------
    def run(self) -> None:
        machine = self.machine
        init_w = machine.initial_working()
        init_canon = machine.encode(init_w)
        init_digest = _digest(init_canon)
        init_actions = machine.enabled_actions(init_w)
        self.visited[init_digest] = frozenset()
        self._inspect(init_w, init_actions, init_digest)
        stack = [
            _Frame(
                w=init_w,
                digest=init_digest,
                actions=init_actions,
                sleep=frozenset(),
            )
        ]
        while stack:
            if len(self.visited) >= self.max_states:
                self.complete = False
                break
            self.max_depth = max(self.max_depth, len(stack))
            frame = stack[-1]
            if frame.idx >= len(frame.actions):
                stack.pop()
                continue
            action = frame.actions[frame.idx]
            frame.idx += 1
            if self.por and action in frame.sleep:
                self.sleep_skips += 1
                continue
            w = clone_working(frame.w)
            self.transitions += 1
            try:
                machine.apply(w, action)
            except VIOLATION_ERRORS as exc:
                frame.done.append(action)
                self._record(
                    "M203",
                    f"illegal transition {self._label(action)}: {exc}",
                    frame.digest,
                    action,
                )
                continue
            child_canon = machine.encode(w)
            child_digest = _digest(child_canon)
            if self.por:
                inherited = [b for b in frame.sleep if b != action]
                inherited.extend(frame.done)
                child_sleep = frozenset(
                    b for b in inherited if self._independent(action, b)
                )
            else:
                child_sleep = frozenset()
            frame.done.append(action)
            stored = self.visited.get(child_digest)
            if stored is None:
                self.visited[child_digest] = child_sleep
                self.parent[child_digest] = (frame.digest, action)
                child_actions = machine.enabled_actions(w)
                self._inspect(w, child_actions, child_digest)
                if child_actions:
                    stack.append(
                        _Frame(
                            w=w,
                            digest=child_digest,
                            actions=child_actions,
                            sleep=child_sleep,
                        )
                    )
            elif self.por and not (stored <= child_sleep):
                # Revisit with new wake-ups: re-expand under the
                # intersection so no interleaving is lost to caching.
                merged = stored & child_sleep
                self.visited[child_digest] = merged
                self.revisits += 1
                child_actions = machine.enabled_actions(w)
                if child_actions:
                    stack.append(
                        _Frame(
                            w=w,
                            digest=child_digest,
                            actions=child_actions,
                            sleep=merged,
                        )
                    )

    @staticmethod
    def _label(action: Action) -> str:
        return "(" + " ".join(str(p) for p in action) + ")"


def check(
    config: ModelConfig | None = None,
    *,
    max_states: int = 500_000,
    por: bool = True,
    max_schedule_actions: int = 10_000,
) -> CheckResult:
    """Exhaustively model-check *config* (default: the bounded 2x2 world).

    Parameters
    ----------
    config:
        The bounded world to explore; defaults to :class:`ModelConfig`'s
        acceptance configuration (2 importer x 2 exporter ranks).
    max_states:
        Safety valve: stop (and mark the result incomplete) after this
        many distinct states.
    por:
        Disable to explore without sleep-set reduction — same states,
        same findings, more transitions (the benchmark baseline).
    max_schedule_actions:
        Upper bound on counterexample schedule length (guards the
        parent-pointer walk against pathological depths).
    """
    cfg = config if config is not None else ModelConfig()
    explorer = _Explorer(cfg, max_states, por, max_schedule_actions)
    t0 = time.perf_counter()
    explorer.run()
    elapsed = time.perf_counter() - t0
    states = len(explorer.visited)
    explorer.report.examined = states
    stats: dict[str, Any] = {
        "states": states,
        "transitions": explorer.transitions,
        "terminals": explorer.terminals,
        "sleep_skips": explorer.sleep_skips,
        "revisits": explorer.revisits,
        "max_depth": explorer.max_depth,
        "por": por,
        "complete": explorer.complete,
        "elapsed_sec": elapsed,
        "states_per_sec": states / elapsed if elapsed > 0 else 0.0,
        "rule_hits": dict(sorted(explorer.rule_hits.items())),
    }
    return CheckResult(
        config=cfg,
        report=explorer.report,
        counterexamples=explorer.counterexamples,
        stats=stats,
    )


def directed_worlds(
    base: ModelConfig | None = None,
) -> list[tuple[str, ModelConfig]]:
    """The directed worlds a full verify run explores.

    One fault class per world — and for wire faults, one
    :data:`repro.faults.plan.FRAMEWORK_PLANES` plane per world — so that
    every world stays small enough to explore *exhaustively*.  Together
    the worlds cover every fault the base config budgets for; a world is
    omitted when its budget is zero (e.g. strict mode never drops).
    """
    cfg = base if base is not None else ModelConfig()
    worlds = [
        (
            "clean",
            replace(
                cfg,
                drop_budget=0,
                dup_budget=0,
                crash_budget=0,
                retransmit_budget=0,
            ),
        )
    ]
    if cfg.drop_budget:
        for plane in cfg.fault_planes:
            worlds.append(
                (
                    f"drop-{plane}",
                    replace(
                        cfg, dup_budget=0, crash_budget=0, fault_planes=(plane,)
                    ),
                )
            )
    if cfg.dup_budget:
        for plane in cfg.fault_planes:
            worlds.append(
                (
                    f"dup-{plane}",
                    replace(
                        cfg,
                        drop_budget=0,
                        crash_budget=0,
                        retransmit_budget=0,
                        fault_planes=(plane,),
                    ),
                )
            )
    if cfg.crash_budget:
        worlds.append(
            (
                "crash",
                replace(
                    cfg, drop_budget=0, dup_budget=0, retransmit_budget=0
                ),
            )
        )
    return worlds


@dataclass
class SuiteResult:
    """Aggregated outcome of a directed-world verify suite."""

    worlds: list[tuple[str, CheckResult]]
    report: Report
    #: Index-aligned with ``report.findings``; each carries a ``world``
    #: key naming the directed world it was found in.
    counterexamples: list[dict[str, Any]]

    @property
    def clean(self) -> bool:
        """True when every world finished with zero findings."""
        return not self.report.findings

    @property
    def complete(self) -> bool:
        """True when every world was explored exhaustively."""
        return all(r.stats["complete"] for _, r in self.worlds)

    @property
    def total_states(self) -> int:
        """Distinct states summed over the directed worlds."""
        return sum(r.stats["states"] for _, r in self.worlds)

    def to_payload(self) -> dict[str, Any]:
        """The ``repro.verify/v1`` JSON payload for the whole suite."""
        return {
            "schema": SCHEMA,
            "mode": "model-suite",
            "stats": {
                "worlds": len(self.worlds),
                "states": self.total_states,
                "transitions": sum(
                    r.stats["transitions"] for _, r in self.worlds
                ),
                "complete": self.complete,
                "elapsed_sec": sum(
                    r.stats["elapsed_sec"] for _, r in self.worlds
                ),
            },
            "worlds": [
                {
                    "name": name,
                    "config": r.config.describe(),
                    "stats": dict(r.stats),
                }
                for name, r in self.worlds
            ],
            "report": self.report.to_dict(),
            "counterexamples": list(self.counterexamples),
        }


def check_suite(
    base: ModelConfig | None = None,
    *,
    max_states: int = 500_000,
    por: bool = True,
) -> SuiteResult:
    """Run :func:`check` over every directed world of *base*.

    Findings are deduplicated per rule across worlds (the first world
    that exhibits a rule contributes the finding and its replayable
    counterexample; later hits only bump that world's ``rule_hits``).
    """
    results: list[tuple[str, CheckResult]] = []
    merged = Report()
    counterexamples: list[dict[str, Any]] = []
    seen_rules: set[str] = set()
    for name, cfg in directed_worlds(base):
        result = check(cfg, max_states=max_states, por=por)
        results.append((name, result))
        for finding, cex in zip(result.report.findings, result.counterexamples):
            if finding.rule in seen_rules:
                continue
            seen_rules.add(finding.rule)
            merged.add(finding)
            counterexamples.append({**cex, "world": name})
    merged.examined = sum(r.stats["states"] for _, r in results)
    return SuiteResult(
        worlds=results, report=merged, counterexamples=counterexamples
    )
