"""The control-plane model: real protocol code under a small-world harness.

The model checker does not re-implement the protocol.  Each abstract
state wraps live instances of the *real* state machines —
:class:`repro.core.rep.ImporterRep`, :class:`repro.core.rep.ExporterRep`
and :class:`repro.core.exporter.RegionExportState` (which transitively
exercises :class:`repro.match.engine.MatchEngine` and
:class:`repro.core.buffers.BufferManager`) — plus the wire-level glue
the runtimes add around them: per-``(src, dst)`` FIFO channels (the
ordering contract of :mod:`repro.faults.plan`), per-receiver sequence
deduplication (the coupler's ``_seq_duplicate`` layer) and the
importer's bounded retransmission.  A transition *is* a call into the
shipped code; whatever the checker proves, it proves about the code
that runs.

World shape: one importing program ``I`` (``nimp`` ranks + rep) and one
exporting program ``E`` (``nexp`` ranks + rep) over one connection.
Every importer rank issues the same scripted request sequence
(collective imports block, so a rank issues request *k+1* only after
*k* resolved); every exporter rank walks the same scripted export
stream at its own pace and closes it at the end.  Fault actions carry
bounded budgets and reuse the :mod:`repro.faults.plan` vocabulary:

* ``drop``  — lose the head message of a channel;
* ``dup``   — duplicate the head message *wire-level* (the copy keeps
  the original's sequence number, exactly like
  :class:`~repro.faults.plan.FaultPlan` duplicates);
* ``stall`` — not an explicit action: a message may rest in its channel
  arbitrarily long while every other action interleaves, so stalls are
  subsumed by the exploration itself;
* ``crash`` — fail-stop an exporter rank (at most ``nexp - 1``, so the
  collective always keeps one live responder).

Sequence numbers are stamped per *sender* as ``(sender, k)`` with the
smallest *k* not colliding with any copy still in flight to the
receiver or still remembered by its dedup layer — uniqueness while a
collision is possible is all dedup needs, and the scheme is
memoryless: no global counter ticks, so states that differ only in
message-numbering history merge.  For the same reason each receiver's
seen-set is pruned down to seqs still in transit toward it whenever a
wire copy disappears (delivery or drop) — a remembered seq with no
live copy can never be consulted again, and keeping it would make the
stamper's choice depend on dead history.

States are canonicalized into nested tuples (:meth:`ModelMachine.encode`)
for hashing; behavioural fields only — reporting counters are excluded
so states that cannot be distinguished by any future behaviour merge.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.buffers import BufferEntry
from repro.core.config import ConnectionSpec, Endpoint
from repro.core.exceptions import (
    FrameworkError,
    ProtocolError,
    PropertyViolationError,
)
from repro.core.exporter import OpenRequest, RegionExportState
from repro.core.rep import (
    AnswerImporter,
    BuddyHelp,
    DeliverAnswer,
    ExporterRep,
    ForwardRequest,
    ForwardToExporter,
    ImporterRep,
    _ExpRequestState,
    _ImpRequestState,
)
from repro.match.aggregate import CollectiveViolationError
from repro.match.backend import MATCH_BACKENDS
from repro.match.policies import parse_policy
from repro.match.result import FinalAnswer, MatchKind, MatchResponse
from repro.faults.plan import FRAMEWORK_PLANES
from repro.obs.trace import TraceContext
from repro.util.validation import require

__all__ = [
    "ModelConfig",
    "ModelMachine",
    "MUTATIONS",
    "VIOLATION_ERRORS",
    "NoAnswerCacheExporterRep",
    "clone_working",
    "mutation_config",
    "plane_of_channel",
]

#: Exceptions the real protocol code raises when its collective
#: discipline is violated; the checker maps any of these to M203.
VIOLATION_ERRORS = (
    ProtocolError,
    PropertyViolationError,
    CollectiveViolationError,
    FrameworkError,
    ValueError,  # require() failures inside the match engine
)

#: The supported self-test mutations (see ``docs/static_analysis.md``).
MUTATIONS = ("no_dedup", "no_answer_cache")

#: Channel endpoints -> the repro.faults.plan plane the link models.
_PLANES = {
    ("I", "IR"): "cpl",
    ("IR", "I"): "cpl",
    ("IR", "ER"): "rep",
    ("ER", "IR"): "rep",
    ("ER", "E"): "ctl",
    ("E", "ER"): "ctl",
}


def plane_of_channel(src: str, dst: str) -> str:
    """The :data:`repro.faults.plan.FRAMEWORK_PLANES` plane of a link."""
    return _PLANES[(src[:2].rstrip("0123456789"), dst[:2].rstrip("0123456789"))]


class NoAnswerCacheExporterRep(ExporterRep):
    """Mutation fixture: the rep's final-answer cache is skipped.

    A retransmitted request whose answer is already finalized goes
    *unanswered* instead of being re-served from the cache — the exact
    resilience bug the answer cache exists to prevent.  The model
    checker must rediscover it as an M202 retransmission livelock.
    """

    def on_request(self, connection_id: str, request_ts: float) -> list[Any]:
        st = self._conn(connection_id).get(request_ts)
        if st is not None and not self.strict_order and st.finalized is not None:
            self.duplicate_requests += 1
            return []  # the mutation: cache bypassed, importer hears nothing
        return super().on_request(connection_id, request_ts)


@dataclass(frozen=True)
class ModelConfig:
    """One bounded verification world.

    The defaults are the acceptance configuration: 2 importer ranks x
    2 exporter ranks, one collective request against a two-step export
    stream, resilient mode with one drop, one duplication and one
    crash in the budget, and two retransmissions per importer rank.
    The scripts are deliberately short: the default ``repro verify``
    suite explores several *directed* worlds built from this config
    (each restricting faults to one plane) and every one of them must
    finish exhaustively.  Longer scripts remain available for deeper
    offline runs.

    ``retransmit_budget >= drop_budget`` is required in resilient mode:
    each lost message costs at most one re-drive to recover, so under
    that inequality an unresolved terminal state is a genuine protocol
    failure rather than an artefact of the bounded adversary.
    """

    nimp: int = 2
    nexp: int = 2
    requests: tuple[float, ...] = (4.0,)
    exports: tuple[float, ...] = (1.5, 3.5)
    policy: str = "REGL 0.5"
    buddy_help: bool = True
    mode: str = "resilient"  # "resilient" | "strict"
    drop_budget: int = 1
    dup_budget: int = 1
    crash_budget: int = 1
    retransmit_budget: int = 2
    #: Which control-plane links drop/dup may target, in the
    #: :data:`repro.faults.plan.FRAMEWORK_PLANES` vocabulary.  The
    #: verify suite explores one directed world per plane so each world
    #: stays exhaustible.
    fault_planes: tuple[str, ...] = ("ctl", "cpl", "rep")
    mutate: str | None = None
    region: str = "d"
    #: Which match engine the wrapped exporter processes run; the model
    #: checker thereby explores every interleaving under either backend
    #: (their decisions are bit-identical, so the reachable state space
    #: must be too).
    match_backend: str = "legacy"

    def __post_init__(self) -> None:
        require(self.nimp >= 1 and self.nexp >= 1, "need at least one rank per side")
        require(self.mode in ("strict", "resilient"), f"unknown mode {self.mode!r}")
        require(
            self.match_backend in MATCH_BACKENDS,
            f"unknown match backend {self.match_backend!r}; "
            f"expected one of {MATCH_BACKENDS}",
        )
        for plane in self.fault_planes:
            require(
                plane in FRAMEWORK_PLANES,
                f"unknown fault plane {plane!r}; expected one of "
                f"{sorted(FRAMEWORK_PLANES)}",
            )
        require(
            self.mutate is None or self.mutate in MUTATIONS,
            f"unknown mutation {self.mutate!r}; expected one of {MUTATIONS}",
        )
        for name in ("drop_budget", "dup_budget", "crash_budget", "retransmit_budget"):
            require(getattr(self, name) >= 0, f"{name} must be >= 0")
        require(
            list(self.requests) == sorted(set(self.requests)),
            "request script must be strictly increasing",
        )
        require(
            list(self.exports) == sorted(set(self.exports)),
            "export script must be strictly increasing",
        )
        if self.mode == "strict":
            require(
                self.drop_budget == 0 and self.retransmit_budget == 0,
                "strict mode has no retransmission: drop/retransmit budgets must be 0",
            )
        else:
            require(
                self.retransmit_budget >= self.drop_budget,
                "resilient mode needs retransmit_budget >= drop_budget "
                "(one re-drive recovers one loss)",
            )

    @property
    def strict_order(self) -> bool:
        """Whether the wrapped state machines run in strict mode."""
        return self.mode == "strict"

    def connection_spec(self) -> ConnectionSpec:
        """The single connection of the model world."""
        return ConnectionSpec(
            exporter=Endpoint("E", self.region),
            importer=Endpoint("I", self.region),
            policy=parse_policy(self.policy),
        )

    def describe(self) -> dict[str, Any]:
        """JSON-ready summary (stamped into reports and schedules)."""
        return {
            "nimp": self.nimp,
            "nexp": self.nexp,
            "requests": list(self.requests),
            "exports": list(self.exports),
            "policy": self.policy,
            "buddy_help": self.buddy_help,
            "mode": self.mode,
            "drop_budget": self.drop_budget,
            "dup_budget": self.dup_budget,
            "crash_budget": self.crash_budget,
            "retransmit_budget": self.retransmit_budget,
            "fault_planes": list(self.fault_planes),
            "mutate": self.mutate,
            "match_backend": self.match_backend,
        }


def mutation_config(name: str) -> ModelConfig:
    """The directed world in which mutation *name*'s bug is observable.

    * ``no_dedup`` — strict mode plus one wire duplicate: the copy
      re-enters the strictly-ordered collective and the real code must
      reject it (**M203**).
    * ``no_answer_cache`` — resilient mode plus one drop: recovery from
      the loss re-drives the request, and the rep must serve the
      finalized duplicate from its answer cache; without the cache the
      re-drives go unanswered until the budget burns out (**M202**).

    Both worlds direct their fault at the ``rep`` plane (the rep<->rep
    link): that is where duplicated requests meet the collective and
    where a lost aggregate answer forces the cache onto the recovery
    path, so it is the cheapest world in which each bug is observable
    (a drop on the other planes recovers without consulting the cache
    at all).
    """
    require(
        name in MUTATIONS,
        f"unknown mutation {name!r}; expected one of {MUTATIONS}",
    )
    if name == "no_dedup":
        return ModelConfig(
            mode="strict",
            drop_budget=0,
            dup_budget=1,
            crash_budget=0,
            retransmit_budget=0,
            fault_planes=("rep",),
            mutate=name,
        )
    return ModelConfig(
        mode="resilient",
        drop_budget=1,
        dup_budget=0,
        crash_budget=0,
        retransmit_budget=2,
        fault_planes=("rep",),
        mutate=name,
    )


# ---------------------------------------------------------------------------
# working (decoded) state
# ---------------------------------------------------------------------------

@dataclass
class _ImpRank:
    next_req: int = 0
    outstanding: float | None = None
    retr_left: int = 0
    resolved: dict[float, tuple[str, float | None]] = field(default_factory=dict)
    seen: set[tuple[str, int]] = field(default_factory=set)


@dataclass
class _ExpRank:
    region: RegionExportState
    pos: int = 0
    closed: bool = False
    crashed: bool = False
    seen: set[tuple[str, int]] = field(default_factory=set)


class _Working:
    """A fully materialized model state (mutable; one per transition)."""

    __slots__ = (
        "imp", "exp", "irep", "erep", "irep_seen", "erep_seen",
        "chans", "drop_left", "dup_left", "crash_left", "trace",
    )

    def __init__(self) -> None:
        self.imp: list[_ImpRank] = []
        self.exp: list[_ExpRank] = []
        self.irep: ImporterRep
        self.erep: ExporterRep
        self.irep_seen: set[tuple[str, int]] = set()
        self.erep_seen: set[tuple[str, int]] = set()
        self.chans: dict[tuple[str, str], list[tuple[Any, ...]]] = {}
        self.drop_left = 0
        self.dup_left = 0
        self.crash_left = 0
        #: Replay-only span bookkeeping (never part of the encoded state).
        self.trace: dict[str, Any] = {}


#: Fast enum lookup (bypasses the EnumMeta call in hot paths).
_KIND = {k.value: k for k in MatchKind}

#: Decode caches: answers and responses are frozen dataclasses, so one
#: instance per distinct value can be shared across all model states.
_ANSWER_CACHE: dict[tuple[float, str, float | None], FinalAnswer] = {}
_RESPONSE_CACHE: dict[
    tuple[float, str, float | None, float], MatchResponse
] = {}


def _enc_answer(a: FinalAnswer | None) -> tuple[str, float | None] | None:
    return None if a is None else (a.kind.value, a.matched_ts)


def _dec_answer(enc: tuple[str, float | None] | None, ts: float) -> FinalAnswer | None:
    if enc is None:
        return None
    key = (ts, enc[0], enc[1])
    a = _ANSWER_CACHE.get(key)
    if a is None:
        a = FinalAnswer(request_ts=ts, kind=_KIND[enc[0]], matched_ts=enc[1])
        _ANSWER_CACHE[key] = a
    return a


def _dec_response(
    ts: float, kind: str, matched: float | None, latest: float
) -> MatchResponse:
    key = (ts, kind, matched, latest)
    r = _RESPONSE_CACHE.get(key)
    if r is None:
        r = MatchResponse(
            request_ts=ts,
            kind=_KIND[kind],
            matched_ts=matched,
            latest_export_ts=latest,
        )
        _RESPONSE_CACHE[key] = r
    return r


def _clone_dictobj(obj: Any) -> Any:
    """Shallow-copy an ordinary object (``__dict__``-based, no ``__init__``)."""
    new = object.__new__(type(obj))
    new.__dict__.update(obj.__dict__)
    return new


def _clone_exp_state(st: _ExpRequestState) -> _ExpRequestState:
    new = _ExpRequestState(request_ts=st.request_ts)
    new.responses = dict(st.responses)
    new.definitive_ranks = set(st.definitive_ranks)
    new.finalized = st.finalized
    new.finalized_case = st.finalized_case
    new.finalizing_rank = st.finalizing_rank
    return new


def _clone_conn(conn: Any, hist: Any) -> Any:
    new = _clone_dictobj(conn)
    eng = _clone_dictobj(conn.engine)
    eng.history = hist
    new.engine = eng
    new.open_requests = {
        ts: OpenRequest(r.ts, r.window, r.candidate_ts)
        for ts, r in conn.open_requests.items()
    }
    new.answers = dict(conn.answers)
    new.must_send = set(conn.must_send)
    new._buddy_raises = list(conn._buddy_raises)
    return new


def _clone_region(region: RegionExportState) -> RegionExportState:
    new = _clone_dictobj(region)
    hist = _clone_dictobj(region.history)
    hist._buf = region.history._buf.copy()
    new.history = hist
    buf = _clone_dictobj(region.buffer)
    buf._entries = {
        ts: BufferEntry(e.ts, e.nbytes, e.memcpy_cost, e.window, e.sent, e.payload)
        for ts, e in region.buffer._entries.items()
    }
    buf._sent_ts = set(region.buffer._sent_ts)
    buf.t_by_window = dict(region.buffer.t_by_window)
    new.buffer = buf
    new.connections = {
        cid: _clone_conn(conn, hist) for cid, conn in region.connections.items()
    }
    return new


def clone_working(w: _Working) -> _Working:
    """Deep-copy a working state along its mutable spine only.

    The DFS expands each state once per enabled action; re-decoding the
    canonical tuple per transition dominated exploration time, so the
    checker clones instead.  Immutable leaves (frozen answers/responses,
    specs, policies) are shared between parent and child — only the
    containers and the handful of mutable protocol objects are copied.
    """
    c = _Working()
    c.imp = [
        _ImpRank(i.next_req, i.outstanding, i.retr_left, dict(i.resolved), set(i.seen))
        for i in w.imp
    ]
    irep = _clone_dictobj(w.irep)
    irep._requests = {
        cid: {
            ts: _ImpRequestState(ts, set(st.waiting), set(st.asked), st.answer)
            for ts, st in states.items()
        }
        for cid, states in w.irep._requests.items()
    }
    c.irep = irep
    erep = _clone_dictobj(w.erep)
    erep._requests = {
        cid: {ts: _clone_exp_state(st) for ts, st in states.items()}
        for cid, states in w.erep._requests.items()
    }
    erep._last_request_ts = dict(w.erep._last_request_ts)
    erep.aggregate_cases = dict(w.erep.aggregate_cases)
    c.erep = erep
    c.irep_seen = set(w.irep_seen)
    c.erep_seen = set(w.erep_seen)
    c.exp = [
        _ExpRank(
            region=_clone_region(e.region),
            pos=e.pos,
            closed=e.closed,
            crashed=e.crashed,
            seen=set(e.seen),
        )
        for e in w.exp
    ]
    c.chans = {k: list(v) for k, v in w.chans.items()}
    c.drop_left = w.drop_left
    c.dup_left = w.dup_left
    c.crash_left = w.crash_left
    return c


class ModelMachine:
    """Transition function + canonical encoding for one :class:`ModelConfig`."""

    def __init__(self, config: ModelConfig) -> None:
        self.config = config
        self.spec = config.connection_spec()
        self.cid = self.spec.connection_id
        self._imp_ids = tuple(f"I{r}" for r in range(config.nimp))
        self._exp_ids = tuple(f"E{r}" for r in range(config.nexp))

    # -- construction -------------------------------------------------------
    def _new_exporter_rep(self) -> ExporterRep:
        cls = (
            NoAnswerCacheExporterRep
            if self.config.mutate == "no_answer_cache"
            else ExporterRep
        )
        return cls(
            "E",
            self.config.nexp,
            [self.cid],
            buddy_help=self.config.buddy_help,
            strict_order=self.config.strict_order,
        )

    def _new_region(self) -> RegionExportState:
        return RegionExportState(
            self.config.region,
            [self.spec],
            strict_order=self.config.strict_order,
            match_backend=self.config.match_backend,
        )

    def initial(self) -> tuple[Any, ...]:
        """The canonical initial state."""
        return self.encode(self.initial_working())

    def initial_working(self) -> _Working:
        """A fresh, fully materialized initial state."""
        cfg = self.config
        w = _Working()
        w.imp = [
            _ImpRank(retr_left=cfg.retransmit_budget) for _ in range(cfg.nimp)
        ]
        w.exp = [_ExpRank(region=self._new_region()) for _ in range(cfg.nexp)]
        w.irep = ImporterRep("I", cfg.nimp, [self.cid])
        w.erep = self._new_exporter_rep()
        w.drop_left = cfg.drop_budget
        w.dup_left = cfg.dup_budget
        w.crash_left = cfg.crash_budget
        return w

    # -- canonical encoding -------------------------------------------------
    def encode(self, w: _Working) -> tuple[Any, ...]:
        """Canonical nested-tuple form of *w* (behavioural fields only)."""
        imp = tuple(
            (
                i.next_req,
                i.outstanding,
                i.retr_left,
                tuple(sorted(i.resolved.items())),
            )
            for i in w.imp
        )
        irep = tuple(
            (
                cid,
                tuple(
                    (
                        ts,
                        tuple(sorted(st.waiting)),
                        tuple(sorted(st.asked)),
                        _enc_answer(st.answer),
                    )
                    for ts, st in sorted(states.items())
                ),
            )
            for cid, states in sorted(w.irep._requests.items())
        )
        erep = tuple(
            (
                cid,
                w.erep._last_request_ts[cid],
                tuple(
                    (
                        ts,
                        tuple(
                            (rank, r.kind.value, r.matched_ts, r.latest_export_ts)
                            for rank, r in sorted(st.responses.items())
                        ),
                        tuple(sorted(st.definitive_ranks)),
                        _enc_answer(st.finalized),
                        st.finalized_case,
                        st.finalizing_rank,
                    )
                    for ts, st in sorted(states.items())
                ),
            )
            for cid, states in sorted(w.erep._requests.items())
        )
        exp = []
        for e in w.exp:
            region = e.region
            conns = []
            for cid, conn in sorted(region.connections.items()):
                conns.append(
                    (
                        cid,
                        conn.engine.last_request_ts,
                        tuple(
                            (ts, r.window, r.candidate_ts)
                            for ts, r in sorted(conn.open_requests.items())
                        ),
                        tuple(
                            (ts, _enc_answer(a))
                            for ts, a in sorted(conn.answers.items())
                        ),
                        conn.skip_threshold,
                        conn.local_skip_threshold,
                        tuple(sorted(conn.must_send)),
                        conn.window_count,
                        tuple(conn._buddy_raises),
                    )
                )
            buf = tuple(
                (ts, entry.window, entry.sent)
                for ts, entry in sorted(region.buffer._entries.items())
            )
            exp.append(
                (
                    e.pos,
                    e.closed,
                    e.crashed,
                    tuple(conns),
                    buf,
                )
            )
        chans = tuple(
            (key, tuple(msgs))
            for key, msgs in sorted(w.chans.items())
            if msgs
        )
        # Prune dedup memory to seqs still in transit toward each
        # receiver: a remembered seq with no live copy can never be
        # consulted again, so keeping it would only split states.
        in_flight: dict[str, set[tuple[str, int]]] = {}
        for (_src, dst), msgs in w.chans.items():
            if msgs:
                in_flight.setdefault(dst, set()).update(m[-2] for m in msgs)
        def _pruned(dst: str, seen: set[tuple[str, int]]) -> tuple[Any, ...]:
            live = in_flight.get(dst)
            if not live:
                return ()
            return tuple(sorted(seen & live))
        imp_pruned = tuple(
            enc + (_pruned(f"I{r}", w.imp[r].seen),)
            for r, enc in enumerate(imp)
        )
        exp_pruned = tuple(
            enc + (_pruned(f"E{r}", w.exp[r].seen),)
            for r, enc in enumerate(exp)
        )
        return (
            imp_pruned,
            irep,
            _pruned("IR", w.irep_seen),
            erep,
            _pruned("ER", w.erep_seen),
            exp_pruned,
            chans,
            (w.drop_left, w.dup_left, w.crash_left),
        )

    def decode(self, canon: tuple[Any, ...]) -> _Working:
        """Materialize real protocol objects from a canonical state."""
        cfg = self.config
        imp_c, irep_c, irep_seen, erep_c, erep_seen, exp_c, chans, budgets = canon
        w = _Working()
        for next_req, outstanding, retr_left, resolved, seen in imp_c:
            w.imp.append(
                _ImpRank(
                    next_req=next_req,
                    outstanding=outstanding,
                    retr_left=retr_left,
                    resolved=dict(resolved),
                    seen=set(seen),
                )
            )
        w.irep = ImporterRep("I", cfg.nimp, [self.cid])
        for cid, states in irep_c:
            store = w.irep._requests[cid]
            for ts, waiting, asked, answer in states:
                store[ts] = _ImpRequestState(
                    request_ts=ts,
                    waiting=set(waiting),
                    asked=set(asked),
                    answer=_dec_answer(answer, ts),
                )
        w.irep_seen = set(irep_seen)
        w.erep = self._new_exporter_rep()
        for cid, last_ts, states in erep_c:
            w.erep._last_request_ts[cid] = last_ts
            store2 = w.erep._requests[cid]
            for ts, responses, definitive, finalized, case, fin_rank in states:
                st = _ExpRequestState(request_ts=ts)
                for rank, kind, matched, latest in responses:
                    st.responses[rank] = _dec_response(ts, kind, matched, latest)
                st.definitive_ranks = set(definitive)
                st.finalized = _dec_answer(finalized, ts)
                st.finalized_case = case
                st.finalizing_rank = fin_rank
                store2[ts] = st
        w.erep_seen = set(erep_seen)
        for pos, closed, crashed, conns, buf, seen in exp_c:  # seen appended last

            region = self._new_region()
            hist = [self.config.exports[i] for i in range(pos)]
            region.history.replace(hist, closed=closed)
            for (
                cid, last_req, open_reqs, answers, skip, local_skip,
                must_send, window_count, buddy_raises,
            ) in conns:
                conn = region.connections[cid]
                conn.engine._last_request_ts = last_req
                conn.open_requests = {
                    ts: OpenRequest(ts=ts, window=wnd, candidate_ts=cand)
                    for ts, wnd, cand in open_reqs
                }
                conn.answers = {
                    ts: a
                    for ts, enc in answers
                    if (a := _dec_answer(enc, ts)) is not None
                }
                conn.skip_threshold = skip
                conn.local_skip_threshold = local_skip
                conn.must_send = set(must_send)
                conn.window_count = window_count
                conn._buddy_raises = [tuple(b) for b in buddy_raises]
            for ts, window, sent in buf:
                entry = region.buffer.buffer(ts, nbytes=8, memcpy_cost=1.0, window=window)
                if sent:
                    entry.sent = True
                    region.buffer._sent_ts.add(ts)
            w.exp.append(
                _ExpRank(
                    region=region, pos=pos, closed=closed,
                    crashed=crashed, seen=set(seen),
                )
            )
        w.chans = {tuple(k): list(msgs) for k, msgs in chans}
        w.drop_left, w.dup_left, w.crash_left = budgets
        return w

    # -- actions ------------------------------------------------------------
    def enabled_actions(self, w: _Working) -> list[tuple[Any, ...]]:
        """Every action enabled in *w*, in a fixed deterministic order.

        Retransmission is *quiescence-gated*, the standard timeout
        abstraction: the real runtime retransmits on a timeout, and a
        timeout only matters once the system has gone quiet (every
        in-flight message that could still resolve the import has been
        delivered).  Modelling "retransmit at any moment, from a finite
        budget" instead would let the explorer waste the whole budget
        *before* a loss and then report a phantom livelock the real
        unbounded-timeout runtime cannot exhibit.
        """
        cfg = self.config
        actions: list[tuple[Any, ...]] = []
        crashed = {self._exp_ids[r] for r, e in enumerate(w.exp) if e.crashed}
        live_chans = [
            key for key, msgs in sorted(w.chans.items())
            if msgs and key[1] not in crashed
        ]
        for src, dst in live_chans:
            actions.append(("deliver", src, dst))
        for r, i in enumerate(w.imp):
            if i.outstanding is None and i.next_req < len(cfg.requests):
                actions.append(("issue", r))
        for r, e in enumerate(w.exp):
            if e.crashed:
                continue
            if e.pos < len(cfg.exports):
                actions.append(("export", r))
            elif not e.closed:
                actions.append(("close", r))
        if not actions and cfg.mode == "resilient":
            for r, i in enumerate(w.imp):
                if i.outstanding is not None and i.retr_left > 0:
                    actions.append(("retransmit", r))
        fault_chans = [
            ch for ch in live_chans
            if plane_of_channel(*ch) in cfg.fault_planes
        ]
        if w.drop_left > 0:
            for src, dst in fault_chans:
                actions.append(("drop", src, dst))
        if w.dup_left > 0:
            for src, dst in fault_chans:
                actions.append(("dup", src, dst))
        if w.crash_left > 0 and len(crashed) < cfg.nexp - 1:
            for r, e in enumerate(w.exp):
                if not e.crashed:
                    actions.append(("crash", r))
        return actions

    def footprint(self, action: tuple[Any, ...]) -> frozenset[Any]:
        """Dependency footprint for the sleep-set independence relation.

        Two actions are independent iff their footprints are disjoint.
        Tokens: ``("c", comp)`` — mutates a component's state;
        ``("h", src, dst)`` — consumes the head of a FIFO;
        ``("t", src, dst)`` — affects what the next *send* on that FIFO
        is stamped with: pushes, drops and deliveries all change the
        in-flight-or-remembered seq set the memoryless stamper
        consults (a delivered seq is pruned from dedup memory the
        moment its last wire copy is gone); ``"F"`` — spends shared
        fault budget; ``"Q"`` — quiescence-gated (one retransmit
        un-quiesces the state and disables the others, so retransmits
        never commute).
        """
        kind = action[0]
        if kind == "deliver":
            src, dst = action[1], action[2]
            toks: set[Any] = {("h", src, dst), ("c", dst), ("t", src, dst)}
            # Processing a delivery can send on the component's
            # outgoing links.
            toks.update(("t", dst, out) for out in self._out_links(dst))
            return frozenset(toks)
        if kind == "drop":
            return frozenset(
                {("h", action[1], action[2]), ("t", action[1], action[2]), "F"}
            )
        if kind == "dup":
            return frozenset({("h", action[1], action[2]), "F"})
        if kind == "issue":
            return frozenset({("c", f"I{action[1]}"), ("t", f"I{action[1]}", "IR")})
        if kind == "retransmit":
            return frozenset(
                {("c", f"I{action[1]}"), ("t", f"I{action[1]}", "IR"), "Q"}
            )
        if kind in ("export", "close"):
            return frozenset({("c", f"E{action[1]}"), ("t", f"E{action[1]}", "ER")})
        if kind == "crash":
            return frozenset({("c", f"E{action[1]}"), "F"})
        raise ValueError(f"unknown action {action!r}")

    def _out_links(self, comp: str) -> tuple[str, ...]:
        """Components *comp* may send to while processing a delivery."""
        if comp == "IR":
            return ("ER",) + self._imp_ids
        if comp == "ER":
            return ("IR",) + self._exp_ids
        if comp.startswith("E"):
            return ("ER",)
        return ()  # importer ranks never send from a delivery

    # -- transition ---------------------------------------------------------
    def apply(
        self,
        w: _Working,
        action: tuple[Any, ...],
        recorder: Any = None,
        now: float = 0.0,
    ) -> None:
        """Execute *action* on *w* in place.

        Raises one of :data:`VIOLATION_ERRORS` when the real protocol
        code rejects the transition — the checker maps that to M203.
        With *recorder* (a :class:`repro.obs.trace.CausalLog`), every
        protocol event is recorded as a causal span at time *now*
        (counterexample replay; exploration passes ``recorder=None``).
        """
        kind = action[0]
        if kind == "issue":
            self._do_issue(w, action[1], recorder, now)
        elif kind == "retransmit":
            self._do_retransmit(w, action[1], recorder, now)
        elif kind == "export":
            self._do_export(w, action[1], recorder, now)
        elif kind == "close":
            self._do_close(w, action[1], recorder, now)
        elif kind == "crash":
            w.exp[action[1]].crashed = True
            w.crash_left -= 1
        elif kind == "drop":
            w.chans[(action[1], action[2])].pop(0)
            w.drop_left -= 1
            self._prune_seen(w, action[2])
        elif kind == "dup":
            chan = w.chans[(action[1], action[2])]
            chan.insert(1, chan[0])  # wire-level copy: same sequence number
            w.dup_left -= 1
        elif kind == "deliver":
            self._do_deliver(w, action[1], action[2], recorder, now)
        else:
            raise ValueError(f"unknown action {action!r}")

    # -- sends ----------------------------------------------------------------
    def _send(
        self, w: _Working, src: str, dst: str, msg: tuple[Any, ...], ctx: Any = None
    ) -> None:
        # Memoryless stamping: smallest k whose (src, k) neither rides a
        # copy still in flight to dst nor sits in dst's dedup memory.
        taken = {s for s in self._seen_of(w, dst) if s[0] == src}
        taken.update(
            m[-2] for m in w.chans.get((src, dst), ()) if m[-2][0] == src
        )
        k = 0
        while (src, k) in taken:
            k += 1
        w.chans.setdefault((src, dst), []).append(msg + ((src, k), ctx))

    # -- local steps -----------------------------------------------------------
    def _do_issue(self, w: _Working, r: int, rec: Any, now: float) -> None:
        i = w.imp[r]
        ts = self.config.requests[i.next_req]
        i.next_req += 1
        i.outstanding = ts
        ctx = None
        if rec is not None:
            trace = rec.trace_for(self.cid, ts)
            ctx = rec.record(
                trace, "request", f"I.p{r}", now,
                connection=self.cid, request=ts,
            )
            w.trace.setdefault("req_span", {})[(r, ts)] = ctx.span_id
        self._send(w, f"I{r}", "IR", ("req", ts, r), ctx)

    def _do_retransmit(self, w: _Working, r: int, rec: Any, now: float) -> None:
        i = w.imp[r]
        ts = i.outstanding
        assert ts is not None
        i.retr_left -= 1
        ctx = None
        if rec is not None:
            trace = rec.trace_for(self.cid, ts)
            orig = w.trace.get("req_span", {}).get((r, ts))
            ctx = rec.record(
                trace, "retransmit", f"I.p{r}", now,
                parents=() if orig is None else (orig,),
                connection=self.cid, request=ts,
            )
        self._send(w, f"I{r}", "IR", ("req", ts, r), ctx)

    def _mark_sent(self, region: RegionExportState, ts: float) -> None:
        if region.buffer.has(ts) and not region.buffer.get(ts).sent:
            region.buffer.mark_sent(ts)

    def _do_export(self, w: _Working, r: int, rec: Any, now: float) -> None:
        e = w.exp[r]
        ts = self.config.exports[e.pos]
        e.pos += 1
        outcome = e.region.on_export(ts, nbytes=8, memcpy_cost=1.0)
        if outcome.send_connections:
            self._mark_sent(e.region, ts)
        for _cid, m in outcome.post_sends:
            self._mark_sent(e.region, m)
        if rec is not None and outcome.buddy_skip:
            enabler = outcome.buddy_enabler
            req = 0.0 if enabler is None else enabler[1]
            rec.record(
                rec.trace_for(self.cid, req), "buddy_skip", f"E.p{r}", now,
                connection=self.cid, request=req, export_ts=ts, lead=0.0,
            )
        for cid, resp in outcome.new_responses:
            self._send_response(w, r, cid, resp, rec, now, parent=None)
        e.region.collect_evictions()

    def _do_close(self, w: _Working, r: int, rec: Any, now: float) -> None:
        e = w.exp[r]
        e.closed = True
        responses, post_sends = e.region.close()
        for _cid, m in post_sends:
            self._mark_sent(e.region, m)
        for cid, resp in responses:
            self._send_response(w, r, cid, resp, rec, now, parent=None)
        e.region.collect_evictions()

    def _send_response(
        self,
        w: _Working,
        r: int,
        cid: str,
        resp: MatchResponse,
        rec: Any,
        now: float,
        parent: int | None,
    ) -> None:
        ctx = None
        if rec is not None:
            ctx = rec.record(
                rec.trace_for(cid, resp.request_ts), "match", f"E.p{r}", now,
                parents=() if parent is None else (parent,),
                kind=resp.kind.value, matched=resp.matched_ts,
            )
        self._send(
            w, f"E{r}", "ER",
            ("resp", resp.request_ts, r, resp.kind.value,
             resp.matched_ts, resp.latest_export_ts),
            ctx,
        )

    # -- delivery --------------------------------------------------------------
    def _do_deliver(
        self, w: _Working, src: str, dst: str, rec: Any, now: float
    ) -> None:
        msg = w.chans[(src, dst)].pop(0)
        seq, ctx = msg[-2], msg[-1]
        body = msg[:-2]
        seen = self._seen_of(w, dst)
        if self.config.mutate != "no_dedup":
            if seq in seen:
                self._prune_seen(w, dst)
                return  # wire-level duplicate: the dedup layer discards it
            seen.add(seq)
        self._prune_seen(w, dst)
        if dst == "IR":
            self._deliver_irep(w, body, rec, now, ctx)
        elif dst == "ER":
            self._deliver_erep(w, body, rec, now, ctx)
        elif dst.startswith("I"):
            self._deliver_imp(w, int(dst[1:]), body, rec, now, ctx)
        else:
            self._deliver_exp(w, int(dst[1:]), body, rec, now, ctx)

    def _prune_seen(self, w: _Working, dst: str) -> None:
        """Drop dedup memory for seqs with no wire copy left toward *dst*.

        This keeps the working state identical to its canonical form at
        all times: a remembered seq whose last copy is gone can never be
        dedup-checked again, but the memoryless stamper *would* consult
        it and pick a higher ``k`` — states that differ only in that
        numbering history would then fail to merge.  Pruning eagerly
        (not just at encode time) makes stamping a function of the
        canonical state, so cloned and decoded states behave alike.
        """
        seen = self._seen_of(w, dst)
        if not seen:
            return
        live: set[tuple[str, int]] = set()
        for (_src, d), msgs in w.chans.items():
            if d == dst and msgs:
                live.update(m[-2] for m in msgs)
        seen &= live

    def _seen_of(self, w: _Working, dst: str) -> set[tuple[str, int]]:
        if dst == "IR":
            return w.irep_seen
        if dst == "ER":
            return w.erep_seen
        if dst.startswith("I"):
            return w.imp[int(dst[1:])].seen
        return w.exp[int(dst[1:])].seen

    def _deliver_irep(
        self, w: _Working, body: tuple[Any, ...], rec: Any, now: float, ctx: Any
    ) -> None:
        parent = () if ctx is None else (ctx.span_id,)
        if body[0] == "req":
            _, ts, rank = body
            directives = w.irep.on_process_request(self.cid, ts, rank)
        else:  # a2i
            _, ts, kind, matched = body
            answer = FinalAnswer(
                request_ts=ts, kind=MatchKind(kind), matched_ts=matched
            )
            directives = w.irep.on_answer(self.cid, answer)
            if rec is not None:
                w.trace.setdefault("answer_span", {})[ts] = (
                    None if ctx is None else ctx.span_id
                )
        for d in directives:
            if isinstance(d, ForwardToExporter):
                fctx = None
                if rec is not None:
                    fctx = rec.record(
                        rec.trace_for(self.cid, d.request_ts),
                        "rep_forward", "I.rep", now, parents=parent,
                    )
                self._send(w, "IR", "ER", ("r2e", d.request_ts), fctx)
            elif isinstance(d, DeliverAnswer):
                actx = None
                if rec is not None:
                    parents = list(parent)
                    stored = w.trace.get("answer_span", {}).get(d.answer.request_ts)
                    if stored is not None and stored not in parents:
                        parents.append(stored)
                    actx = rec.record(
                        rec.trace_for(self.cid, d.answer.request_ts),
                        "answer", "I.rep", now, parents=parents,
                    )
                self._send(
                    w, "IR", f"I{d.rank}",
                    ("ans", d.answer.request_ts, d.answer.kind.value,
                     d.answer.matched_ts, d.rank),
                    actx,
                )
            else:  # pragma: no cover - the importer rep has no other directives
                raise ProtocolError(f"unexpected importer-rep directive {d!r}")

    def _deliver_erep(
        self, w: _Working, body: tuple[Any, ...], rec: Any, now: float, ctx: Any
    ) -> None:
        parent = () if ctx is None else (ctx.span_id,)
        if body[0] == "r2e":
            _, ts = body
            directives = w.erep.on_request(self.cid, ts)
        else:  # resp
            _, ts, rank, kind, matched, latest = body
            resp = MatchResponse(
                request_ts=ts, kind=MatchKind(kind),
                matched_ts=matched, latest_export_ts=latest,
            )
            directives = w.erep.on_response(self.cid, rank, resp)
        agg_span: int | None = None
        if rec is not None:
            for d in directives:
                if isinstance(d, AnswerImporter):
                    info = w.erep.finalize_info(self.cid, d.answer.request_ts)
                    aggctx = rec.record(
                        rec.trace_for(self.cid, d.answer.request_ts),
                        "aggregate", "E.rep", now, parents=parent,
                        case=None if info is None else info[0],
                        finalizing_rank=None if info is None else info[1],
                    )
                    agg_span = aggctx.span_id
        for d in directives:
            if isinstance(d, ForwardRequest):
                fctx = None
                if rec is not None:
                    fctx = rec.record(
                        rec.trace_for(self.cid, d.request_ts),
                        "fan_out", "E.rep", now, parents=parent, rank=d.rank,
                    )
                self._send(w, "ER", f"E{d.rank}", ("fwd", d.request_ts, d.rank), fctx)
            elif isinstance(d, AnswerImporter):
                actx = None
                if rec is not None and agg_span is not None:
                    actx = TraceContext(
                        trace_id=rec.trace_for(self.cid, d.answer.request_ts),
                        span_id=agg_span,
                    )
                self._send(
                    w, "ER", "IR",
                    ("a2i", d.answer.request_ts, d.answer.kind.value,
                     d.answer.matched_ts),
                    actx,
                )
            elif isinstance(d, BuddyHelp):
                bctx = None
                if rec is not None:
                    bctx = rec.record(
                        rec.trace_for(self.cid, d.answer.request_ts),
                        "buddy_notify", "E.rep", now,
                        parents=() if agg_span is None else (agg_span,),
                        rank=d.rank,
                    )
                self._send(
                    w, "ER", f"E{d.rank}",
                    ("buddy", d.answer.request_ts, d.answer.kind.value,
                     d.answer.matched_ts, d.rank),
                    bctx,
                )
            else:  # pragma: no cover - the exporter rep has no other directives
                raise ProtocolError(f"unexpected exporter-rep directive {d!r}")

    def _deliver_imp(
        self, w: _Working, r: int, body: tuple[Any, ...], rec: Any, now: float, ctx: Any
    ) -> None:
        _, ts, kind, matched, _rank = body
        i = w.imp[r]
        known = i.resolved.get(ts)
        if known is not None:
            if known != (kind, matched):
                raise ProtocolError(
                    f"I.p{r}: conflicting answers for request @{ts}: "
                    f"{known} then {(kind, matched)}"
                )
            return
        i.resolved[ts] = (kind, matched)
        if i.outstanding == ts:
            i.outstanding = None
        if rec is not None:
            rec.record(
                rec.trace_for(self.cid, ts), "answered", f"I.p{r}", now,
                parents=() if ctx is None else (ctx.span_id,),
                kind=kind, importer=f"I.p{r}",
            )

    def _deliver_exp(
        self, w: _Working, r: int, body: tuple[Any, ...], rec: Any, now: float, ctx: Any
    ) -> None:
        e = w.exp[r]
        region = e.region
        if body[0] == "fwd":
            _, ts, _rank = body
            outcome = region.on_request(self.cid, ts)
            if outcome.applied is not None and outcome.applied.send_now is not None:
                self._mark_sent(region, outcome.applied.send_now)
            self._send_response(
                w, r, self.cid, outcome.response, rec, now,
                parent=None if ctx is None else ctx.span_id,
            )
        else:  # buddy
            _, ts, kind, matched, _rank = body
            answer = FinalAnswer(
                request_ts=ts, kind=MatchKind(kind), matched_ts=matched
            )
            applied = region.on_buddy_answer(self.cid, answer)
            if applied.send_now is not None:
                self._mark_sent(region, applied.send_now)
            if rec is not None:
                rec.record(
                    rec.trace_for(self.cid, ts), "buddy_recv", f"E.p{r}", now,
                    parents=() if ctx is None else (ctx.span_id,),
                )
        region.collect_evictions()

    # -- invariants -----------------------------------------------------------
    def check_occupancy(self, w: _Working) -> str | None:
        """M204: buffer occupancy must respect the Eq. 1-2 window bound.

        Two checks per live exporter rank:

        * the *eviction line*: no live, unsent entry may sit strictly
          below the connection-agreed eviction threshold unless some
          connection's keep-set protects it (a candidate or an unsent
          match) — everything below the line is outside every live
          acceptable window and must have been freed;
        * the *numeric bound* derived from the scripts: occupancy never
          exceeds the number of scripted exports at or above the
          eviction line plus the protected set.
        """
        for r, e in enumerate(w.exp):
            if e.crashed:
                continue
            region = e.region
            threshold = region.evict_threshold()
            keep: set[float] = set()
            for conn in region.connections.values():
                keep |= conn.keep_set()
            for ts, entry in region.buffer._entries.items():
                if ts < threshold and not entry.sent and ts not in keep:
                    return (
                        f"E.p{r}: buffered object @{ts:g} lies below the "
                        f"eviction line {threshold:g} outside every keep-set "
                        "— occupancy exceeds the Eq. 1-2 window bound"
                    )
            if threshold != -math.inf:
                bound = sum(
                    1 for ts in self.config.exports if ts >= threshold
                ) + len(keep)
                if region.buffer.live_count > bound:
                    return (
                        f"E.p{r}: {region.buffer.live_count} live objects "
                        f"exceed the window bound {bound} "
                        f"(eviction line {threshold:g})"
                    )
        return None

    def unresolved(self, w: _Working) -> list[tuple[int, float]]:
        """Importer ranks still blocked on a request: ``(rank, ts)``."""
        return [
            (r, i.outstanding)
            for r, i in enumerate(w.imp)
            if i.outstanding is not None
        ]

    def faults_used(self, w: _Working) -> dict[str, int]:
        """Fault/retransmit counts consumed so far (from the budgets)."""
        cfg = self.config
        return {
            "drop": cfg.drop_budget - w.drop_left,
            "dup": cfg.dup_budget - w.dup_left,
            "crash": cfg.crash_budget - w.crash_left,
            "retransmit": sum(
                cfg.retransmit_budget - i.retr_left for i in w.imp
            ),
        }

    def classify_terminal(self, w: _Working) -> tuple[str, str] | None:
        """Rule + message for a terminal state, or ``None`` when clean.

        A terminal state (no enabled action) is clean iff every issued
        import resolved.  Otherwise:

        * **M201** — no fault and no retransmission happened: a pure
          message-interleaving deadlock;
        * **M202** — retransmissions were spent re-driving the request
          and the protocol still failed to resolve it: a
          retransmission livelock (each re-drive returned the system
          to an equivalent stuck state);
        * **M205** — the importer still holds a PENDING import after
          faults the protocol claims to absorb.
        """
        stuck = self.unresolved(w)
        if not stuck:
            return None
        used = self.faults_used(w)
        who = ", ".join(f"I.p{r}@{ts:g}" for r, ts in stuck)
        if not any(used.values()):
            return (
                "M201",
                f"deadlock: {who} blocked with all channels quiescent and "
                "no fault injected",
            )
        if used["retransmit"] > 0:
            return (
                "M202",
                f"retransmission livelock: {who} unresolved after "
                f"{used['retransmit']} retransmission(s) re-drove the "
                f"request (faults injected: {used['drop']} drop, "
                f"{used['dup']} dup, {used['crash']} crash)",
            )
        return (
            "M205",
            f"unresolved import: {who} still PENDING at quiescence "
            f"(faults injected: {used['drop']} drop, {used['dup']} dup, "
            f"{used['crash']} crash)",
        )


# A callable alias used by the checker for monkeypatch-friendly tests.
ViolationHandler = Callable[[str, str], None]
