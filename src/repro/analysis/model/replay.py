"""Replay model-checker counterexamples through the real DES runtime.

A counterexample is a ``repro.verify/v1`` schedule: the exact action
path the explorer took from the initial state to the violation, plus
the :class:`~repro.analysis.model.machine.ModelConfig` it was found
under.  Replaying drives the *same real protocol objects* the checker
wrapped, one action per DES tick, with a
:class:`~repro.obs.trace.CausalLog` recording every protocol event —
so a violation renders as a PR-5 ``repro.causal/v1`` happens-before
DAG (a clickable trace), not a state dump.

Replay is deterministic: the schedule fixes the interleaving, the DES
clock fixes the span times, and :class:`CausalLog` allocates span and
trace ids in record order — two replays of the same schedule produce
byte-identical DAG exports (asserted by the determinism tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.analysis.model.checker import SCHEMA
from repro.analysis.model.machine import (
    VIOLATION_ERRORS,
    ModelConfig,
    ModelMachine,
)
from repro.des.core import Simulator
from repro.obs.trace import CausalLog, CausalReport, build_causal_report
from repro.util.validation import require

__all__ = ["ReplayResult", "config_from_payload", "replay_schedule"]


def config_from_payload(payload: dict[str, Any]) -> ModelConfig:
    """Rebuild the :class:`ModelConfig` embedded in a schedule."""
    return ModelConfig(
        nimp=int(payload["nimp"]),
        nexp=int(payload["nexp"]),
        requests=tuple(float(t) for t in payload["requests"]),
        exports=tuple(float(t) for t in payload["exports"]),
        policy=str(payload["policy"]),
        buddy_help=bool(payload["buddy_help"]),
        mode=str(payload["mode"]),
        drop_budget=int(payload["drop_budget"]),
        dup_budget=int(payload["dup_budget"]),
        crash_budget=int(payload["crash_budget"]),
        retransmit_budget=int(payload["retransmit_budget"]),
        fault_planes=tuple(str(p) for p in payload["fault_planes"]),
        mutate=payload.get("mutate"),
    )


def _actions_from(schedule: dict[str, Any]) -> list[tuple[Any, ...]]:
    """Validate a schedule payload and extract its action list."""
    require(
        schedule.get("schema") == SCHEMA,
        f"not a {SCHEMA} schedule: schema={schedule.get('schema')!r}",
    )
    require(
        schedule.get("kind") == "counterexample",
        f"not a counterexample schedule: kind={schedule.get('kind')!r}",
    )
    actions = schedule.get("actions")
    require(isinstance(actions, list) and len(actions) > 0, "empty schedule")
    assert isinstance(actions, list)
    return [tuple(a) for a in actions]


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of replaying one counterexample schedule."""

    #: The rule the schedule claims to demonstrate.
    rule: str
    #: Causal DAG of the replayed run (``repro.causal/v1``).
    report: CausalReport
    #: The violation the replay reproduced (exception text for M203,
    #: ``None`` for terminal-state rules, whose evidence is the DAG
    #: ending without a resolution).
    error: str | None
    #: Actions actually executed (equals the schedule for terminal
    #: rules; for M203 the final action is the one that raised).
    executed: int

    def to_payload(self) -> dict[str, Any]:
        """JSON-ready form: the DAG plus replay metadata."""
        return {
            "schema": SCHEMA,
            "kind": "replay",
            "rule": self.rule,
            "error": self.error,
            "executed": self.executed,
            "causal": self.report.as_dict(),
        }


def replay_schedule(schedule: dict[str, Any]) -> ReplayResult:
    """Re-execute *schedule* through the DES runtime, one action per tick.

    The driver process applies one schedule action per unit of virtual
    time, so span timestamps encode schedule positions and the causal
    DAG reads as a timeline of the counterexample.  An M203 schedule
    ends in the violating call: the exception is caught, reported in
    ``error``, and the spans recorded up to that point form the DAG.
    """
    actions = _actions_from(schedule)
    config = config_from_payload(schedule["config"])
    machine = ModelMachine(config)
    w = machine.initial_working()
    sim = Simulator()
    log = CausalLog()
    state = {"error": None, "executed": 0}

    def driver() -> Any:
        for action in actions:
            yield sim.timeout(1.0)
            state["executed"] += 1
            try:
                machine.apply(w, action, recorder=log, now=sim.now)
            except VIOLATION_ERRORS as exc:
                state["error"] = (
                    f"{type(exc).__name__} at action "
                    f"{state['executed']}/{len(actions)} "
                    f"({' '.join(str(p) for p in action)}): {exc}"
                )
                return

    sim.process(driver(), name="cex-replay")
    sim.run()
    return ReplayResult(
        rule=str(schedule.get("rule", "")),
        report=build_causal_report(log),
        error=state["error"],
        executed=state["executed"],
    )
