"""Explicit-state model checking of the coupled control plane.

The package wraps the *real* protocol implementations from
:mod:`repro.core` in a bounded world (:mod:`.machine`), exhaustively
explores every message interleaving and fault action with state hashing
and sleep-set partial-order reduction (:mod:`.checker`), and replays
counterexample schedules through the DES runtime as ``repro.causal/v1``
DAGs (:mod:`.replay`).  Findings carry M2xx rule codes in the shared
:mod:`repro.analysis.report` model; see ``docs/static_analysis.md``.
"""

from repro.analysis.model.checker import (
    RULE_PAPER,
    SCHEMA,
    CheckResult,
    SuiteResult,
    check,
    check_suite,
    directed_worlds,
)
from repro.analysis.model.machine import (
    MUTATIONS,
    ModelConfig,
    ModelMachine,
    mutation_config,
    plane_of_channel,
)
from repro.analysis.model.replay import (
    ReplayResult,
    config_from_payload,
    replay_schedule,
)

__all__ = [
    "CheckResult",
    "ModelConfig",
    "ModelMachine",
    "MUTATIONS",
    "ReplayResult",
    "RULE_PAPER",
    "SCHEMA",
    "SuiteResult",
    "check",
    "check_suite",
    "config_from_payload",
    "directed_worlds",
    "mutation_config",
    "plane_of_channel",
    "replay_schedule",
]
