"""Online protocol sanitizer (rule namespace ``S3xx``).

The static passes catch what is visible before a run; this pass watches
a *running* :class:`~repro.core.coupler.CoupledSimulation` and checks
the protocol invariants the paper's correctness argument rests on:

* **S301** — the per-rank responses the exporter rep aggregates must
  form one of the five legal cases (paper §4): all-MATCH (same matched
  timestamp), all-NO_MATCH, all-PENDING, or PENDING mixed with exactly
  one definitive verdict.  A MATCH/NO_MATCH mixture — or MATCHes with
  different matched timestamps — means the program's processes are not
  collective (Property 1 violated), and the sanitizer reports *every*
  rank's response, not just the offending pair.
* **S302** — buddy-help must target genuinely-PENDING ranks: a rep
  that "helps" a process which already answered definitively is wasted
  traffic at best and a protocol bug at worst.
* **S303** — every ``EXPORT_SKIP`` must be justified: the skipped
  timestamp must lie strictly below the skip threshold implied by the
  request/answer events this process has observed.  The sanitizer
  mirrors the threshold per (process, connection) from the trace
  stream using the same two advancement rules as the exporter itself —
  a request arrival raises it to ``policy.future_low(t)``, a
  definitive answer on a disjoint-regions connection raises it to
  ``policy.region(t)[1]`` — so a flagged skip is a genuine divergence
  between the framework's decision and the protocol's rules, never a
  modelling artifact.
* **S304** — repeated final answers for the same request must agree.
  Retransmitted and duplicated control messages are *legal* under the
  resilient protocol (``repro.faults``): the rep state machines
  re-answer idempotently, so the sanitizer tolerates repeats — S301
  mirrors accumulate across retransmissions instead of resetting, and
  an identical repeated answer is never flagged.  What it does flag is
  a repeat that *disagrees* with the recorded answer: that is not
  message chaos but a genuine protocol bug (a corrupted answer cache
  or a Property-1 violation surfacing through retransmission).

Enable it with ``CoupledSimulation(..., sanitize=True)`` or by setting
``REPRO_SANITIZE=1`` in the environment.  In strict mode (the default)
an ERROR finding raises :class:`SanitizerError` at the violating event;
otherwise findings accumulate in :attr:`ProtocolSanitizer.report`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.report import Finding, Report, Severity
from repro.core.config import ConnectionSpec, CouplingConfig
from repro.core.exceptions import FrameworkError
from repro.core.properties import format_per_rank
from repro.core.rep import BuddyHelp, Directive, ExporterRep, ImporterRep
from repro.match.result import FinalAnswer, MatchKind, MatchResponse
from repro.util import tracing


class SanitizerError(FrameworkError):
    """Raised in strict mode when an ERROR-severity invariant trips.

    Carries the findings so callers can render them (text or JSON)
    exactly like the static passes' output.
    """

    def __init__(self, findings: list[Finding]) -> None:
        self.findings = list(findings)
        super().__init__("\n".join(f.render() for f in self.findings))


def _fmt_response(r: MatchResponse) -> str:
    if r.kind is MatchKind.MATCH:
        return f"MATCH@{r.matched_ts:g}"
    return str(r.kind)


@dataclass
class _RequestMirror:
    """The sanitizer's shadow of one open request at the exporter rep."""

    responses: dict[int, MatchResponse] = field(default_factory=dict)
    definitive: set[int] = field(default_factory=set)


class ProtocolSanitizer:
    """Shared state of the three online checks for one simulation.

    Parameters
    ----------
    config:
        The coupling configuration (policies and disjointness per
        connection drive the S303 threshold mirror).
    strict:
        Raise :class:`SanitizerError` on the first ERROR finding
        (default).  Non-strict mode only accumulates the report.
    """

    def __init__(self, config: CouplingConfig, strict: bool = True) -> None:
        self.strict = strict
        self.report = Report()
        self._conns: dict[str, ConnectionSpec] = {
            c.connection_id: c for c in config.connections
        }
        #: (exporting program, region) -> connection ids over it.
        self._region_conns: dict[tuple[str, str], list[str]] = {}
        for c in config.connections:
            key = (c.exporter.program, c.exporter.region)
            self._region_conns.setdefault(key, []).append(c.connection_id)
        #: S303 mirror: (who, connection_id) -> skip threshold.
        self._thresholds: dict[tuple[str, str], float] = {}

    # -- wiring ------------------------------------------------------------
    def wrap_rep(self, rep: ExporterRep) -> "SanitizedExporterRep":
        """Interpose on one program's exporter rep (S301/S302)."""
        return SanitizedExporterRep(rep, self)

    def wrap_imp_rep(self, rep: ImporterRep) -> "SanitizedImporterRep":
        """Interpose on one program's importer rep (S304)."""
        return SanitizedImporterRep(rep, self)

    def wrap_tracer(self, tracer: tracing.Tracer) -> "SanitizingTracer":
        """Interpose on the trace event stream (S303)."""
        return SanitizingTracer(tracer, self)

    # -- reporting ---------------------------------------------------------
    def _emit(self, finding: Finding) -> None:
        self.report.add(finding)
        if self.strict and finding.severity is Severity.ERROR:
            raise SanitizerError([finding])

    # -- S301 / S302: rep-side checks --------------------------------------
    def check_aggregate(
        self, program: str, connection_id: str, mirror: _RequestMirror, request_ts: float
    ) -> None:
        """S301: the responses gathered so far must be a legal case."""
        definitive = [
            (rank, r) for rank, r in mirror.responses.items() if r.is_definitive
        ]
        kinds = {r.kind for _rank, r in definitive}
        matched = {r.matched_ts for _rank, r in definitive if r.kind is MatchKind.MATCH}
        illegal = (
            MatchKind.MATCH in kinds and MatchKind.NO_MATCH in kinds
        ) or len(matched) > 1
        if not illegal:
            return
        per_rank = {
            rank: _fmt_response(r) for rank, r in sorted(mirror.responses.items())
        }
        detail = format_per_rank(
            f"responses for request @{request_ts:g} form an illegal mixture:",
            per_rank,
        )
        self._emit(
            Finding(
                rule="S301",
                severity=Severity.ERROR,
                message=(
                    "illegal aggregate: definitive responses disagree, which no "
                    f"legal case of the collective-match rule allows.\n{detail}"
                ),
                paper="§4 (five legal cases; Property 1)",
                program=program,
                connection=connection_id,
            )
        )

    def check_buddy_targets(
        self,
        program: str,
        connection_id: str,
        mirror: _RequestMirror,
        request_ts: float,
        directives: list[Directive],
    ) -> None:
        """S302: buddy-help must reach only still-PENDING ranks."""
        for d in directives:
            if isinstance(d, BuddyHelp) and d.rank in mirror.definitive:
                self._emit(
                    Finding(
                        rule="S302",
                        severity=Severity.ERROR,
                        message=(
                            f"buddy-help for request @{request_ts:g} targets rank "
                            f"{d.rank}, which already answered "
                            f"{_fmt_response(mirror.responses[d.rank])}; help must "
                            "go only to still-PENDING processes"
                        ),
                        paper="§4 (buddy-help dissemination)",
                        program=program,
                        rank=d.rank,
                        connection=connection_id,
                    )
                )

    # -- S304: duplicate-answer agreement ----------------------------------
    def check_duplicate_answer(
        self,
        program: str,
        connection_id: str,
        previous: FinalAnswer,
        incoming: FinalAnswer,
    ) -> None:
        """S304: a repeated answer must equal the recorded one.

        Identical repeats (retransmissions, wire duplicates, cache
        re-answers) are legal and pass silently.
        """
        if previous == incoming:
            return
        self._emit(
            Finding(
                rule="S304",
                severity=Severity.ERROR,
                message=(
                    f"request @{incoming.request_ts:g} was answered twice with "
                    f"disagreeing verdicts: first "
                    f"{previous.kind}/{previous.matched_ts}, then "
                    f"{incoming.kind}/{incoming.matched_ts} — retransmitted "
                    "answers must be identical (final-answer cache or "
                    "Property 1 is broken)"
                ),
                paper="§3-4 (answer finality under Property 1)",
                program=program,
                connection=connection_id,
            )
        )

    # -- S303: trace-side skip-justification check -------------------------
    def _raise_mirror(self, who: str, cid: str, value: float) -> None:
        key = (who, cid)
        if value > self._thresholds.get(key, float("-inf")):
            self._thresholds[key] = value

    def observe_event(
        self, kind: str, who: str, timestamp: float | None, detail: dict[str, Any]
    ) -> None:
        """Feed one trace event into the S303 threshold mirror.

        Events lacking the ``cid``/``region`` detail keys are applied
        conservatively (thresholds may under-advance for *other*
        connections, skips without a known region are not checked), so
        the mirror can miss violations but never invent one.
        """
        if kind == tracing.REQUEST_RECV:
            cid = detail.get("cid")
            request = detail.get("request")
            if cid is None or request is None:
                return
            spec = self._conns.get(cid)
            if spec is not None:
                self._raise_mirror(who, cid, spec.policy.future_low(request))
        elif kind in (tracing.REQUEST_REPLY, tracing.BUDDY_RECV):
            cid = detail.get("cid")
            request = detail.get("request")
            answer = detail.get("answer")
            if cid is None or request is None or answer is None:
                return
            if kind == tracing.REQUEST_REPLY and answer == str(MatchKind.PENDING):
                return  # only definitive answers advance the threshold
            spec = self._conns.get(cid)
            if spec is not None and spec.disjoint_regions:
                self._raise_mirror(who, cid, spec.policy.region(request)[1])
        elif kind == tracing.EXPORT_SKIP:
            self._check_skip(who, timestamp, detail)

    def _check_skip(
        self, who: str, timestamp: float | None, detail: dict[str, Any]
    ) -> None:
        region = detail.get("region")
        if timestamp is None or region is None:
            return
        program, _sep, rank_s = who.rpartition(".p")
        if not program or not rank_s.isdigit():
            return
        cids = self._region_conns.get((program, region), [])
        unjustified = [
            cid
            for cid in cids
            if not timestamp < self._thresholds.get((who, cid), float("-inf"))
        ]
        if not unjustified:
            return
        thr = {
            cid: self._thresholds.get((who, cid), float("-inf"))
            for cid in unjustified
        }
        self._emit(
            Finding(
                rule="S303",
                severity=Severity.ERROR,
                message=(
                    f"export of {region}@{timestamp:g} was skipped, but the "
                    "observed request/answer stream only justifies skipping "
                    "below "
                    + ", ".join(f"{t:g} on {cid}" for cid, t in sorted(thr.items()))
                    + " — a skipped object a future request could still match "
                    "would be silently lost"
                ),
                paper="§4.1 (skip-threshold advancement)",
                program=program,
                rank=int(rank_s),
                connection=unjustified[0],
            )
        )


class SanitizedExporterRep:
    """Composition proxy around :class:`ExporterRep` (S301/S302).

    Mirrors the per-request response sets independently of the rep's
    own bookkeeping and checks them *before* delegating, so an illegal
    mixture is reported with full per-rank context instead of the
    rep's first-contradiction exception.  Everything not checked is
    delegated untouched.
    """

    def __init__(self, inner: ExporterRep, sanitizer: ProtocolSanitizer) -> None:
        self._inner = inner
        self._sanitizer = sanitizer
        self._mirrors: dict[tuple[str, float], _RequestMirror] = {}

    def on_request(self, connection_id: str, request_ts: float) -> list[Directive]:
        # setdefault, not assignment: a retransmitted request must not
        # reset the mirror — responses legitimately accumulate across
        # re-asks under the resilient protocol.
        self._mirrors.setdefault((connection_id, request_ts), _RequestMirror())
        return self._inner.on_request(connection_id, request_ts)

    def on_response(
        self, connection_id: str, rank: int, response: MatchResponse
    ) -> list[Directive]:
        mirror = self._mirrors.setdefault(
            (connection_id, response.request_ts), _RequestMirror()
        )
        mirror.responses[rank] = response
        if response.is_definitive:
            mirror.definitive.add(rank)
        self._sanitizer.check_aggregate(
            self._inner.program, connection_id, mirror, response.request_ts
        )
        directives = self._inner.on_response(connection_id, rank, response)
        self._sanitizer.check_buddy_targets(
            self._inner.program, connection_id, mirror, response.request_ts, directives
        )
        return directives

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class SanitizedImporterRep:
    """Composition proxy around :class:`ImporterRep` (S304).

    Records the first final answer per request and checks every later
    one against it *before* delegating, so a disagreeing duplicate is
    reported with both verdicts instead of the rep's bare exception.
    """

    def __init__(self, inner: ImporterRep, sanitizer: ProtocolSanitizer) -> None:
        self._inner = inner
        self._sanitizer = sanitizer
        self._answers: dict[tuple[str, float], FinalAnswer] = {}

    def on_process_request(
        self, connection_id: str, request_ts: float, rank: int
    ) -> list[Directive]:
        return self._inner.on_process_request(connection_id, request_ts, rank)

    def on_answer(self, connection_id: str, answer: FinalAnswer) -> list[Directive]:
        key = (connection_id, answer.request_ts)
        known = self._answers.get(key)
        if known is None:
            self._answers[key] = answer
        else:
            self._sanitizer.check_duplicate_answer(
                self._inner.program, connection_id, known, answer
            )
        return self._inner.on_answer(connection_id, answer)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class SanitizingTracer:
    """Trace-stream interposer feeding the S303 mirror.

    Always reports ``enabled`` so the runtime emits every event (the
    mirror needs the full stream even when the user asked for no
    trace); events are forwarded to the wrapped tracer only if that
    tracer records.
    """

    def __init__(self, inner: tracing.Tracer, sanitizer: ProtocolSanitizer) -> None:
        self._inner = inner
        self._sanitizer = sanitizer

    @property
    def enabled(self) -> bool:
        return True

    @property
    def events(self) -> list[tracing.TraceEvent]:
        return self._inner.events

    def record(
        self,
        kind: str,
        who: str,
        time: float,
        timestamp: float | None = None,
        **detail: Any,
    ) -> None:
        self._sanitizer.observe_event(kind, who, timestamp, detail)
        if self._inner.enabled:
            self._inner.record(kind, who, time, timestamp=timestamp, **detail)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)
