"""Figure 4 (a)-(d): per-iteration export time of the slowest exporter
process, for importer sizes 4 / 8 / 16 / 32.

Paper observations reproduced and asserted here:

* (a) U=4 and (b) U=8 — the importer is slower: every export is
  buffered; the series is flat, ~8% elevated during framework
  initialization, and drops a few percent late in the run once the
  other F processes have finished (less contention).
* (c) U=16 — the importer catches up: buddy-help skips grow until the
  optimal state is reached (paper: ≈ 400 iterations).
* (d) U=32 — optimal state almost immediately (paper: ≈ 25 iterations).
"""

import pytest

from conftest import emit
from repro.bench.figure4 import Figure4Spec, run_figure4
from repro.bench.reporting import format_series, format_table
from repro.util.stats import SeriesSummary


def _spec(u_procs, scale, **kw):
    return Figure4Spec(
        u_procs=u_procs, exports=scale["exports"], runs=scale["runs"], **kw
    )


def _report(result):
    spec = result.spec
    mean = result.mean_series()
    rows = []
    for i, run in enumerate(result.runs):
        s = run.summary()
        rows.append(
            [
                i,
                f"{s.head_mean * 1e3:.3f}",
                f"{s.body_mean * 1e3:.3f}",
                f"{s.tail_mean * 1e3:.3f}",
                f"{run.skip_fraction:.2f}",
                run.optimal_iteration if run.optimal_iteration is not None else "-",
                f"{run.t_ub * 1e3:.2f}",
            ]
        )
    table = format_table(
        ["run", "head ms", "body ms", "tail ms", "skip%", "opt iter", "T_ub ms"],
        rows,
    )
    emit(
        f"Figure 4: U={spec.u_procs} processes ({spec.runs} runs, "
        f"{spec.exports} exports)",
        table + "\n" + format_series("mean p_s export time", mean, unit="s"),
    )


@pytest.mark.parametrize("u_procs,sub", [(4, "a"), (8, "b")], ids=["fig4a-u4", "fig4b-u8"])
def test_fig4_importer_slower_flat_series(benchmark, scale, u_procs, sub):
    spec = _spec(u_procs, scale)
    result = benchmark.pedantic(run_figure4, args=(spec,), rounds=1, iterations=1)
    _report(result)
    for run in result.runs:
        # Every export buffered (plus the matched sends): no skips.
        assert run.decisions.get("skip", 0) == 0
        assert run.optimal_iteration is None
        s = SeriesSummary.from_series(run.series, head=30, tail=200)
        # ~8% init surcharge on the head of the series.
        assert s.head_mean > 1.03 * s.body_mean
        # A few percent faster after the peer processes finish.
        assert s.tail_mean < s.body_mean
    benchmark.extra_info["skip_fraction"] = result.runs[0].skip_fraction
    benchmark.extra_info["paper"] = "flat series; +8% head; -4% tail"


def test_fig4c_u16_gradual_optimal_state(benchmark, scale):
    spec = _spec(16, scale)
    result = benchmark.pedantic(run_figure4, args=(spec,), rounds=1, iterations=1)
    _report(result)
    full = scale["exports"] >= 1001
    for run in result.runs:
        # The catch-up is deliberately near-critical (paper: ~400
        # iterations to the optimal state), so short REPRO_QUICK runs
        # only see its beginning.
        assert run.skip_fraction > (0.5 if full else 0.2)
        if full:
            assert run.optimal_iteration is not None
            # Paper: around 400 iterations; accept the broad band the
            # "gradual catch-up" claim implies.
            assert 100 <= run.optimal_iteration <= 700
        # The series decays: late exports are cheaper than early ones.
        s = run.summary()
        assert s.tail_mean < (0.5 if full else 0.9) * s.head_mean
    benchmark.extra_info["optimal_iterations"] = [
        r.optimal_iteration for r in result.runs
    ]
    benchmark.extra_info["paper"] = "optimal state at ~400 iterations"


def test_fig4d_u32_fast_optimal_state(benchmark, scale):
    spec = _spec(32, scale)
    result = benchmark.pedantic(run_figure4, args=(spec,), rounds=1, iterations=1)
    _report(result)
    for run in result.runs:
        assert run.skip_fraction > 0.8
        assert run.optimal_iteration is not None
        # Paper: around 25 iterations.
        assert run.optimal_iteration <= 80
        # Figure 6 / optimal state: T_i == 0 once reached; total in-region
        # waste stays negligible.
        assert run.t_ub < 0.01
    benchmark.extra_info["optimal_iterations"] = [
        r.optimal_iteration for r in result.runs
    ]
    benchmark.extra_info["paper"] = "optimal state at ~25 iterations"


def test_fig4_cross_configuration_ordering(benchmark, scale):
    """The headline comparison: more importer processes -> earlier help
    -> cheaper exports on the slowest process."""

    def run_all():
        return {
            u: run_figure4(_spec(u, {"exports": scale["exports"], "runs": 1}))
            for u in (4, 8, 16, 32)
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    means = {}
    for u, result in results.items():
        run = result.runs[0]
        s = run.summary()
        means[u] = s.mean
        rows.append(
            [u, f"{s.mean * 1e3:.3f}", f"{run.skip_fraction:.2f}",
             run.optimal_iteration if run.optimal_iteration is not None else "-"]
        )
    emit(
        "Figure 4 cross-configuration summary",
        format_table(["U procs", "mean export ms", "skip%", "opt iter"], rows),
    )
    assert means[4] == pytest.approx(means[8], rel=0.05)  # both flat
    assert means[16] < 0.6 * means[4]
    assert means[32] < means[16]
