"""Figure 6: the optimal state — only matched data objects are buffered.

Characteristics asserted (paper Section 5):

1. for each matched object, the buddy-help answer arrives early enough;
2. the framework knows the needed timestamps *before* they are exported
   (only the matches are buffered);
3. ``T_i = 0`` once the optimal state is entered.
"""

from conftest import emit
from repro.bench.figure4 import Figure4Spec, build_figure4_simulation
from repro.bench.reporting import format_table
from repro.bench.traces import optimal_state_reached
from repro.core.exporter import ExportDecision


def test_fig6_optimal_state(benchmark, scale):
    spec = Figure4Spec(
        u_procs=32, exports=min(scale["exports"], 601), runs=1, jitter=0.0
    )

    def run():
        cs = build_figure4_simulation(spec)
        cs.run()
        return cs

    cs = benchmark.pedantic(run, rounds=1, iterations=1)
    ctx = cs.context("F", spec.slow_rank)
    records = ctx.stats.export_records
    assert optimal_state_reached(records[: -25], window=40)

    # Characterize the steady tail (excluding the post-last-request end).
    cutoff = spec.n_requests * spec.request_period
    tail = [r for r in records if r.ts <= cutoff][-100:]
    buffers = sum(1 for r in tail if r.decision is ExportDecision.BUFFER)
    sends = sum(1 for r in tail if r.decision is ExportDecision.SEND)
    skips = sum(1 for r in tail if r.decision is ExportDecision.SKIP)
    stats = cs.buffer_stats("F", spec.slow_rank, "f")
    emit(
        "Figure 6: optimal-state tail of p_s (last 100 in-window exports)",
        format_table(
            ["skips", "sends", "buffers", "T_ub total (s)", "live buffers at end"],
            [[skips, sends, buffers, f"{stats.t_ub:.4g}", stats.live_count]],
        ),
    )
    # Only matched data buffered: one send per 20 exports, zero blind buffers.
    assert buffers == 0
    assert sends >= 4
    assert skips + sends == len(tail)
    # T_i = 0 in the optimal state: windows past the onset accrue nothing.
    onset_window = None
    for w, t in sorted(stats.t_by_window.items()):
        if t == 0.0 and onset_window is None:
            onset_window = w
    late_windows = {w: t for w, t in stats.t_by_window.items() if w > 5}
    assert all(t == 0.0 for t in late_windows.values()) or not late_windows
    benchmark.extra_info["paper"] = "T_i == 0 once the optimal state is entered"
