"""Control-plane overhead: is the rep really "low-overhead"?

The paper calls the representative a *low-overhead control gateway*;
buddy-help adds control messages (one per lagging process per request)
to save data-sized memcpys.  This bench counts every message on the
wire and weighs the control bytes against the buffering work avoided.
"""

from conftest import emit
from repro.bench.figure4 import Figure4Spec, build_figure4_simulation
from repro.bench.reporting import format_table


def _run(u_procs, buddy, exports=401):
    spec = Figure4Spec(u_procs=u_procs, exports=exports, runs=1,
                       jitter=0.0, buddy_help=buddy)
    cs = build_figure4_simulation(spec)
    cs.run()
    net = cs.world.network
    rep = cs._programs["F"].exp_rep
    assert rep is not None
    slow = cs.context("F", spec.slow_rank)
    return {
        "messages": net.messages_sent,
        "bytes": net.bytes_sent,
        "buddy_msgs": rep.buddy_messages_sent,
        "requests": rep.requests_seen,
        "skips": slow.stats.decisions().get("skip", 0),
        "memcpy_saved_s": slow.stats.decisions().get("skip", 0)
        * spec.preset().memory.memcpy_time(spec.f_elements() * 8, now=1e9),
        "export_total_s": sum(r.cost for r in slow.stats.export_records),
    }


def test_control_message_economics(benchmark, scale):
    exports = min(scale["exports"], 401)

    def run_matrix():
        return {
            (u, b): _run(u, b, exports=exports)
            for u in (16, 32)
            for b in (True, False)
        }

    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    rows = []
    for (u, buddy), r in sorted(results.items()):
        per_req = r["messages"] / max(1, r["requests"])
        rows.append([
            u,
            "on" if buddy else "off",
            r["requests"],
            r["messages"],
            f"{per_req:.1f}",
            r["buddy_msgs"],
            r["skips"],
            f"{r['export_total_s']:.3f}",
        ])
    emit(
        "Control-plane economics (total wire messages; p_s export time)",
        format_table(
            ["U", "buddy", "requests", "messages", "msg/request",
             "buddy msgs", "p_s skips", "p_s export s"],
            rows,
        ),
    )
    for u in (16, 32):
        on, off = results[(u, True)], results[(u, False)]
        # Buddy-help adds at most a handful of control messages per
        # request (bounded by nprocs)...
        assert on["buddy_msgs"] <= on["requests"] * 4
        # ...and repays them with large buffering savings on p_s.
        assert on["export_total_s"] < off["export_total_s"]
    benchmark.extra_info["paper"] = "the rep is a low-overhead control gateway"
