"""Equations (1)-(2): the unnecessary-buffering time ``T_ub``.

``T_i`` is the buffering time wasted on in-region non-match objects for
request window *i*; ``T_ub = Σ T_i``.  This bench measures ``T_ub`` on
the Figure-4 micro-benchmark with buddy-help on and off, quantifying
exactly what the optimization removes.
"""

from conftest import emit
from repro.bench.figure4 import Figure4Spec, run_figure4_once
from repro.bench.reporting import format_table


def test_eq2_tub_with_and_without_buddy(benchmark, scale):
    exports = min(scale["exports"], 601)

    def run_matrix():
        out = {}
        for u in (16, 32):
            for buddy in (True, False):
                spec = Figure4Spec(
                    u_procs=u, exports=exports, runs=1, jitter=0.0, buddy_help=buddy
                )
                out[(u, buddy)] = run_figure4_once(spec)
        return out

    runs = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    rows = []
    for (u, buddy), run in sorted(runs.items()):
        rows.append(
            [
                u,
                "on" if buddy else "off",
                f"{run.t_ub * 1e3:.3f}",
                f"{run.unnecessary_total * 1e3:.1f}",
                f"{run.skip_fraction:.2f}",
            ]
        )
    emit(
        "Eq. (2): T_ub and total wasted buffering (ms), buddy on/off",
        format_table(
            ["U procs", "buddy", "T_ub ms", "total waste ms", "skip%"], rows
        ),
    )
    for u in (16, 32):
        on, off = runs[(u, True)], runs[(u, False)]
        assert on.t_ub <= off.t_ub
        assert on.unnecessary_total < off.unnecessary_total
    # Strict improvement where the importer is fast enough to help.
    assert runs[(32, True)].t_ub < 0.2 * max(runs[(32, False)].t_ub, 1e-12)
    benchmark.extra_info["paper"] = "buddy-help drives T_i (and T_ub) to zero"


def test_eq1_windows_monotone_under_catchup(benchmark, scale):
    """The paper's side remark: once ``p_s`` starts getting buddy-help
    at request *j*, the per-window waste ``T_k`` is non-increasing for
    ``k >= j`` (until it reaches 0 in the optimal state)."""
    spec = Figure4Spec(
        u_procs=32, exports=min(scale["exports"], 601), runs=1, jitter=0.0
    )

    def run():
        from repro.bench.figure4 import build_figure4_simulation

        cs = build_figure4_simulation(spec)
        cs.run()
        return cs.buffer_stats("F", spec.slow_rank, "f")

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    windows = [stats.t_by_window.get(w, 0.0) for w in range(spec.n_requests)]
    emit(
        "Eq. (1): per-window T_i of p_s (U=32)",
        " ".join(f"{t * 1e3:.2f}" for t in windows[:20]) + " ... (ms)",
    )
    # After the first few windows, T_i is 0 and stays 0.
    settled = windows[5:]
    assert all(t == 0.0 for t in settled)
