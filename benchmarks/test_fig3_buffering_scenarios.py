"""Figure 3: the two buffering scenarios.

(a) importer slower — every exported object must be buffered, but the
exporter is off the critical path, so this costs little overall;
(b) exporter slower — buffering sits on the critical path, and this is
where buddy-help pays.
"""

from conftest import emit
from repro.bench.reporting import format_table
from repro.bench.scenarios import run_exporter_slower, run_importer_slower


def test_fig3a_importer_slower(benchmark, scale):
    res = benchmark.pedantic(
        run_importer_slower,
        kwargs={"exports": min(scale["exports"], 400)},
        rounds=1,
        iterations=1,
    )
    emit(
        "Figure 3(a): importer slower",
        format_table(
            ["exports", "requests", "buffered%", "skip%", "T_ub (s)"],
            [[
                res.exports,
                res.requests,
                f"{res.buffered_fraction:.2f}",
                f"{res.skip_fraction:.2f}",
                f"{res.buffer_stats.t_ub:.4g}",
            ]],
        ),
    )
    assert res.buffered_fraction == 1.0
    benchmark.extra_info["paper"] = "every export buffered; exporter unaffected"


def test_fig3b_exporter_slower(benchmark, scale):
    exports = min(scale["exports"], 400)

    def run_both():
        return (
            run_exporter_slower(exports=exports, buddy_help=True),
            run_exporter_slower(exports=exports, buddy_help=False),
        )

    with_buddy, without = benchmark.pedantic(run_both, rounds=1, iterations=1)
    emit(
        "Figure 3(b): exporter slower — buddy-help on vs off",
        format_table(
            ["buddy", "skip%", "buffered%", "T_ub (s)", "total export time (s)"],
            [
                ["on", f"{with_buddy.skip_fraction:.2f}",
                 f"{with_buddy.buffered_fraction:.2f}",
                 f"{with_buddy.buffer_stats.t_ub:.4g}",
                 f"{with_buddy.exporter_export_time_total:.4g}"],
                ["off", f"{without.skip_fraction:.2f}",
                 f"{without.buffered_fraction:.2f}",
                 f"{without.buffer_stats.t_ub:.4g}",
                 f"{without.exporter_export_time_total:.4g}"],
            ],
        ),
    )
    assert with_buddy.skip_fraction > without.skip_fraction
    assert with_buddy.exporter_export_time_total < without.exporter_export_time_total
    benchmark.extra_info["paper"] = "in-region buffering is the cost buddy-help removes"
