"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table/figure of the paper and prints the
paper-vs-measured comparison.  Set ``REPRO_QUICK=1`` to run reduced
sizes (CI smoke); the default is the paper's full configuration
(1001 exports, six runs per Figure-4 sub-figure).
"""

import os

import pytest


def full_scale() -> bool:
    """Whether to run the paper's full experiment sizes."""
    return os.environ.get("REPRO_QUICK", "0") != "1"


@pytest.fixture(scope="session")
def scale():
    """Experiment scale knobs derived from REPRO_QUICK."""
    if full_scale():
        return {"exports": 1001, "runs": 6}
    return {"exports": 201, "runs": 2}


def emit(title: str, body: str) -> None:
    """Print a labelled report block (visible with ``-s`` / in CI logs)."""
    bar = "=" * max(20, len(title) + 8)
    print(f"\n{bar}\n==  {title}\n{bar}\n{body}\n")
