"""Figure 5: the typical buddy-help event trace (REGL 2.5, requests at
20 and 40) — skip runs grow from 4 memcpys to 7 as U catches up."""

from conftest import emit
from repro.bench.traces import scenario_fig5
from repro.util import tracing


def test_fig5_trace(benchmark):
    scenario = benchmark.pedantic(scenario_fig5, rounds=1, iterations=1)
    emit("Figure 5: typical buddy-help scenario", scenario.rendered())
    skips = [e.timestamp for e in scenario.events if e.kind == tracing.EXPORT_SKIP]
    assert [t for t in skips if t < 20] == [15.6, 16.6, 17.6, 18.6]
    assert [t for t in skips if 20 < t < 40] == [
        32.6, 33.6, 34.6, 35.6, 36.6, 37.6, 38.6
    ]
    sends = [e.timestamp for e in scenario.events if e.kind == tracing.EXPORT_SEND]
    assert sends == [19.6, 39.6]
    benchmark.extra_info["paper"] = "4 skips in window 1, 7 in window 2"
    benchmark.extra_info["skips_window1"] = 4
    benchmark.extra_info["skips_window2"] = 7
