"""Figure 8: the same configuration *without* buddy-help.

Every acceptable export becomes the new best candidate: buffer the new
one, free the previous one (the churn Eq. 1 charges as T_i).  The match
is identified only when an export falls outside the region.
"""

from conftest import emit
from repro.bench.traces import scenario_fig7_with_buddy, scenario_fig8_without_buddy
from repro.util import tracing


def test_fig8_trace(benchmark):
    scenario = benchmark.pedantic(scenario_fig8_without_buddy, rounds=1, iterations=1)
    emit("Figure 8: without buddy-help (REGL 5.0)", scenario.rendered())
    memcpys = [e.timestamp for e in scenario.events if e.kind == tracing.EXPORT_MEMCPY]
    removes = [
        e.timestamp
        for e in scenario.events
        if e.kind == tracing.BUFFER_REMOVE and "low" not in e.detail
    ]
    assert memcpys == [1.6, 2.6, 3.6, 5.6, 6.6, 7.6, 8.6, 9.6, 10.6]
    assert removes == [5.6, 6.6, 7.6, 8.6]  # candidate churn
    assert scenario.process.state.buffer.t_ub() == 4.0  # unit-cost memcpys
    benchmark.extra_info["paper"] = "buffer-and-replace churn; match at 10.6"


def test_fig7_vs_fig8_savings(benchmark):
    def run_pair():
        return scenario_fig7_with_buddy(), scenario_fig8_without_buddy()

    with_b, without = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    saved_memcpys = without.memcpy_count() - with_b.memcpy_count()
    emit(
        "Buddy-help savings in the Figure 7/8 window",
        f"memcpys: {without.memcpy_count()} -> {with_b.memcpy_count()} "
        f"(saved {saved_memcpys})\n"
        f"T_ub:    {without.process.state.buffer.t_ub():.1f} -> "
        f"{with_b.process.state.buffer.t_ub():.1f}",
    )
    assert saved_memcpys == 4
    benchmark.extra_info["saved_memcpys"] = saved_memcpys
