"""Substrate micro-benchmarks (not in the paper): throughput of the
building blocks, so performance regressions in the simulator itself are
visible independently of the coupled experiments."""

import numpy as np

from repro.data.darray import DistributedArray
from repro.data.decomposition import BlockDecomposition
from repro.data.redistribute import redistribute_pure
from repro.data.schedule import CommSchedule
from repro.des import Simulator
from repro.vmpi import SUM, DesWorld, plan_allreduce, simulate_plans


def test_des_event_throughput(benchmark):
    """Ping-pong of two processes through timeouts: events per second."""

    def run():
        sim = Simulator()
        count = 0

        def proc():
            nonlocal count
            for _ in range(5000):
                yield sim.timeout(0.001)
                count += 1

        sim.process(proc())
        sim.process(proc())
        sim.run()
        return count

    assert benchmark(run) == 10000


def test_collective_plan_simulation(benchmark):
    """Pure-plan allreduce across 64 ranks."""

    def run():
        plans = [plan_allreduce(r, 64, r, SUM, "k") for r in range(64)]
        return simulate_plans(plans)

    result = benchmark(run)
    assert result[0] == 64 * 63 // 2


def test_des_allreduce_16_ranks(benchmark):
    def run():
        world = DesWorld(latency=1e-6)
        world.create_program("P", 16)
        out = {}

        def main(comm):
            for _ in range(20):
                v = yield from comm.allreduce(comm.rank, SUM)
                out[comm.rank] = v

        world.spawn_all("P", main)
        world.run()
        return out[0]

    assert benchmark(run) == 120


def test_schedule_build_paper_sizes(benchmark):
    """Schedule construction for the 4 -> 32 Figure-4 connection."""
    src = BlockDecomposition((1024, 1024), (2, 2))
    dst = BlockDecomposition((1024, 1024), (32, 1))

    def run():
        return CommSchedule.build(src, dst)

    sched = benchmark(run)
    assert sched.is_complete()


def test_redistribution_throughput(benchmark):
    """Moving a 256x256 float64 field across decompositions."""
    shape = (256, 256)
    src = BlockDecomposition(shape, (2, 2))
    dst = BlockDecomposition(shape, (4, 1))
    sched = CommSchedule.build(src, dst)
    s_blocks = [DistributedArray(src, r) for r in range(4)]
    for b in s_blocks:
        b.fill_from(lambda i, j: i + j)
    d_blocks = [DistributedArray(dst, r) for r in range(4)]

    def run():
        return redistribute_pure(sched, s_blocks, d_blocks)

    assert benchmark(run) == 256 * 256
    np.testing.assert_array_equal(
        DistributedArray.assemble(s_blocks), DistributedArray.assemble(d_blocks)
    )
