"""Ablation benchmarks beyond the paper's figures.

These probe the design choices DESIGN.md calls out:

* tolerance sweep — the paper's remark that the benefit depends on the
  ratio of acceptable-region size to request inter-arrival time;
* ``disjoint_regions`` on/off — the provably-safe conservative mode
  buffers more but must produce identical answers;
* match-policy comparison (REGL / REGU / REG) on one workload.
"""

import numpy as np
import pytest

from conftest import emit
from repro.bench.reporting import format_table
from repro.core.coupler import CoupledSimulation, RegionDef
from repro.costs import FAST_TEST
from repro.data.decomposition import BlockDecomposition


def _coupled(policy_line, buddy=True, exports=240, request_period=20.0,
             requests=None, slow=4.0):
    config = f"E c0 /bin/E 2\nI c1 /bin/I 2\n#\n{policy_line}\n"
    n_requests = requests or int((1.6 + exports - 1) // request_period)
    answers = {}

    def e_main(ctx):
        scale = slow if ctx.rank == 1 else 1.0
        for k in range(exports):
            yield from ctx.export("d", 1.6 + k)
            yield from ctx.compute(0.0005 * scale)

    def i_main(ctx):
        got = []
        for j in range(1, n_requests + 1):
            yield from ctx.compute(0.0002)
            m, _ = yield from ctx.import_("d", request_period * j)
            got.append(m)
        answers[ctx.rank] = got

    cs = CoupledSimulation(config, preset=FAST_TEST, buddy_help=buddy, seed=11)
    dec = BlockDecomposition((8, 8), (2, 1))
    deci = BlockDecomposition((8, 8), (1, 2))
    cs.add_program("E", main=e_main, regions={"d": RegionDef(dec)})
    cs.add_program("I", main=i_main, regions={"d": RegionDef(deci)})
    cs.run()
    return cs, answers


def test_tolerance_sweep(benchmark):
    """Wider acceptable regions -> more skippable exports per window."""

    def sweep():
        out = {}
        for tol in (0.5, 2.5, 5.0, 10.0):
            cs, _ = _coupled(f"E.d I.d REGL {tol}")
            out[tol] = cs.context("E", 1).stats.decisions()
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [tol, d.get("skip", 0), d.get("buffer", 0), d.get("send", 0)]
        for tol, d in sorted(results.items())
    ]
    emit(
        "Ablation: tolerance sweep (REGL, slow exporter, buddy on)",
        format_table(["tolerance", "skips", "buffers", "sends"], rows),
    )
    skips = [d.get("skip", 0) for _tol, d in sorted(results.items())]
    assert skips == sorted(skips)  # monotone in tolerance
    benchmark.extra_info["paper"] = (
        "benefit grows with region-size / inter-arrival ratio (Section 5)"
    )


def test_disjoint_vs_conservative_mode(benchmark):
    """The `overlapping` connection flag: same answers, more buffering."""

    def run_pair():
        cs_d, ans_d = _coupled("E.d I.d REGL 2.5")
        cs_c, ans_c = _coupled("E.d I.d REGL 2.5 overlapping")
        return (cs_d, ans_d), (cs_c, ans_c)

    (cs_d, ans_d), (cs_c, ans_c) = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert ans_d == ans_c  # correctness is mode-independent
    dis = cs_d.context("E", 1).stats.decisions()
    con = cs_c.context("E", 1).stats.decisions()
    emit(
        "Ablation: disjoint-regions assumption vs conservative mode",
        format_table(
            ["mode", "skips", "buffers"],
            [
                ["disjoint (paper)", dis.get("skip", 0), dis.get("buffer", 0)],
                ["conservative", con.get("skip", 0), con.get("buffer", 0)],
            ],
        ),
    )
    assert dis.get("skip", 0) >= con.get("skip", 0)


def test_policy_comparison(benchmark):
    """REGL/REGU/REG matched timestamps on the same stream."""

    def sweep():
        out = {}
        for pol in ("REGL 2.5", "REGU 2.5", "REG 2.5"):
            _cs, answers = _coupled(f"E.d I.d {pol}", requests=5)
            out[pol] = answers[0]
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[pol, *ms] for pol, ms in sorted(results.items())]
    emit(
        "Ablation: match-policy comparison (requests at 20..100)",
        format_table(["policy", "m@20", "m@40", "m@60", "m@80", "m@100"], rows),
    )
    # REGL matches just below, REGU just above, REG whichever is closer.
    assert results["REGL 2.5"][0] == pytest.approx(19.6)
    assert results["REGU 2.5"][0] == pytest.approx(20.6)
    assert results["REG 2.5"][0] in (pytest.approx(19.6), pytest.approx(20.6))
    for pol, ms in results.items():
        assert all(m is not None for m in ms), pol


def test_section_transfer_traffic(benchmark):
    """Region sections shrink the data plane: coupling a boundary strip
    moves a fraction of the elements the whole-field coupling moves."""
    from repro.data import RectRegion
    from repro.data.decomposition import BlockDecomposition
    from repro.data.schedule import CommSchedule

    shape = (1024, 1024)
    src = BlockDecomposition(shape, (2, 2))
    dst = BlockDecomposition(shape, (16, 1))

    def build_all():
        return {
            "full field": CommSchedule.build(src, dst),
            "boundary strip (4 rows)": CommSchedule.build(
                src, dst, RectRegion((0, 0), (4, 1024))
            ),
            "interior window": CommSchedule.build(
                src, dst, RectRegion((384, 384), (640, 640))
            ),
        }

    schedules = benchmark.pedantic(build_all, rounds=1, iterations=1)
    rows = [
        [name, s.total_elements, s.message_count(),
         f"{s.total_elements / (1024 * 1024):.4f}"]
        for name, s in schedules.items()
    ]
    emit(
        "Ablation: transfer traffic by coupled section (4 -> 16 ranks)",
        format_table(["section", "elements", "messages", "fraction"], rows),
    )
    assert schedules["boundary strip (4 rows)"].total_elements == 4 * 1024
    assert all(s.is_complete() for s in schedules.values())


def test_buffer_peak_memory(benchmark):
    """Buddy-help also bounds buffer occupancy, not just time."""

    def run_pair():
        cs_on, _ = _coupled("E.d I.d REGL 2.5", buddy=True)
        cs_off, _ = _coupled("E.d I.d REGL 2.5", buddy=False)
        return cs_on, cs_off

    cs_on, cs_off = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    on = cs_on.buffer_stats("E", 1, "d")
    off = cs_off.buffer_stats("E", 1, "d")
    emit(
        "Ablation: peak buffered bytes of p_s, buddy on/off",
        format_table(
            ["buddy", "peak bytes", "buffered objects"],
            [["on", on.peak_bytes, on.buffered_count],
             ["off", off.peak_bytes, off.buffered_count]],
        ),
    )
    assert on.buffered_count <= off.buffered_count
