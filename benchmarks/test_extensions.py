"""Benchmarks for the paper's Section-6 future-work items, implemented
here as extensions:

* finite buffer space — throughput vs. capacity under backpressure,
  with buddy-help on/off (buddy-help bounds *memory*, not just time);
* non-blocking imports — overlapping the framework round-trip with
  importer compute.
"""

import numpy as np

from conftest import emit
from repro.bench.reporting import format_table
from repro.core.coupler import CoupledSimulation, RegionDef
from repro.costs import FAST_TEST
from repro.data import BlockDecomposition

CONFIG = """
E c0 /bin/E 2
I c1 /bin/I 2
#
E.d I.d REGL 2.5
"""

BLOCK_BYTES = 4 * 8 * 8


def _run_finite(capacity_blocks, buddy):
    def e_main(ctx):
        scale = 3.0 if ctx.rank == 1 else 1.0
        for k in range(200):
            yield from ctx.export("d", 1.6 + k)
            yield from ctx.compute(0.001 * scale)

    def i_main(ctx):
        for j in range(1, 11):
            yield from ctx.compute(0.002)
            yield from ctx.import_("d", 20.0 * j)

    cs = CoupledSimulation(
        CONFIG,
        preset=FAST_TEST,
        buddy_help=buddy,
        buffer_capacity_bytes=capacity_blocks * BLOCK_BYTES,
        buffer_policy="block",
    )
    cs.add_program("E", main=e_main,
                   regions={"d": RegionDef(BlockDecomposition((8, 8), (2, 1)))})
    cs.add_program("I", main=i_main,
                   regions={"d": RegionDef(BlockDecomposition((8, 8), (1, 2)))})
    cs.run()
    slow = cs.context("E", 1)
    return {
        "sim_time": cs.sim.now,
        "stall": slow.stats.backpressure_time,
        "peak": cs.buffer_stats("E", 1, "d").peak_bytes,
    }


def test_finite_buffer_capacity_sweep(benchmark):
    def sweep():
        out = {}
        for cap in (25, 50, 100, 10_000):
            for buddy in (True, False):
                out[(cap, buddy)] = _run_finite(cap, buddy)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for (cap, buddy), r in sorted(results.items()):
        rows.append([
            cap if cap < 10_000 else "inf",
            "on" if buddy else "off",
            f"{r['sim_time']:.3f}",
            f"{r['stall'] * 1e3:.2f}",
            r["peak"] // BLOCK_BYTES,
        ])
    emit(
        "Extension: finite buffer space (backpressure), capacity sweep",
        format_table(
            ["capacity (blocks)", "buddy", "run time s", "p_s stall ms", "peak blocks"],
            rows,
        ),
    )
    # Backpressure must preserve completion and monotonically shrink
    # stalls as capacity grows.
    for buddy in (True, False):
        stalls = [results[(c, buddy)]["stall"] for c in (25, 50, 100, 10_000)]
        assert stalls[-1] == 0.0
        assert stalls[0] >= stalls[-1]
    benchmark.extra_info["paper"] = "Section 6: 'performance effects of finite buffer space'"


def test_nonblocking_import_overlap(benchmark):
    def run(mode):
        finish = {}

        def e_main(ctx):
            for k in range(80):
                yield from ctx.export("d", 1.6 + k)
                yield from ctx.compute(0.002)

        def i_main(ctx):
            for j in range(1, 4):
                if mode == "blocking":
                    yield from ctx.compute(0.03)
                    yield from ctx.import_("d", 20.0 * j)
                else:
                    handle = ctx.import_begin("d", 20.0 * j)
                    yield from ctx.compute(0.03)
                    yield from ctx.import_wait(handle)
            finish[ctx.rank] = ctx.sim.now

        cs = CoupledSimulation(CONFIG, preset=FAST_TEST)
        cs.add_program("E", main=e_main,
                       regions={"d": RegionDef(BlockDecomposition((8, 8), (2, 1)))})
        cs.add_program("I", main=i_main,
                       regions={"d": RegionDef(BlockDecomposition((8, 8), (1, 2)))})
        cs.run()
        return max(finish.values())

    def both():
        return run("blocking"), run("overlap")

    blocking, overlap = benchmark.pedantic(both, rounds=1, iterations=1)
    emit(
        "Extension: non-blocking imports (request/compute overlap)",
        format_table(
            ["mode", "importer finish time (s)"],
            [["blocking", f"{blocking:.4f}"], ["overlapped", f"{overlap:.4f}"]],
        ),
    )
    assert overlap < blocking
    benchmark.extra_info["speedup"] = blocking / overlap
    benchmark.extra_info["paper"] = "Section 6: non-blocking data transfers"
