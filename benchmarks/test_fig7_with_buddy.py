"""Figure 7: REGL 5.0 *with* buddy-help — no in-region churn at all.

The wider tolerance (5.0 vs 2.5) makes the paper's point about the
ratio of acceptable-region size to request inter-arrival time: the
bigger the region, the more buffering buddy-help avoids.
"""

from conftest import emit
from repro.bench.traces import scenario_fig7_with_buddy
from repro.util import tracing


def test_fig7_trace(benchmark):
    scenario = benchmark.pedantic(scenario_fig7_with_buddy, rounds=1, iterations=1)
    emit("Figure 7: with buddy-help (REGL 5.0)", scenario.rendered())
    skips = [e.timestamp for e in scenario.events if e.kind == tracing.EXPORT_SKIP]
    memcpys = [e.timestamp for e in scenario.events if e.kind == tracing.EXPORT_MEMCPY]
    # 4.6 is outside [5.0, 10.0]; 5.6..8.6 are inside but ruled out by
    # the buddy answer; only the match 9.6 (and post-region 10.6) copy.
    assert skips == [4.6, 5.6, 6.6, 7.6, 8.6]
    assert memcpys == [1.6, 2.6, 3.6, 9.6, 10.6]
    assert scenario.process.state.buffer.t_ub() == 0.0
    benchmark.extra_info["paper"] = "all in-region non-matches skipped; T_i = 0"
